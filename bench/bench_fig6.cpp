// Fig 6: a software upgrade at an upstream RNC improves voice retainability
// at a majority of (but not all) downstream cell towers. The trap the paper
// calls out: if a small config change happened at those towers around the
// same time, study-only analysis would credit the config change for the
// RNC upgrade's improvement.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"
#include "tsmath/stats.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 6: upstream RNC software upgrade lifts most "
              "downstream towers ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kWest, 99,
                                               /*rncs=*/2, /*nodebs_per_rnc=*/5);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId upgraded = rncs[0];

  sim::UpstreamEvent upgrade;
  upgrade.source = upgraded;
  upgrade.start_bin = 0;
  upgrade.sigma_shift = +1.8;
  upgrade.ramp_bins = 12;
  upgrade.hit_fraction = 0.7;  // a majority, not all (as in the figure)
  upgrade.seed = 33;

  sim::KpiGenerator gen(topo, {.seed = 707});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{upgrade}));

  std::vector<std::string> names;
  std::vector<ts::TimeSeries> daily;
  std::size_t improved = 0;
  const auto towers = topo.children_of(upgraded);
  for (const auto t : towers) {
    names.push_back("tower" + std::to_string(names.size() + 1));
    const ts::TimeSeries hourly = gen.kpi_series(
        t, kpi::KpiId::kVoiceRetainability, -10 * 24, 18 * 24);
    const ts::TimeSeries d = figutil::daily(hourly);
    const double before = ts::mean(d.slice_bins(-10, 0));
    const double after = ts::mean(d.slice_bins(0, 8));
    if (after - before > 0.004) ++improved;
    daily.push_back(d);
  }

  std::printf("daily voice retainability per downstream tower (relative; "
              "upgrade at day 0):\n");
  figutil::print_daily_series(names, daily);
  std::printf("\n%zu of %zu towers improved after the upgrade (paper: "
              "majority, not all)\n",
              improved, towers.size());
  return 0;
}
