// Fig 3: two years of daily voice retainability for cell towers in the
// Northeastern US. The paper observes a yearly seasonal pattern — a
// performance dip from April to August (leaves budding) and an improvement
// from September to January (leaves falling) — superimposed on a slow
// carrier-improvement trend, and explicitly notes the pattern's absence in
// the Southeast. This bench regenerates both series and quantifies the
// contrast with a seasonal-strength statistic.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "kpi/aggregate.h"
#include "simkit/clock.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "tsmath/seasonal.h"

namespace {

litmus::ts::TimeSeries regional_daily_retainability(litmus::net::Region region,
                                                    std::uint64_t seed) {
  using namespace litmus;
  net::Topology topo = net::build_small_region(region, seed, 2, 10);
  sim::KpiGenerator gen(topo, {.seed = seed});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::CarrierTrendFactor>());

  const auto towers = topo.of_kind(net::ElementKind::kNodeB);
  std::vector<ts::TimeSeries> daily;
  for (const auto t : towers) {
    const ts::TimeSeries hourly = gen.kpi_series(
        t, kpi::KpiId::kVoiceRetainability, 0, 2 * sim::kHoursPerYear);
    daily.push_back(figutil::daily(hourly));
  }
  return kpi::pointwise_mean(daily);
}

}  // namespace

int main() {
  using namespace litmus;
  std::printf("=== Fig 3: yearly foliage seasonality, Northeast vs "
              "Southeast (2 years, daily) ===\n\n");

  const ts::TimeSeries ne =
      regional_daily_retainability(net::Region::kNortheast, 33);
  const ts::TimeSeries se =
      regional_daily_retainability(net::Region::kSoutheast, 34);

  // Print weekly means to keep the table readable (104 rows).
  std::printf("week   northeast(rel)   southeast(rel)\n");
  double ne0 = ts::kMissing, se0 = ts::kMissing;
  for (int wk = 0; wk < 104; ++wk) {
    const auto new_ = ne.slice_bins(wk * 7, wk * 7 + 7);
    const auto sew = se.slice_bins(wk * 7, wk * 7 + 7);
    const double nv = ts::mean(new_);
    const double sv = ts::mean(sew);
    if (ts::is_missing(ne0)) ne0 = nv;
    if (ts::is_missing(se0)) se0 = sv;
    std::printf("%4d   %+14.5f   %+14.5f\n", wk, nv - ne0, sv - se0);
  }

  // Yearly-pattern evidence: correlation of the two years' day-of-year
  // profiles after removing the linear trend (weekly-smoothed). A repeating
  // foliage cycle gives a high correlation; trendless noise gives ~0.
  auto year_profile_correlation = [](const ts::TimeSeries& s) {
    const double slope = ts::linear_trend_slope(s.values());
    std::vector<double> detr(s.size());
    for (std::size_t i = 0; i < s.size(); ++i)
      detr[i] = s[i] - slope * static_cast<double>(i);
    const std::vector<double> smooth = ts::moving_average(detr, 7);
    return ts::pearson(std::span<const double>(smooth).subspan(0, 365),
                       std::span<const double>(smooth).subspan(365, 365));
  };
  const double ne_strength = year_profile_correlation(ne);
  const double se_strength = year_profile_correlation(se);
  const double ne_trend = ts::linear_trend_slope(ne.values()) * 365.0;
  const double se_trend = ts::linear_trend_slope(se.values()) * 365.0;
  std::printf("\nyear-over-year profile correlation: northeast=%.3f "
              "southeast=%.3f (paper: strong NE pattern, none in SE)\n",
              ne_strength, se_strength);
  std::printf("carrier trend (retainability/year): northeast=%+.5f "
              "southeast=%+.5f (paper: overall increasing trend)\n",
              ne_trend, se_trend);

  // Phase check: April-August dip vs September-January.
  auto window_mean = [&](const ts::TimeSeries& s, int from_doy, int to_doy) {
    double sum = 0;
    int n = 0;
    for (int year = 0; year < 2; ++year)
      for (int d = from_doy; d < to_doy; ++d) {
        const double v = s.at_bin(year * 365 + d);
        if (!ts::is_missing(v)) {
          sum += v;
          ++n;
        }
      }
    return n ? sum / n : ts::kMissing;
  };
  const double ne_summer = window_mean(ne, 120, 240);  // May-Aug
  const double ne_winter = window_mean(ne, 300, 360);  // Nov-Dec
  std::printf("northeast summer-vs-winter retainability delta: %+.5f "
              "(paper: dip Apr-Aug, better when trees are bare)\n",
              ne_summer - ne_winter);
  return 0;
}
