// Fig 1: a configuration change whose assessment window is hit by extremely
// strong winds. The dropped-voice-call ratio rises sharply during the wind
// event; anyone reading the study series alone concludes the change
// degraded service. The control group (nearby towers, equally wind-blown)
// lets Litmus call it correctly.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "litmus/assessor.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 1: config change overlapped by strong winds ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kNortheast, 41,
                                               /*rncs=*/2, /*nodebs_per_rnc=*/10);
  const auto towers = topo.of_kind(net::ElementKind::kNodeB);
  const net::ElementId study = towers.front();

  // Wind event: starts two days after the change, lasts three days, centered
  // on the study tower's market.
  const std::int64_t change_bin = 0;
  sim::WeatherEvent wind = sim::make_event(
      sim::WeatherKind::kWind, topo.get(study).location, change_bin + 48, 72);

  sim::KpiGenerator gen(topo, {.seed = 4242});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{wind}));

  // The change itself is truly neutral (a routine config tweak).
  constexpr std::size_t kWindow = 14 * 24;
  const auto kpi = kpi::KpiId::kDroppedVoiceCallRatio;
  const ts::TimeSeries study_series =
      gen.kpi_series(study, kpi, change_bin - kWindow, 2 * kWindow);

  std::printf("dropped voice call ratio at the study tower (daily mean, "
              "relative to day -14; change at day 0, wind days 2-4):\n");
  figutil::print_daily_series({"study_tower"},
                              {figutil::daily(study_series)});

  // Study/control comparison: the wind hits the control towers too.
  core::Assessor assessor(
      topo, [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                   std::size_t n) { return gen.kpi_series(e, k, s, n); });
  std::vector<net::ElementId> study_group{study};
  const auto sel = core::select_control_group(
      topo, study_group, core::all_of({core::same_region(),
                                       core::same_technology()}));
  const core::ElementWindows w =
      assessor.windows_for(study, sel.controls, kpi, change_bin);

  std::printf("\nverdicts (ground truth: the change had no impact; the wind "
              "did):\n");
  figutil::print_verdicts("fig1_wind_overlap", w, kpi);
  return 0;
}
