// Ablation bench: quantifies the design choices Section 3.2 argues for.
//
//   1. Sampling + median aggregation vs a single all-controls fit, and
//      median vs mean aggregation across sampling iterations — the paper's
//      robustness mechanism against contaminated control elements.
//   2. Robust rank-order test vs classical Wilcoxon-Mann-Whitney.
//   3. DiD aggregation: mean (classical, fragile) vs median across controls.
//   4. Control-group size sweep (Section 3.3: too small loses robustness).
//
// Each variant runs the same contaminated-positive and contaminated-null
// trial sets; we report detection rate (recall) and true-negative rate.
#include <cstdio>
#include <vector>

#include "eval/group_sim.h"
#include "eval/labeling.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "tsmath/random.h"

namespace {

using namespace litmus;

struct Rates {
  double recall = 0.0;
  double tnr = 0.0;
};

// Runs `trials` contaminated positives and `trials` contaminated nulls.
template <typename Analyzer>
Rates evaluate(const Analyzer& alg, std::size_t n_controls,
               std::size_t trials, std::uint64_t seed0) {
  std::size_t tp = 0, tn = 0;
  ts::Rng seeder(seed0);
  for (std::size_t t = 0; t < trials; ++t) {
    for (const bool positive : {true, false}) {
      eval::EpisodeSpec spec;
      spec.kpi = kpi::KpiId::kVoiceRetainability;
      spec.n_control = n_controls;
      spec.true_sigma = positive ? 1.5 : 0.0;
      spec.contaminated_controls = 1 + n_controls / 8;
      spec.contamination_sigma = seeder.uniform(3.0, 9.0);
      spec.contamination_sign = positive ? 1 : (seeder.chance(0.5) ? 1 : -1);
      spec.contamination_at_change = true;
      spec.seed = seeder.next_u64() | 1;
      const eval::Episode ep = eval::simulate_episode(spec);
      const auto out =
          alg.assess(ep.study_windows.front(), spec.kpi).verdict;
      if (positive && out == core::Verdict::kImprovement) ++tp;
      if (!positive && out == core::Verdict::kNoImpact) ++tn;
    }
  }
  return {static_cast<double>(tp) / trials, static_cast<double>(tn) / trials};
}

void report(const char* name, const Rates& r) {
  std::printf("%-52s recall=%6.2f%%  tnr=%6.2f%%\n", name, 100.0 * r.recall,
              100.0 * r.tnr);
}

}  // namespace

int main() {
  constexpr std::size_t kTrials = 60;
  constexpr std::size_t kControls = 16;
  std::printf("=== Ablation: Litmus design choices under control-group "
              "contamination ===\n");
  std::printf("(%zu contaminated positives + %zu contaminated nulls per "
              "variant, %zu controls)\n\n",
              kTrials, kTrials, kControls);

  {
    core::SpatialRegressionParams p;  // paper configuration
    report("litmus (sampling x25, median, robust rank-order)",
           evaluate(core::RobustSpatialRegression(p), kControls, kTrials, 11));
  }
  {
    core::SpatialRegressionParams p;
    p.n_iterations = 1;
    p.sample_fraction = 1.0;
    report("  - no sampling (single all-controls fit)",
           evaluate(core::RobustSpatialRegression(p), kControls, kTrials, 11));
  }
  {
    core::SpatialRegressionParams p;
    p.aggregation = core::ForecastAggregation::kMean;
    report("  - mean aggregation across iterations",
           evaluate(core::RobustSpatialRegression(p), kControls, kTrials, 11));
  }
  {
    core::SpatialRegressionParams p;
    p.test = core::ComparisonTest::kWilcoxon;
    report("  - Wilcoxon-Mann-Whitney instead of robust test",
           evaluate(core::RobustSpatialRegression(p), kControls, kTrials, 11));
  }
  {
    core::DiDParams p;  // classical DiD: mean h, mean aggregation
    report("did (mean h, mean across controls)",
           evaluate(core::DiDAnalyzer(p), kControls, kTrials, 11));
  }
  {
    core::DiDParams p;
    p.aggregate = core::CentralMeasure::kMedian;
    report("  - did with median across controls",
           evaluate(core::DiDAnalyzer(p), kControls, kTrials, 11));
  }

  std::printf("\ncontrol-group size sweep (litmus defaults):\n");
  for (const std::size_t n : {4u, 8u, 16u, 32u, 48u}) {
    char label[64];
    std::snprintf(label, sizeof label, "  N = %zu controls",
                  static_cast<std::size_t>(n));
    report(label, evaluate(core::RobustSpatialRegression(), n, kTrials, 13));
  }

  std::printf("\nreading: classical DiD (mean aggregation) is the fragile "
              "configuration — contamination destroys its true-negative "
              "rate and dents recall. Replacing the mean with a median "
              "repairs DiD against *this* failure mode; what the regression "
              "adds on top is matching heterogeneous factor exposure "
              "(Tables 2 and 4), which no central-tendency aggregate can "
              "do. Litmus's rank-test sensitivity keeps recall at 100%% "
              "throughout.\n");
  return 0;
}
