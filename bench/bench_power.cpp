// Sensitivity analysis: detection rate vs true-impact magnitude for the
// three algorithms, in clean and contaminated control-group regimes.
//
// Not a paper table — it quantifies the detection floor implied by the
// paper's setup: with 14-day hourly windows, how small a change can each
// method see, and what does control contamination cost? The crossover
// where DiD falls away from Litmus under contamination is the operational
// payoff of the robust spatial regression.
//
// A second sweep pits adaptive early stopping (DESIGN.md §16) against the
// full iteration budget on the same episodes: statistical power must be
// the tentpole's free lunch, so the table shows detection rate off vs on
// alongside the iterations actually spent. Results also land in
// BENCH_power.json (with a run manifest) so the power trajectory is
// machine-trackable across commits next to the perf benches.
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "eval/group_sim.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "parallel/pool.h"
#include "tsmath/random.h"

using namespace litmus;

namespace {

constexpr std::size_t kTrials = 30;
/// High-robustness budget for the adaptive sweep — the regime adaptive
/// sampling targets (at the default 25 the Gram fast path makes early
/// stopping roughly break even; see bench_perf BM_AssessAdaptive).
constexpr std::size_t kAdaptiveBudget = 100;

struct Rates {
  double study_only = 0;
  double did = 0;
  double litmus = 0;
};

eval::EpisodeSpec episode_spec(double magnitude_sigma, bool contaminated,
                               ts::Rng& seeder) {
  eval::EpisodeSpec spec;
  spec.true_sigma = magnitude_sigma;
  spec.n_control = 12;
  if (contaminated) {
    spec.contaminated_controls = 3;
    spec.contamination_sigma = seeder.uniform(3.0, 9.0);
    spec.contamination_sign = +1;  // same direction: the masking regime
    spec.contamination_at_change = true;
  }
  spec.seed = seeder.next_u64() | 1;
  return spec;
}

ts::Rng point_seeder(double magnitude_sigma, bool contaminated) {
  return ts::Rng(0xB0B + static_cast<std::uint64_t>(1000 * magnitude_sigma) +
                 (contaminated ? 7 : 0));
}

Rates detection_rates(double magnitude_sigma, bool contaminated,
                      std::size_t trials) {
  static const core::StudyOnlyAnalyzer so;
  static const core::DiDAnalyzer did;
  static const core::RobustSpatialRegression lit;

  Rates r;
  ts::Rng seeder = point_seeder(magnitude_sigma, contaminated);
  for (std::size_t t = 0; t < trials; ++t) {
    const eval::EpisodeSpec spec =
        episode_spec(magnitude_sigma, contaminated, seeder);
    const eval::Episode ep = eval::simulate_episode(spec);
    const auto& w = ep.study_windows.front();
    const auto expected = core::Verdict::kImprovement;
    if (so.assess(w, spec.kpi).verdict == expected) r.study_only += 1;
    if (did.assess(w, spec.kpi).verdict == expected) r.did += 1;
    if (lit.assess(w, spec.kpi).verdict == expected) r.litmus += 1;
  }
  const double n = static_cast<double>(trials);
  r.study_only /= n;
  r.did /= n;
  r.litmus /= n;
  return r;
}

/// Litmus at the kAdaptiveBudget iteration budget, full vs adaptive, on
/// identical episodes (the seeder replays the detection_rates stream).
struct AdaptivePoint {
  double magnitude = 0;
  bool contaminated = false;
  double full_rate = 0;      ///< detection rate, budget exhausted every time
  double adaptive_rate = 0;  ///< detection rate with early stopping on
  double mean_iterations = 0;  ///< iterations attempted, adaptive on
  std::size_t flips = 0;       ///< per-episode verdict disagreements
};

AdaptivePoint adaptive_rates(double magnitude_sigma, bool contaminated,
                             std::size_t trials) {
  core::SpatialRegressionParams full_p;
  full_p.n_iterations = kAdaptiveBudget;
  core::SpatialRegressionParams on_p = full_p;
  on_p.adaptive_sampling = true;
  const core::RobustSpatialRegression full(full_p);
  const core::RobustSpatialRegression adaptive(on_p);

  AdaptivePoint r;
  r.magnitude = magnitude_sigma;
  r.contaminated = contaminated;
  ts::Rng seeder = point_seeder(magnitude_sigma, contaminated);
  for (std::size_t t = 0; t < trials; ++t) {
    const eval::EpisodeSpec spec =
        episode_spec(magnitude_sigma, contaminated, seeder);
    const eval::Episode ep = eval::simulate_episode(spec);
    const auto& w = ep.study_windows.front();
    const auto expected = core::Verdict::kImprovement;
    const core::AnalysisOutcome a = full.assess(w, spec.kpi);
    const core::AnalysisOutcome b = adaptive.assess(w, spec.kpi);
    if (a.verdict == expected) r.full_rate += 1;
    if (b.verdict == expected) r.adaptive_rate += 1;
    if (a.verdict != b.verdict) ++r.flips;
    r.mean_iterations += static_cast<double>(b.explanation.iterations_used);
  }
  const double n = static_cast<double>(trials);
  r.full_rate /= n;
  r.adaptive_rate /= n;
  r.mean_iterations /= n;
  return r;
}

void write_json(const std::vector<std::pair<bool, Rates>>& detection,
                const std::vector<double>& magnitudes,
                const std::vector<AdaptivePoint>& adaptive) {
  std::ofstream out("BENCH_power.json");
  if (!out) {
    std::fprintf(stderr, "warning: cannot write BENCH_power.json\n");
    return;
  }
  obs::RunManifest manifest;
  manifest.tool = "bench_power";
  manifest.threads = par::threads();
  manifest.seed = 0xB0B;
  manifest.started_at_utc = obs::utc_timestamp_now();
  manifest.add_config("trials_per_point", std::to_string(kTrials));
  manifest.add_config("adaptive_budget", std::to_string(kAdaptiveBudget));
  obs::JsonWriter w(out);
  w.begin_object();
  w.member("bench", "power");
  w.key("manifest");
  manifest.write(w);
  w.key("detection").begin_array();
  for (std::size_t i = 0; i < detection.size(); ++i) {
    w.begin_object();
    w.member("magnitude_sigma", magnitudes[i % magnitudes.size()])
        .member("contaminated", detection[i].first)
        .member("study_only", detection[i].second.study_only)
        .member("did", detection[i].second.did)
        .member("litmus", detection[i].second.litmus);
    w.end_object();
  }
  w.end_array();
  w.key("adaptive").begin_array();
  for (const AdaptivePoint& p : adaptive) {
    w.begin_object();
    w.member("magnitude_sigma", p.magnitude)
        .member("contaminated", p.contaminated)
        .member("litmus_full_budget", p.full_rate)
        .member("litmus_adaptive", p.adaptive_rate)
        .member("mean_iterations_adaptive", p.mean_iterations)
        .member("budget", static_cast<std::uint64_t>(kAdaptiveBudget))
        .member("verdict_flips", static_cast<std::uint64_t>(p.flips));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace

int main() {
  const std::vector<double> magnitudes{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};
  std::vector<std::pair<bool, Rates>> detection;
  std::vector<AdaptivePoint> adaptive;

  for (const bool contaminated : {false, true}) {
    std::printf("=== detection rate vs impact magnitude (%s control group, "
                "%zu trials/point) ===\n",
                contaminated ? "contaminated" : "clean", kTrials);
    std::printf("magnitude   study_only     did        litmus\n");
    for (const double m : magnitudes) {
      const Rates r = detection_rates(m, contaminated, kTrials);
      detection.emplace_back(contaminated, r);
      std::printf("  %4.2f sigma   %6.1f%%   %6.1f%%    %6.1f%%\n", m,
                  100 * r.study_only, 100 * r.did, 100 * r.litmus);
    }
    std::printf("\n");
  }
  std::printf("expected shape: Litmus's detection floor sits near 0.5 sigma "
              "and survives contamination; DiD loses mid-range detections "
              "when contamination masks the shift; study-only is noisy at "
              "every magnitude because external variation moves the study "
              "series regardless.\n\n");

  for (const bool contaminated : {false, true}) {
    std::printf("=== adaptive early stopping vs full budget (%s controls, "
                "Litmus @ %zu iterations, %zu trials/point) ===\n",
                contaminated ? "contaminated" : "clean", kAdaptiveBudget,
                kTrials);
    std::printf("magnitude   full       adaptive   mean iters   flips\n");
    std::size_t total_flips = 0;
    for (const double m : magnitudes) {
      const AdaptivePoint p = adaptive_rates(m, contaminated, kTrials);
      adaptive.push_back(p);
      total_flips += p.flips;
      std::printf("  %4.2f sigma  %6.1f%%    %6.1f%%    %6.1f/%zu    %zu\n",
                  m, 100 * p.full_rate, 100 * p.adaptive_rate,
                  p.mean_iterations, kAdaptiveBudget, p.flips);
    }
    std::printf("  verdict flips across all %zu episodes: %zu\n\n",
                magnitudes.size() * kTrials, total_flips);
  }
  std::printf("expected shape: the adaptive column tracks the full-budget "
              "column point for point (the stopping rule only fires on "
              "decisive verdicts), while mean iterations collapse toward "
              "the first checkpoints at decisive magnitudes and stay near "
              "the budget where the verdict is genuinely borderline.\n");

  write_json(detection, magnitudes, adaptive);
  std::printf("wrote BENCH_power.json\n");
  return 0;
}
