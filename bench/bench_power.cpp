// Sensitivity analysis: detection rate vs true-impact magnitude for the
// three algorithms, in clean and contaminated control-group regimes.
//
// Not a paper table — it quantifies the detection floor implied by the
// paper's setup: with 14-day hourly windows, how small a change can each
// method see, and what does control contamination cost? The crossover
// where DiD falls away from Litmus under contamination is the operational
// payoff of the robust spatial regression.
#include <cstdio>
#include <vector>

#include "eval/group_sim.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"
#include "tsmath/random.h"

using namespace litmus;

namespace {

struct Rates {
  double study_only = 0;
  double did = 0;
  double litmus = 0;
};

Rates detection_rates(double magnitude_sigma, bool contaminated,
                      std::size_t trials) {
  static const core::StudyOnlyAnalyzer so;
  static const core::DiDAnalyzer did;
  static const core::RobustSpatialRegression lit;

  Rates r;
  ts::Rng seeder(0xB0B + static_cast<std::uint64_t>(1000 * magnitude_sigma) +
                 (contaminated ? 7 : 0));
  for (std::size_t t = 0; t < trials; ++t) {
    eval::EpisodeSpec spec;
    spec.true_sigma = magnitude_sigma;
    spec.n_control = 12;
    if (contaminated) {
      spec.contaminated_controls = 3;
      spec.contamination_sigma = seeder.uniform(3.0, 9.0);
      spec.contamination_sign = +1;  // same direction: the masking regime
      spec.contamination_at_change = true;
    }
    spec.seed = seeder.next_u64() | 1;
    const eval::Episode ep = eval::simulate_episode(spec);
    const auto& w = ep.study_windows.front();
    const auto expected = core::Verdict::kImprovement;
    if (so.assess(w, spec.kpi).verdict == expected) r.study_only += 1;
    if (did.assess(w, spec.kpi).verdict == expected) r.did += 1;
    if (lit.assess(w, spec.kpi).verdict == expected) r.litmus += 1;
  }
  const double n = static_cast<double>(trials);
  r.study_only /= n;
  r.did /= n;
  r.litmus /= n;
  return r;
}

}  // namespace

int main() {
  constexpr std::size_t kTrials = 30;
  const std::vector<double> magnitudes{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0};

  for (const bool contaminated : {false, true}) {
    std::printf("=== detection rate vs impact magnitude (%s control group, "
                "%zu trials/point) ===\n",
                contaminated ? "contaminated" : "clean", kTrials);
    std::printf("magnitude   study_only     did        litmus\n");
    for (const double m : magnitudes) {
      const Rates r = detection_rates(m, contaminated, kTrials);
      std::printf("  %4.2f sigma   %6.1f%%   %6.1f%%    %6.1f%%\n", m,
                  100 * r.study_only, 100 * r.did, 100 * r.litmus);
    }
    std::printf("\n");
  }
  std::printf("expected shape: Litmus's detection floor sits near 0.5 sigma "
              "and survives contamination; DiD loses mid-range detections "
              "when contamination masks the shift; study-only is noisy at "
              "every magnitude because external variation moves the study "
              "series regardless.\n");
  return 0;
}
