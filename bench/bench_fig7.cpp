// Fig 7: the three illustrative confound patterns that motivate
// study/control comparison.
//   (a) a weather event degrades both groups, but the change at the study
//       group leaves it relatively better off  -> relative improvement
//   (b) a traffic shift degrades both groups equally                 -> no
//       relative change
//   (c) an upstream change improves both groups while the study change
//       makes the study group relatively worse  -> relative degradation
// Study-only analysis gets all three wrong; the study/control dependency
// view gets all three right.
#include <cstdio>

#include "eval/group_sim.h"
#include "figutil.h"

namespace {

litmus::core::ElementWindows scenario(double study_sigma, double factor_sigma,
                                      std::uint64_t seed) {
  litmus::eval::EpisodeSpec spec;
  spec.kpi = litmus::kpi::KpiId::kVoiceRetainability;
  spec.n_study = 1;
  spec.n_control = 12;
  spec.true_sigma = study_sigma;
  spec.factor_sigma = factor_sigma;
  spec.factor_shape = litmus::eval::FactorShape::kLevel;
  spec.seed = seed;
  return litmus::eval::simulate_episode(spec).study_windows.front();
}

}  // namespace

int main() {
  using namespace litmus;
  std::printf("=== Fig 7: study-group-only vs study/control dependency ===\n\n");

  const auto kpi = kpi::KpiId::kVoiceRetainability;

  // (a) weather: factor -2.5 sigma on everyone, change +1.5 at study.
  const auto a = scenario(+1.5, -2.5, 1001);
  // (b) traffic pattern change: factor -2.0 on everyone, no study change.
  const auto b = scenario(0.0, -2.0, 5002);
  // (c) other change upstream: factor +2.5 on everyone, study change -1.5.
  const auto c = scenario(-1.5, +2.5, 1003);

  std::printf("expected: (a) improvement, (b) no_impact, (c) degradation\n\n");
  figutil::print_verdicts("(a) weather + change", a, kpi);
  figutil::print_verdicts("(b) traffic shift only", b, kpi);
  figutil::print_verdicts("(c) upstream change + change", c, kpi);

  std::printf("\ngroup levels (median before -> after, study vs control "
              "mean):\n");
  auto levels = [&](const char* name, const core::ElementWindows& w) {
    double cb = 0, ca = 0;
    for (const auto& s : w.control_before) cb += ts::median(s);
    for (const auto& s : w.control_after) ca += ts::median(s);
    cb /= w.control_before.size();
    ca /= w.control_after.size();
    std::printf("%-28s study %.4f -> %.4f   control %.4f -> %.4f\n", name,
                ts::median(w.study_before), ts::median(w.study_after), cb, ca);
  };
  levels("(a)", a);
  levels("(b)", b);
  levels("(c)", c);
  return 0;
}
