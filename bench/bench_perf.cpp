// Runtime benchmarks for the Litmus algorithm (paper Section 5: "our
// algorithm finishes in a few minutes" at 1-2-week assessment scales —
// this implementation finishes a single assessment in milliseconds).
//
// Sweeps: control-group size, window length, sampling iterations; plus the
// statistical primitives (OLS fit, robust rank-order test).
//
// Unless the caller passes its own --benchmark_out, results are also
// written to BENCH_perf.json (google-benchmark JSON) so the perf
// trajectory is trackable across commits (CI uploads it as an artifact).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/group_sim.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"
#include "obs/manifest.h"
#include "parallel/pool.h"
#include "tsmath/linreg.h"
#include "tsmath/random.h"
#include "tsmath/rank_tests.h"

namespace {

using namespace litmus;

core::ElementWindows make_windows(std::size_t n_controls, std::size_t days) {
  eval::EpisodeSpec spec;
  spec.n_control = n_controls;
  spec.before_bins = days * 24;
  spec.after_bins = days * 24;
  spec.true_sigma = 1.5;
  spec.seed = 97;
  return eval::simulate_episode(spec).study_windows.front();
}

void BM_LitmusAssess_Controls(benchmark::State& state) {
  const auto w = make_windows(static_cast<std::size_t>(state.range(0)), 14);
  const core::RobustSpatialRegression alg;
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LitmusAssess_Controls)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LitmusAssess_WindowDays(benchmark::State& state) {
  const auto w = make_windows(16, static_cast<std::size_t>(state.range(0)));
  const core::RobustSpatialRegression alg;
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LitmusAssess_WindowDays)->Arg(7)->Arg(14)->Arg(28);

void BM_LitmusAssess_Iterations(benchmark::State& state) {
  const auto w = make_windows(16, 14);
  core::SpatialRegressionParams params;
  params.n_iterations = static_cast<std::size_t>(state.range(0));
  const core::RobustSpatialRegression alg(params);
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LitmusAssess_Iterations)->Arg(5)->Arg(25)->Arg(100);

// Thread-scaling at the paper's production shape (14-day windows, a large
// control group, 200 sampling iterations). Results are bit-identical at
// every thread count — only the wall clock moves.
void BM_LitmusAssess_Threads(benchmark::State& state) {
  const auto w = make_windows(40, 14);
  core::SpatialRegressionParams params;
  params.n_iterations = 200;
  const core::RobustSpatialRegression alg(params);
  par::set_threads(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
  par::set_threads(1);
}
BENCHMARK(BM_LitmusAssess_Threads)->Arg(1)->Arg(2)->Arg(8)->UseRealTime();

// Single-thread algorithmic win of the Gram/Cholesky subset solver over
// per-iteration Householder QR (Arg: 1 = Gram fast path, 0 = QR only).
void BM_LitmusAssess_GramVsQr(benchmark::State& state) {
  const auto w = make_windows(40, 14);
  core::SpatialRegressionParams params;
  params.n_iterations = 200;
  params.use_gram_fast_path = state.range(0) != 0;
  const core::RobustSpatialRegression alg(params);
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LitmusAssess_GramVsQr)->Arg(0)->Arg(1);

// Multi-element assessment: E study elements sharing one control group,
// the FFA shape the panel cache accelerates (every element re-fits the
// same before-window control panel). Reported as items/s where one item
// is one element assessment; the cache stays warm across elements and
// benchmark iterations.
void BM_LitmusAssess_MultiElement(benchmark::State& state) {
  eval::EpisodeSpec spec;
  spec.n_study = 8;
  spec.n_control = 64;
  spec.before_bins = 14 * 24;
  spec.after_bins = 14 * 24;
  spec.true_sigma = 1.5;
  spec.seed = 97;
  const auto episode = eval::simulate_episode(spec);
  const core::RobustSpatialRegression alg;
  for (auto _ : state) {
    for (const auto& w : episode.study_windows) {
      auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                episode.study_windows.size()));
}
BENCHMARK(BM_LitmusAssess_MultiElement);

// Adaptive early stopping (DESIGN.md §16) at the gen-corpus batch shape
// (48h before / 24h after, 16 controls) and the high-robustness budget of
// 100 iterations — the regime the layer is built for: each checkpoint
// costs a fixed ~6-8us of verdict evaluation (bands + 3 jackknife rank
// tests), so the win scales with iterations *saved*. At the default
// budget of 25 a decisive element saves 13 Gram-path iterations and
// roughly breaks even; at 100 it saves 88 and assessment time drops ~4x.
//
// First arg picks the element: 0 = easy (a clear 2-sigma shift, the
// dominant population in a scale corpus; stops at the second checkpoint),
// 1 = borderline (z rides the significance threshold; spends the full
// budget by design). Second arg toggles adaptive sampling. CI gates
// BM_AssessAdaptive/0/1 vs /0/0 with a speedup floor, while the /1/*
// pair bounds the checkpoint overhead on the worst case.
void BM_AssessAdaptive(benchmark::State& state) {
  eval::EpisodeSpec spec;
  spec.n_control = 16;
  spec.before_bins = 48;
  spec.after_bins = 24;
  spec.true_sigma = state.range(0) == 0 ? 2.0 : 0.20;
  spec.seed = 97;
  const auto w = eval::simulate_episode(spec).study_windows.front();
  core::SpatialRegressionParams params;
  params.n_iterations = 100;
  params.adaptive_sampling = state.range(1) != 0;
  const core::RobustSpatialRegression alg(params);
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AssessAdaptive)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void BM_DiDAssess(benchmark::State& state) {
  const auto w = make_windows(16, 14);
  const core::DiDAnalyzer alg;
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DiDAssess);

void BM_StudyOnlyAssess(benchmark::State& state) {
  const auto w = make_windows(16, 14);
  const core::StudyOnlyAnalyzer alg;
  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_StudyOnlyAssess);

void BM_OlsFit(benchmark::State& state) {
  const std::size_t rows = 336;
  const std::size_t cols = static_cast<std::size_t>(state.range(0));
  ts::Rng rng(5);
  ts::Matrix x(rows, cols);
  std::vector<double> y(rows);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) x(r, c) = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    auto m = ts::fit_ols(x, y, true);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_OlsFit)->Arg(8)->Arg(16)->Arg(32);

void BM_RobustRankOrder(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ts::Rng rng(6);
  std::vector<double> x(n), y(n);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal(0.3, 1.0);
  for (auto _ : state) {
    auto t = ts::robust_rank_order(x, y);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_RobustRankOrder)->Arg(168)->Arg(336)->Arg(672);

// google-benchmark owns the JSON writer, so provenance is added after the
// fact: a "manifest" block (threads, seed, build flags, version) becomes
// the first key of the report. tools/check_bench_regression.py reads it to
// warn when a baseline and a candidate were produced under different
// conditions.
void embed_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // bench ran with a different reporter; nothing to do
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) return;

  obs::RunManifest manifest;
  manifest.tool = "bench_perf";
  manifest.threads = par::threads();
  manifest.seed = 97;  // EpisodeSpec seed all sweeps share
  manifest.started_at_utc = obs::utc_timestamp_now();
  text.insert(brace + 1, "\n\"manifest\": " + manifest.to_json() + ",");

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot rewrite %s\n", path.c_str());
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  // Single-assessment benches measure the sequential path; the _Threads
  // sweep overrides this per run.
  litmus::par::set_threads(1);
  std::vector<char*> args(argv, argv + argc);
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
  std::string out_flag = "--benchmark_out=BENCH_perf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (out_path.empty()) {
    out_path = "BENCH_perf.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  embed_manifest(out_path);
  return 0;
}
