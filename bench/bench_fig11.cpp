// Fig 11 / case study 5.4: a parameter change at a few RNCs, tested over a
// holiday. Data retainability rises significantly after the change — at the
// study RNCs *and* at every control RNC in the region, because the holiday
// moved traffic everywhere. Study-only analysis would recommend a
// network-wide rollout; Litmus labels the change "no impact" and the
// rollout is (correctly) withheld.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "litmus/assessor.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/traffic.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 11: parameter change assessed over a holiday ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kSoutheast, 171,
                                               /*rncs=*/8, /*nodebs_per_rnc=*/4);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const std::int64_t change_bin = 0;

  // Holiday season begins three days after the change and lightens load
  // region-wide (fewer business-hour sessions -> fewer drops -> data
  // retainability up, as in the paper's figure).
  sim::HolidayWindow holiday;
  holiday.start_bin = change_bin + 3 * 24;
  holiday.end_bin = change_bin + 13 * 24;
  holiday.load_multiplier = 0.6;
  holiday.region = net::Region::kSoutheast;

  sim::KpiGenerator gen(topo, {.seed = 1717, .congestion_threshold = 0.9});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::TrafficEventFactor>(
      std::vector<sim::HolidayWindow>{holiday},
      std::vector<sim::VenueEvent>{}));

  const auto kpi = kpi::KpiId::kDataRetainability;
  std::vector<net::ElementId> study(rncs.begin(), rncs.begin() + 3);
  std::vector<net::ElementId> controls(rncs.begin() + 3, rncs.end());

  std::vector<std::string> names;
  std::vector<ts::TimeSeries> daily;
  for (std::size_t i = 0; i < study.size(); ++i) {
    names.push_back("study_rnc" + std::to_string(i + 1));
    daily.push_back(figutil::daily(
        gen.kpi_series(study[i], kpi, change_bin - 12 * 24, 26 * 24)));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    names.push_back("ctrl_rnc" + std::to_string(i + 1));
    daily.push_back(figutil::daily(
        gen.kpi_series(controls[i], kpi, change_bin - 12 * 24, 26 * 24)));
  }
  std::printf("daily data retainability (relative; change at day 0, holiday "
              "days 3-12):\n");
  figutil::print_daily_series(names, daily);

  core::Assessor assessor(
      topo, [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                   std::size_t n) { return gen.kpi_series(e, k, s, n); });
  const core::ChangeAssessment a =
      assessor.assess(study, controls, kpi, change_bin);

  std::printf("\nper-RNC verdicts (ground truth: no impact — the holiday "
              "moved everyone):\n");
  for (const auto s : study) {
    const auto w = assessor.windows_for(s, controls, kpi, change_bin);
    figutil::print_verdicts(topo.get(s).name.c_str(), w, kpi);
  }
  std::printf("\nLitmus vote: %s — decision: %s. %s\n",
              to_string(a.summary.verdict),
              a.summary.verdict == core::Verdict::kNoImpact
                  ? "do not roll out (no contribution from the change)"
                  : "unexpected",
              a.summary.verdict == core::Verdict::kNoImpact
                  ? "[reproduced]"
                  : "[NOT reproduced]");
  return 0;
}
