// Fig 4: voice accessibility degrading across multiple Radio Network
// Controllers at once during severe storms and damaging hail (tornado).
// The signature the paper shows — and the reason study-only analysis cannot
// be trusted during weather — is the *correlated* dip across elements.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"
#include "tsmath/stats.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 4: correlated degradation across RNCs during a "
              "tornado ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kSouthwest, 77,
                                               /*rncs=*/5, /*nodebs_per_rnc=*/6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);

  // Severe storm over the market: days 18-20 of a 40-day window.
  sim::WeatherEvent storm =
      sim::make_event(sim::WeatherKind::kSevereStorm,
                      topo.get(rncs[0]).location, 18 * 24, 2 * 24);
  sim::KpiGenerator gen(topo, {.seed = 505});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{storm}));

  std::vector<std::string> names;
  std::vector<ts::TimeSeries> daily;
  for (const auto r : rncs) {
    names.push_back(topo.get(r).name);
    daily.push_back(figutil::daily(
        gen.kpi_series(r, kpi::KpiId::kVoiceAccessibility, 0, 40 * 24)));
  }
  std::printf("daily voice accessibility per RNC (relative; storm days "
              "18-19):\n");
  figutil::print_daily_series(names, daily);

  // Quantify the correlated-dip signature: cross-RNC correlation and the
  // storm-day drop.
  double min_drop = 0.0;
  for (const auto& s : daily) {
    const double base = ts::mean(s.slice_bins(0, 18));
    const double storm_level = ts::mean(s.slice_bins(18, 20));
    min_drop = std::min(min_drop, storm_level - base);
  }
  double avg_corr = 0.0;
  int pairs = 0;
  for (std::size_t i = 0; i < daily.size(); ++i)
    for (std::size_t j = i + 1; j < daily.size(); ++j) {
      avg_corr += ts::pearson(daily[i].values(), daily[j].values());
      ++pairs;
    }
  std::printf("\nworst storm-day accessibility drop: %+.5f; mean pairwise "
              "cross-RNC correlation: %.3f (paper: simultaneous dips across "
              "RNCs)\n",
              min_drop, avg_corr / pairs);
  return 0;
}
