// Mapped-store scale benches: the DESIGN.md §15 path from snapshot bytes
// to batch verdicts. A simkit scale corpus (default 20k NodeBs x 2 KPIs;
// LITMUS_BENCH_STORE_ELEMENTS overrides — the CI workload, the 1M national
// topology is the same code at a bigger number) is generated once per
// process, then:
//
//   BM_MappedOpen        open + full validation (checksum pass) per iter
//   BM_WindowFetchHeap   assessment windows via the heap SeriesStore
//   BM_WindowFetchMapped the same windows zero-copy off the mapped pages
//   BM_AssessOne         one change record end to end (calibration)
//   BM_BatchAssess/N     the whole change log, N shards — the elements/s
//                        headline (items_per_second = records assessed/s)
//
// The gated ratio for tools/check_bench_regression.py is
//
//     BM_BatchAssess/1 / BM_AssessOne
//
// which is machine-independent (both sides scale with host speed) and
// catches per-element scaling regressions: anything super-linear in the
// batch driver — a full-topology scan per record, a cache that stops
// hitting — moves the ratio, while a uniformly slower host does not.
// Results go to BENCH_store.json with an embedded manifest.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "changelog/changelog.h"
#include "io/changes.h"
#include "io/mapped_store.h"
#include "io/snapshot.h"
#include "io/store.h"
#include "litmus/batch.h"
#include "litmus/control_selection.h"
#include "obs/manifest.h"
#include "parallel/pool.h"
#include "simkit/scale.h"

namespace {

using namespace litmus;

constexpr const char* kCorpusDir = "bench_store_corpus";

std::size_t corpus_elements() {
  if (const char* env = std::getenv("LITMUS_BENCH_STORE_ELEMENTS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 20'000;
}

const sim::ScaleCorpusConfig& corpus_config() {
  static const sim::ScaleCorpusConfig cfg = [] {
    sim::ScaleCorpusConfig c;
    c.elements = corpus_elements();
    return c;
  }();
  return cfg;
}

std::string corpus_path(const char* file) {
  return std::string(kCorpusDir) + "/" + file;
}

struct Corpus {
  net::Topology topo;
  chg::ChangeLog log;
  std::shared_ptr<io::MappedStore> mapped;
  core::BatchConfig config;  ///< zip-indexed selection, corpus windows
};

const Corpus& corpus() {
  static const Corpus c = [] {
    const sim::ScaleCorpusConfig& cfg = corpus_config();
    const sim::ScaleCorpusReport rep = sim::write_scale_corpus(kCorpusDir, cfg);
    Corpus out;
    {
      std::ifstream in(corpus_path("topology.csv"));
      out.topo = io::load_topology_csv(in);
    }
    {
      std::ifstream in(corpus_path("changes.csv"));
      io::load_changes_csv(in, out.log);
    }
    std::string why;
    out.mapped = io::MappedStore::open(corpus_path("series.litmus-snap"), &why);
    if (!out.mapped || out.mapped->size() != rep.series) {
      std::fprintf(stderr, "bench_store: cannot map corpus snapshot: %s\n",
                   why.c_str());
      std::exit(1);
    }
    out.config.assessment.before_bins = cfg.before_bins;
    out.config.assessment.guard_bins = cfg.guard_bins;
    out.config.assessment.after_bins = cfg.after_bins;
    out.config.predicate =
        core::all_of({core::same_zip(), core::same_technology()});
    out.config.group_key = [](const net::Topology& t, net::ElementId id) {
      const auto& e = t.get(id);
      return static_cast<std::uint64_t>(e.zip.value) * 8 +
             static_cast<std::uint64_t>(e.technology);
    };
    return out;
  }();
  return c;
}

// The heap-materialised twin of the mapped store, for the fetch A/B.
const io::SeriesStore& heap_store() {
  static const io::SeriesStore s = [] {
    io::SeriesStore store;
    std::string why;
    const io::SnapshotLoad load = io::load_series_snapshot(
        corpus_path("series.litmus-snap"), store, /*expected_fingerprint=*/0,
        /*expected_bytes=*/0, &why);
    if (load != io::SnapshotLoad::kLoaded) {
      std::fprintf(stderr, "bench_store: heap snapshot load failed: %s\n",
                   why.c_str());
      std::exit(1);
    }
    return store;
  }();
  return s;
}

// Full open + validation per iteration: header checks, the FNV pass over
// every payload byte, record-index build. Warm after the first iteration,
// so this times validation throughput, not disk.
void BM_MappedOpen(benchmark::State& state) {
  corpus();  // ensure the snapshot exists
  const std::string path = corpus_path("series.litmus-snap");
  std::uint64_t series = 0, bytes = 0;
  for (auto _ : state) {
    std::string why;
    auto store = io::MappedStore::open(path, &why);
    if (!store) {
      state.SkipWithError(("open failed: " + why).c_str());
      return;
    }
    series = store->size();
    bytes = store->bytes_mapped();
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * series));
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * bytes));
}
BENCHMARK(BM_MappedOpen);

// One assessment window pair (study before + after, target KPI) per change
// record, through a SeriesProvider. The two variants run the identical
// fetch loop; only the provider differs.
void fetch_windows(benchmark::State& state,
                   const core::SeriesProvider& provider) {
  const Corpus& c = corpus();
  const core::AssessmentConfig& a = c.config.assessment;
  const std::int64_t before = static_cast<std::int64_t>(a.before_bins);
  double sink = 0.0;
  for (auto _ : state) {
    for (const chg::ChangeRecord& r : c.log.all()) {
      const ts::TimeSeries sb =
          provider(r.element, r.target_kpi, r.bin - before, a.before_bins);
      const ts::TimeSeries sa = provider(
          r.element, r.target_kpi,
          r.bin + static_cast<std::int64_t>(a.guard_bins), a.after_bins);
      sink += sb.values().empty() ? 0.0 : sb.values().front();
      sink += sa.values().empty() ? 0.0 : sa.values().front();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * c.log.size()));
}

void BM_WindowFetchHeap(benchmark::State& state) {
  corpus();
  fetch_windows(state, heap_store().provider());
}
BENCHMARK(BM_WindowFetchHeap);

void BM_WindowFetchMapped(benchmark::State& state) {
  fetch_windows(state, corpus().mapped->provider());
}
BENCHMARK(BM_WindowFetchMapped);

// Calibration primitive: one change record end to end (control selection,
// window fetch, robust regression, vote) off the mapped provider.
void BM_AssessOne(benchmark::State& state) {
  const Corpus& c = corpus();
  chg::ChangeLog one;
  one.add(c.log.all().front());
  const core::SeriesProvider provider = c.mapped->provider();
  for (auto _ : state) {
    const core::BatchReport rep =
        core::assess_change_log(one, c.topo, provider, c.config);
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AssessOne);

// The headline: the whole change log off the mapped store, unsharded
// (/1) and through the sharded driver (/4). items_per_second is change
// records (= study elements) assessed per second.
void BM_BatchAssess(benchmark::State& state) {
  const Corpus& c = corpus();
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  const core::SeriesProvider provider = c.mapped->provider();
  std::size_t assessed = 0;
  for (auto _ : state) {
    if (shards <= 1) {
      const core::BatchReport rep =
          core::assess_change_log(c.log, c.topo, provider, c.config);
      assessed = rep.items.size();
      benchmark::DoNotOptimize(rep);
    } else {
      const core::ShardedBatchReport rep = core::assess_change_log_sharded(
          c.log, c.topo, provider, shards, c.config);
      assessed = rep.merged.items.size();
      benchmark::DoNotOptimize(rep);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * assessed));
}
// No Unit() override: the regression gate divides this row's real_time by
// BM_AssessOne's, so both must stay in google-benchmark's default ns.
BENCHMARK(BM_BatchAssess)->Arg(1)->Arg(4);

// The adaptive-sampling headline (DESIGN.md §16): the same change log at
// the high-robustness budget of 100 iterations, adaptive off (/0) vs on
// (/1). Most corpus elements are decisively null or decisively shifted
// and stop after ~12 iterations, so records/s multiplies — CI gates the
// /0 vs /1 ratio with a 1.5x floor (machine-independent: both rows come
// from the same process). At the default budget of 25 the Gram fast path
// makes iterations cheap enough that early stopping only breaks even;
// the adaptive layer is what makes budgets like 100 affordable at scale.
void BM_BatchAssessAdaptive(benchmark::State& state) {
  const Corpus& c = corpus();
  const core::SeriesProvider provider = c.mapped->provider();
  core::BatchConfig config = c.config;
  config.assessment.regression.n_iterations = 100;
  config.assessment.regression.adaptive_sampling = state.range(0) != 0;
  std::size_t assessed = 0;
  for (auto _ : state) {
    const core::BatchReport rep =
        core::assess_change_log(c.log, c.topo, provider, config);
    assessed = rep.items.size();
    benchmark::DoNotOptimize(rep);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * assessed));
}
BENCHMARK(BM_BatchAssessAdaptive)->Arg(0)->Arg(1);

// Same manifest-embedding scheme as the other benches.
void embed_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // bench ran with a different reporter; nothing to do
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) return;

  obs::RunManifest manifest;
  manifest.tool = "bench_store";
  manifest.threads = par::threads();
  manifest.seed = corpus_config().seed;
  manifest.started_at_utc = obs::utc_timestamp_now();
  manifest.add_config("elements", std::to_string(corpus_elements()));
  manifest.add_config("kpis", std::to_string(corpus_config().kpis.size()));
  text.insert(brace + 1, "\n\"manifest\": " + manifest.to_json() + ",");

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot rewrite %s\n", path.c_str());
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  litmus::par::set_threads(1);
  std::vector<char*> args(argv, argv + argc);
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
  std::string out_flag = "--benchmark_out=BENCH_store.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (out_path.empty()) {
    out_path = "BENCH_store.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  embed_manifest(out_path);
  return 0;
}
