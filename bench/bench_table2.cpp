// Reproduces paper Table 2: evaluation using known assessments of network
// changes (19 production change campaigns, 313 (element, KPI) cases).
//
// Expected shape (paper): Litmus labels every case correctly (100%
// accuracy); DiD gets 100% precision but misses some expected impacts under
// control-group contamination (84.66% accuracy); study-group-only analysis
// collapses under external factors (41.53% accuracy, 0.98% TNR).
//
// Also writes BENCH_table2.json (accuracy metrics + wall time) so the
// quality/perf trajectory is machine-trackable across commits.
#include <cstdio>
#include <fstream>

#include "eval/known_assessments.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "parallel/pool.h"

namespace {

constexpr std::uint64_t kSeed = 2011;  // run_known_assessments default

void write_json(const litmus::eval::KnownAssessmentResults& r,
                double wall_seconds) {
  std::ofstream out("BENCH_table2.json");
  if (!out) {
    std::fprintf(stderr, "warning: cannot write BENCH_table2.json\n");
    return;
  }
  litmus::obs::RunManifest manifest;
  manifest.tool = "bench_table2";
  manifest.threads = litmus::par::threads();
  manifest.seed = kSeed;
  manifest.started_at_utc = litmus::obs::utc_timestamp_now();
  litmus::obs::JsonWriter w(out);
  w.begin_object();
  w.member("bench", "table2");
  w.key("manifest");
  manifest.write(w);
  w.member("cases", static_cast<std::uint64_t>(r.cases));
  w.member("wall_seconds", wall_seconds);
  const auto algorithm = [&](const char* name,
                             const litmus::eval::ConfusionCounts& c) {
    w.key(name).begin_object();
    w.member("tp", static_cast<std::uint64_t>(c.tp))
        .member("tn", static_cast<std::uint64_t>(c.tn))
        .member("fp", static_cast<std::uint64_t>(c.fp))
        .member("fn", static_cast<std::uint64_t>(c.fn))
        .member("precision", c.precision())
        .member("recall", c.recall())
        .member("true_negative_rate", c.true_negative_rate())
        .member("accuracy", c.accuracy());
    w.end_object();
  };
  algorithm("study_only", r.total.study_only);
  algorithm("did", r.total.did);
  algorithm("litmus", r.total.litmus);
  w.end_object();
  out << '\n';
}

}  // namespace

int main() {
  using namespace litmus;
  const std::uint64_t t0 = obs::now_ns();
  const eval::KnownAssessmentResults r = eval::run_known_assessments(kSeed);
  const double wall_seconds =
      static_cast<double>(obs::now_ns() - t0) / 1e9;
  std::printf("%s\n", eval::format_table2(r).c_str());
  std::printf("paper reference (Table 2): accuracy 41.53%% / 84.66%% / "
              "100.00%%; recall 61.14%% / 79.49%% / 100.00%%; "
              "TNR 0.98%% / 100.00%% / 100.00%%\n");
  write_json(r, wall_seconds);
  std::printf("wrote BENCH_table2.json (%.2f s)\n", wall_seconds);
  return 0;
}
