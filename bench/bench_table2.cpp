// Reproduces paper Table 2: evaluation using known assessments of network
// changes (19 production change campaigns, 313 (element, KPI) cases).
//
// Expected shape (paper): Litmus labels every case correctly (100%
// accuracy); DiD gets 100% precision but misses some expected impacts under
// control-group contamination (84.66% accuracy); study-group-only analysis
// collapses under external factors (41.53% accuracy, 0.98% TNR).
#include <cstdio>

#include "eval/known_assessments.h"

int main() {
  using namespace litmus;
  const eval::KnownAssessmentResults r = eval::run_known_assessments();
  std::printf("%s\n", eval::format_table2(r).c_str());
  std::printf("paper reference (Table 2): accuracy 41.53%% / 84.66%% / "
              "100.00%%; recall 61.14%% / 79.49%% / 100.00%%; "
              "TNR 0.98%% / 100.00%% / 100.00%%\n");
  return 0;
}
