// Extension bench (paper Section 6, future work): device-dimension
// assessment. A firmware rollout to one device class regresses its service;
// simultaneously a severe storm degrades the whole market. Per-device
// study-only reads blame the weather window; Litmus's device-vs-device
// comparison on the same towers isolates the firmware's effect.
#include <cstdio>
#include <memory>

#include "cellnet/builder.h"
#include "device/device_assessor.h"
#include "litmus/study_only.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"
#include "tsmath/stats.h"

using namespace litmus;

int main() {
  std::printf("=== Device-dimension Litmus: bad firmware rollout during a "
              "storm ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kMidwest, 777,
                                               /*rncs=*/2, /*nodebs=*/8);
  const auto towers = topo.of_kind(net::ElementKind::kNodeB);

  sim::KpiGenerator gen(topo, {.seed = 777});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  // Storm over the market, days 1-3 after the rollout.
  auto storm = sim::make_event(sim::WeatherKind::kSevereStorm,
                               topo.get(towers[0]).location, 24, 2 * 24);
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{storm}));

  dev::SegmentedGenerator seg(gen, dev::DeviceCatalog::standard());
  // The rollout: class 2's new firmware regresses voice by ~1.2 sigma.
  dev::DeviceEvent rollout;
  rollout.device = dev::DeviceClassId{2};
  rollout.start_bin = 0;
  rollout.sigma_shift = -1.2;
  seg.add_event(rollout);

  const auto& cat = seg.catalog();
  const auto kpi_id = kpi::KpiId::kVoiceRetainability;
  std::printf("device classes and their absolute before->after shifts "
              "(mean across %zu towers):\n", towers.size());
  for (const auto& cls : cat.all()) {
    double before = 0, after = 0;
    for (const auto t : towers) {
      const auto s = seg.kpi_series(t, cls.id, kpi_id, -14 * 24, 28 * 24);
      before += ts::mean(s.slice_bins(-14 * 24, 0));
      after += ts::mean(s.slice_bins(0, 14 * 24));
    }
    before /= towers.size();
    after /= towers.size();
    std::printf("  %-10s %-10s fw=%-6s  delta=%+0.5f%s\n",
                cls.vendor.c_str(), cls.model.c_str(), cls.firmware.c_str(),
                after - before,
                cls.id == rollout.device ? "   <- upgraded class" : "");
  }

  const dev::DeviceImpactAssessor assessor(seg);
  const dev::DeviceAssessment a =
      assessor.assess(rollout.device, towers, kpi_id, 0);
  std::printf("\nLitmus device-vs-device verdict for the upgraded class: %s "
              "(%zu/%zu towers degraded)\n",
              to_string(a.summary.verdict), a.summary.degradations,
              towers.size());

  // Sanity: the non-upgraded classes read no-impact. The upgraded class is
  // excluded from their control groups — it just changed, so it is inside
  // the rollout's impact scope and not a valid control (Section 3.3).
  const std::vector<dev::DeviceClassId> exclude{rollout.device};
  std::size_t clean = 0;
  for (const auto& cls : cat.all()) {
    if (cls.id == rollout.device) continue;
    if (assessor.assess(cls.id, towers, kpi_id, 0, exclude).summary.verdict ==
        core::Verdict::kNoImpact)
      ++clean;
  }
  std::printf("non-upgraded classes judged no-impact: %zu/3\n", clean);
  std::printf("\nexpected shape: only the upgraded class flags degradation "
              "despite the storm hitting every class. %s\n",
              (a.summary.verdict == core::Verdict::kDegradation && clean == 3)
                  ? "[reproduced]"
                  : "[NOT reproduced]");
  return 0;
}
