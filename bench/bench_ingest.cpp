// Ingest throughput benches: the seed getline/std::string series parser
// versus the mmap chunk-parallel zero-copy fast path (io/ingest.h), plus
// the warm binary-snapshot load that skips parsing entirely.
//
// A synthetic series CSV (default 1M rows; LITMUS_BENCH_INGEST_ROWS
// overrides) is generated once per process into the working directory.
// BM_SeedParse is a frozen, self-contained replica of the seed tree's
// parser (getline + per-field std::string split + std::map accumulate) so
// the calibration baseline cannot drift as the live code improves. The
// gated ratios for tools/check_bench_regression.py are
//
//     BM_IngestParse/1    / BM_SeedParse   (the >=4x parse speedup)
//     BM_SnapshotWarmLoad / BM_SeedParse   (the >=10x snapshot win)
//
// which directly encode the acceptance speedups and are machine-
// independent. Results go to BENCH_ingest.json with an embedded manifest.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/ingest.h"
#include "io/snapshot.h"
#include "io/store.h"
#include "obs/manifest.h"
#include "parallel/pool.h"
#include "tsmath/random.h"

namespace {

using namespace litmus;

constexpr const char* kCsvPath = "bench_ingest_series.csv";
constexpr const char* kSnapDir = "bench_ingest_snap";

std::size_t dataset_rows() {
  if (const char* env = std::getenv("LITMUS_BENCH_INGEST_ROWS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 1'000'000;
}

// 250 elements x 2 KPIs x (rows / 500) hourly bins, values jittered around
// a retainability operating point with some missing ("nan") bins — the
// row-per-observation shape production exports have.
void generate_dataset(const std::string& path, std::size_t rows) {
  const std::size_t n_elements = 250;
  const std::size_t n_kpis = 2;
  const std::size_t bins_per_series =
      std::max<std::size_t>(1, rows / (n_elements * n_kpis));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "# element_id, kpi_name, bin, value\n");
  ts::Rng rng(20130209);
  const char* kpis[n_kpis] = {"voice_retainability", "data_retainability"};
  for (std::size_t e = 1; e <= n_elements; ++e) {
    for (std::size_t k = 0; k < n_kpis; ++k) {
      for (std::size_t b = 0; b < bins_per_series; ++b) {
        const std::int64_t bin =
            static_cast<std::int64_t>(b) - 14 * 24;
        if (rng.next_double() < 0.01) {
          std::fprintf(f, "%zu, %s, %lld, nan\n", e, kpis[k],
                       static_cast<long long>(bin));
        } else {
          std::fprintf(f, "%zu, %s, %lld, %.6f\n", e, kpis[k],
                       static_cast<long long>(bin),
                       0.97 + 0.02 * rng.normal());
        }
      }
    }
  }
  std::fclose(f);
}

const std::string& dataset() {
  static const std::string path = [] {
    generate_dataset(kCsvPath, dataset_rows());
    return std::string(kCsvPath);
  }();
  return path;
}

// ---------------------------------------------------------------------------
// Frozen replica of the seed tree's series parser (io/csv.cpp +
// io/store.cpp as of the initial commit). Deliberately NOT the live code:
// the live parser keeps getting faster, and a calibration baseline that
// improves alongside the contender would silently relax the gate.
namespace seedref {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(trim(cur));
  return fields;
}

std::optional<std::vector<std::string>> read_csv_row(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    return split_csv_line(t);
  }
  return std::nullopt;
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

double parse_double_or_missing(const std::string& s) {
  if (s.empty() || s == "nan" || s == "NaN" || s == "NA")
    return std::numeric_limits<double>::quiet_NaN();
  const auto v = parse_double(s);
  return v ? *v : std::numeric_limits<double>::quiet_NaN();
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::size_t load_series_csv(std::istream& in, io::SeriesStore& store) {
  struct Points {
    std::int64_t min_bin = 0;
    std::int64_t max_bin = 0;
    std::vector<std::pair<std::int64_t, double>> values;
  };
  std::map<std::pair<std::uint32_t, kpi::KpiId>, Points> acc;

  std::size_t count = 0;
  while (const auto row = read_csv_row(in)) {
    if (row->size() != 4)
      throw std::runtime_error("series csv: expected 4 fields, got " +
                               std::to_string(row->size()));
    const auto element = parse_int((*row)[0]);
    const auto kpi = kpi::parse_kpi((*row)[1]);
    const auto bin = parse_int((*row)[2]);
    if (!element || *element <= 0 || !kpi || !bin)
      throw std::runtime_error("series csv: malformed row");
    const double value = parse_double_or_missing((*row)[3]);

    auto& p = acc[{static_cast<std::uint32_t>(*element), *kpi}];
    if (p.values.empty()) {
      p.min_bin = p.max_bin = *bin;
    } else {
      p.min_bin = std::min(p.min_bin, *bin);
      p.max_bin = std::max(p.max_bin, *bin);
    }
    p.values.emplace_back(*bin, value);
    ++count;
  }

  for (auto& [key, p] : acc) {
    ts::TimeSeries s(p.min_bin,
                     static_cast<std::size_t>(p.max_bin - p.min_bin + 1), 60);
    for (const auto& [bin, value] : p.values) s.set_bin(bin, value);
    store.put(net::ElementId{key.first}, key.second, std::move(s));
  }
  return count;
}

}  // namespace seedref

// Seed parser replica: the calibration primitive every gated ratio
// divides by.
void BM_SeedParse(benchmark::State& state) {
  const std::string& path = dataset();
  std::size_t rows = 0;
  for (auto _ : state) {
    std::ifstream in(path);
    io::SeriesStore store;
    rows = seedref::load_series_csv(in, store);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
}
BENCHMARK(BM_SeedParse);

// Today's serial loader (CsvReader + SeriesAccum) — informational, shows
// how much of the win the shared scalar improvements account for.
void BM_SerialParse(benchmark::State& state) {
  const std::string& path = dataset();
  std::size_t rows = 0;
  for (auto _ : state) {
    std::ifstream in(path);
    io::SeriesStore store;
    rows = io::load_series_csv(in, store);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
}
BENCHMARK(BM_SerialParse);

// Chunked zero-copy parse over the mapped bytes; Arg = forced chunk count
// (1 isolates the single-thread parser win, 4 exercises the chunk merge).
// The buffer is mapped once outside the loop: this benches the parse, not
// page-cache traffic — the seed loader's ifstream reads warm pages too.
void BM_IngestParse(benchmark::State& state) {
  const std::string& path = dataset();
  static const io::InputBuffer& buf = []() -> const io::InputBuffer& {
    static io::InputBuffer b = io::InputBuffer::map_file(dataset());
    return b;
  }();
  io::IngestOptions opts;
  opts.force_chunks = static_cast<std::size_t>(state.range(0));
  std::size_t rows = 0;
  for (auto _ : state) {
    io::SeriesStore store;
    rows = io::load_series_csv_fast(buf.view(), store, opts);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * rows));
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
}
BENCHMARK(BM_IngestParse)->Arg(1)->Arg(4);

// Warm snapshot hit end to end: stat the source, trust the recorded
// fingerprint, validate the snapshot checksum, load columns. The first
// iteration's cold miss writes the snapshot.
void BM_SnapshotWarmLoad(benchmark::State& state) {
  const std::string& path = dataset();
  std::filesystem::create_directories(kSnapDir);
  io::IngestOptions opts;
  opts.snapshot_dir = kSnapDir;
  {
    io::SeriesStore store;  // prime the cache
    (void)io::ingest_series_file(path, store, opts);
  }
  bool warm = true;
  for (auto _ : state) {
    io::SeriesStore store;
    const io::IngestReport rep = io::ingest_series_file(path, store, opts);
    warm = warm && rep.from_snapshot;
    benchmark::DoNotOptimize(store);
  }
  if (!warm) state.SkipWithError("snapshot cache did not stay warm");
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * std::filesystem::file_size(path)));
}
BENCHMARK(BM_SnapshotWarmLoad);

// Same manifest-embedding scheme as bench_perf.cpp / bench_kernels.cpp.
void embed_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // bench ran with a different reporter; nothing to do
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) return;

  obs::RunManifest manifest;
  manifest.tool = "bench_ingest";
  manifest.threads = par::threads();
  manifest.seed = 20130209;
  manifest.started_at_utc = obs::utc_timestamp_now();
  manifest.add_config("rows", std::to_string(dataset_rows()));
  text.insert(brace + 1, "\n\"manifest\": " + manifest.to_json() + ",");

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot rewrite %s\n", path.c_str());
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  litmus::par::set_threads(1);
  std::vector<char*> args(argv, argv + argc);
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
  std::string out_flag = "--benchmark_out=BENCH_ingest.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (out_path.empty()) {
    out_path = "BENCH_ingest.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  embed_manifest(out_path);
  return 0;
}
