// Fig 5: a big event at a venue. Total voice-call volume at the towers
// serving the location jumps during the event, and voice retainability
// drops — the congestion mechanism that makes traffic shifts a confound.
// This bench reproduces both bars at the CDR level: sessions are generated
// per tower, aggregated to counters, and the KPIs derived from summed
// counters exactly as the carrier pipeline would.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "kpi/aggregate.h"
#include "kpi/cdr.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/traffic.h"
#include "tsmath/stats.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 5: traffic volume and voice retainability during a "
              "big event ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kMidwest, 88,
                                               /*rncs=*/2, /*nodebs_per_rnc=*/8);
  const auto towers = topo.of_kind(net::ElementKind::kNodeB);

  // Event: a stadium game near the first tower, hours 12-18 of day 7.
  sim::VenueEvent game;
  game.venue = topo.get(towers[0]).location;
  game.radius_km = 10.0;
  game.start_bin = 7 * 24 + 12;
  game.end_bin = 7 * 24 + 18;
  game.peak_load_multiplier = 5.0;

  sim::KpiGenerator gen(topo, {.seed = 606});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::TrafficEventFactor>(
      std::vector<sim::HolidayWindow>{}, std::vector<sim::VenueEvent>{game}));

  // CDR-level simulation for the towers at the event location: session
  // volumes follow the load; drop probability rises with congestion.
  ts::Rng rng(909);
  std::vector<kpi::CounterSeries> counters;
  for (const auto t : towers) {
    const ts::TimeSeries load = gen.load_series(t, 0, 14 * 24);
    kpi::CounterSeries cs(0, 14 * 24);
    for (std::int64_t bin = 0; bin < 14 * 24; ++bin) {
      kpi::SessionRates rates;
      const double l = load.at_bin(bin);
      rates.voice_attempts_per_bin = 200.0 * l;
      // Congestion drives drops once load clears the knee.
      rates.voice_drop_prob = 0.02 + 0.05 * std::max(0.0, l - 1.3);
      rates.voice_block_prob = 0.015 + 0.04 * std::max(0.0, l - 1.5);
      for (const auto& rec :
           kpi::synthesize_bin_records(rng, t, bin, rates))
        kpi::accumulate(cs.at_bin(bin), rec);
    }
    counters.push_back(std::move(cs));
  }

  const kpi::CounterSeries total = kpi::sum_counters(counters);
  auto window_stats = [&](std::int64_t from, std::int64_t to) {
    kpi::CounterBin agg;
    for (std::int64_t b = from; b < to; ++b) agg += total.at_bin(b);
    const double retain = kpi::compute_kpi(
        agg, kpi::KpiId::kVoiceRetainability, 60);
    return std::pair<double, double>(
        static_cast<double>(agg.voice_attempts) / (to - from), retain);
  };

  // "Before": same hours the day before the event. "During": event hours.
  const auto [vol_before, ret_before] =
      window_stats(6 * 24 + 12, 6 * 24 + 18);
  const auto [vol_during, ret_during] =
      window_stats(7 * 24 + 12, 7 * 24 + 18);

  std::printf("aggregated across all towers at the event location:\n");
  std::printf("  voice call volume   before=%8.0f/h  during=%8.0f/h  "
              "(x%.2f)\n",
              vol_before, vol_during, vol_during / vol_before);
  std::printf("  voice retainability delta during-vs-before: %+.5f\n",
              ret_during - ret_before);
  std::printf("\npaper shape: volume up dramatically during the event; "
              "retainability lower during than before. %s\n",
              (vol_during > 2.0 * vol_before && ret_during < ret_before)
                  ? "[reproduced]"
                  : "[NOT reproduced]");
  return 0;
}
