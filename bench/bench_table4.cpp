// Reproduces paper Tables 3 and 4: synthetic-injection evaluation of the
// three algorithms (study-only, DiD, Litmus robust spatial regression).
//
// Expected shape (paper): accuracy Litmus > DiD > study-only; Litmus recall
// highest (97.5% vs 86.9% vs 74.2% in the paper); study-only true-negative
// rate collapses (3.7%) because external variation always moves the study
// series.
//
// Trials per cell default to 40 (≈3200 cases) to keep the default bench
// sweep quick; set LITMUS_TABLE4_TRIALS=100 to match the paper's ~8000-case
// scale.
#include <cstdio>
#include <cstdlib>

#include "eval/synthetic.h"

int main() {
  using namespace litmus;

  eval::SyntheticConfig cfg;
  if (const char* env = std::getenv("LITMUS_TABLE4_TRIALS"))
    cfg.trials_per_cell = static_cast<std::size_t>(std::atoi(env));
  else
    cfg.trials_per_cell = 40;

  std::printf("running synthetic-injection sweep: %zu patterns x %zu regions "
              "x %zu kpis x %zu trials...\n",
              eval::kAllPatterns.size(), eval::synthetic_regions().size(),
              eval::synthetic_kpis().size(), cfg.trials_per_cell);

  const eval::SyntheticResults r = eval::run_synthetic_sweep(cfg);
  std::printf("\n%s\n", eval::format_table3(r).c_str());
  std::printf("%s\n", eval::format_table4(r).c_str());

  std::printf("paper reference (Table 4): accuracy 56.54%% / 75.43%% / "
              "82.35%%; recall 74.23%% / 86.90%% / 97.47%%; "
              "TNR 3.73%% / 41.19%% / 37.21%%\n");
  return 0;
}
