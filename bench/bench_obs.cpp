// Self-overhead benchmark for the observability layer — what does the
// instrumentation itself cost?
//
// BM_AssessObs runs one assessment at the default production shape
// (16 controls, 14-day windows) under four instrumentation levels:
//   Arg(0)  off      — obs disabled, tracer stopped (the production
//                      default; CI gates this mode against the committed
//                      BENCH_obs_baseline.json)
//   Arg(1)  metrics  — counters/gauges/stage histograms on
//   Arg(2)  sampled  — metrics + tracing with 1-in-16 span sampling
//   Arg(3)  full     — metrics + every span recorded to the rings
//
// BM_OlsFit is the CPU-speed calibration primitive; the CI gate compares
// the off-mode/calibration *ratio* so raw machine speed cancels out
// (tools/check_bench_regression.py --key BM_AssessObs/0).
//
// Unless the caller passes its own --benchmark_out, results are written to
// BENCH_obs.json with an embedded provenance manifest.
#include <benchmark/benchmark.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/group_sim.h"
#include "litmus/spatial_regression.h"
#include "obs/http.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "tsmath/linreg.h"
#include "tsmath/random.h"

namespace {

using namespace litmus;

core::ElementWindows make_windows(std::size_t n_controls, std::size_t days) {
  eval::EpisodeSpec spec;
  spec.n_control = n_controls;
  spec.before_bins = days * 24;
  spec.after_bins = days * 24;
  spec.true_sigma = 1.5;
  spec.seed = 97;
  return eval::simulate_episode(spec).study_windows.front();
}

constexpr int kModeOff = 0;
constexpr int kModeMetrics = 1;
constexpr int kModeSampled = 2;
constexpr int kModeFull = 3;

void BM_AssessObs(benchmark::State& state) {
  const auto w = make_windows(16, 14);
  const core::RobustSpatialRegression alg;
  const int mode = static_cast<int>(state.range(0));

  obs::set_enabled(mode >= kModeMetrics);
  if (mode >= kModeSampled) {
    obs::TraceConfig config;
    config.mode = mode == kModeSampled ? obs::TraceMode::kSampled
                                       : obs::TraceMode::kFull;
    config.sample_every = 16;
    obs::Tracer::global().start(config);
  }

  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }

  obs::Tracer::global().stop();
  obs::set_enabled(false);
  switch (mode) {
    case kModeOff: state.SetLabel("obs off"); break;
    case kModeMetrics: state.SetLabel("metrics"); break;
    case kModeSampled: state.SetLabel("metrics+trace/16"); break;
    default: state.SetLabel("metrics+trace full"); break;
  }
}
BENCHMARK(BM_AssessObs)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Raw span cost, isolated: open+close one ScopedSpan per iteration under
// each instrumentation level. This is the per-call price every
// instrumented stage pays, independent of assessment work.
void BM_SpanOpenClose(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  obs::set_enabled(mode >= kModeMetrics);
  if (mode >= kModeSampled) {
    obs::TraceConfig config;
    config.mode = mode == kModeSampled ? obs::TraceMode::kSampled
                                       : obs::TraceMode::kFull;
    config.sample_every = 16;
    obs::Tracer::global().start(config);
  }
  for (auto _ : state) {
    obs::ScopedSpan span("bench.span");
    benchmark::ClobberMemory();
  }
  obs::Tracer::global().stop();
  obs::set_enabled(false);
}
BENCHMARK(BM_SpanOpenClose)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Cost of the live observability plane on the assessment hot path:
//   Arg(0)  serve off  — no server constructed: the zero-overhead claim
//                        (CI gates this row against the baseline; it must
//                        match BM_AssessObs/1, metrics-only)
//   Arg(1)  serve idle — HTTP server bound and listening, nobody scraping
//   Arg(2)  scraped    — a loopback client scrapes /metrics in a tight
//                        loop for the whole measurement
// The serve path reads atomic counters and takes only the snapshot's own
// stripe locks, so all three rows should be statistically identical.
void BM_AssessServe(benchmark::State& state) {
  const auto w = make_windows(16, 14);
  const core::RobustSpatialRegression alg;
  const int mode = static_cast<int>(state.range(0));

  obs::set_enabled(true);  // serve implies metrics collection
  obs::HttpServer server;
  std::atomic<bool> stop_scraper{false};
  std::thread scraper;
  if (mode >= 1) server.start({});
  if (mode >= 2) {
    const std::string addr = server.address();
    scraper = std::thread([addr, &stop_scraper] {
      const auto colon = addr.rfind(':');
      const int port = std::stoi(addr.substr(colon + 1));
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        sockaddr_in sa{};
        sa.sin_family = AF_INET;
        sa.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &sa.sin_addr);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) ==
            0) {
          const char req[] = "GET /metrics HTTP/1.1\r\nHost: b\r\n\r\n";
          (void)!::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL);
          char buf[4096];
          while (::recv(fd, buf, sizeof(buf), 0) > 0) {
          }
        }
        ::close(fd);
      }
    });
  }

  for (auto _ : state) {
    auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
    benchmark::DoNotOptimize(out);
  }

  stop_scraper.store(true, std::memory_order_relaxed);
  if (scraper.joinable()) scraper.join();
  server.stop();
  obs::set_enabled(false);
  switch (mode) {
    case 0: state.SetLabel("serve off"); break;
    case 1: state.SetLabel("serve idle"); break;
    default: state.SetLabel("serve + continuous scrape"); break;
  }
}
BENCHMARK(BM_AssessServe)->Arg(0)->Arg(1)->Arg(2);

// Calibration primitive shared with bench_perf: scales with raw CPU
// speed, not with instrumentation changes.
void BM_OlsFit(benchmark::State& state) {
  const std::size_t rows = 336;
  const std::size_t cols = static_cast<std::size_t>(state.range(0));
  ts::Rng rng(5);
  ts::Matrix x(rows, cols);
  std::vector<double> y(rows);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < rows; ++r) x(r, c) = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    auto m = ts::fit_ols(x, y, true);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_OlsFit)->Arg(16);

// Same post-hoc provenance embedding as bench_perf (see the comment
// there): a "manifest" block becomes the first key of the report so the
// regression gate can warn on apples-to-oranges comparisons.
void embed_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // bench ran with a different reporter; nothing to do
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) return;

  obs::RunManifest manifest;
  manifest.tool = "bench_obs";
  manifest.threads = par::threads();
  manifest.seed = 97;  // EpisodeSpec seed
  manifest.started_at_utc = obs::utc_timestamp_now();
  text.insert(brace + 1, "\n\"manifest\": " + manifest.to_json() + ",");

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot rewrite %s\n", path.c_str());
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  // The off-vs-on comparison is about per-call overhead, not scheduling;
  // single-threaded keeps the measurement quiet.
  litmus::par::set_threads(1);
  std::vector<char*> args(argv, argv + argc);
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
  std::string out_flag = "--benchmark_out=BENCH_obs.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (out_path.empty()) {
    out_path = "BENCH_obs.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  embed_manifest(out_path);
  return 0;
}
