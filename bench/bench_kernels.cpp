// Microbenchmarks for the batch-sweep hot-path kernels: the columnar
// design-matrix fill, the blocked Gram panel build, the shared panel
// cache, and the multi-element sweep those kernels compose into.
//
// Where bench_perf.cpp tracks whole-assessment latency, this family
// isolates the layers the panel cache and columnar overhaul touch, so a
// regression pinpoints which kernel moved. The on/off pair of
// BM_MultiElementSweep is the acceptance measurement for the cache: same
// work, same results (bit-identical — tests/litmus/panel_cache_test.cpp),
// only the panel rebuilds are saved.
//
// Results go to BENCH_kernels.json (google-benchmark JSON with an embedded
// manifest block) unless the caller passes --benchmark_out; gate with
//   tools/check_bench_regression.py --key <name> baseline.json candidate.json
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/group_sim.h"
#include "litmus/panel_cache.h"
#include "litmus/spatial_regression.h"
#include "obs/manifest.h"
#include "parallel/pool.h"
#include "tsmath/gram.h"
#include "tsmath/matrix.h"
#include "tsmath/random.h"
#include "tsmath/ranks.h"
#include "tsmath/simd/dispatch.h"
#include "tsmath/simd/kernels.h"
#include "tsmath/timeseries.h"

namespace {

using namespace litmus;

constexpr std::size_t kRows = 14 * 24;  // 14-day hourly before window

std::vector<ts::TimeSeries> make_controls(std::size_t n) {
  ts::Rng rng(41);
  std::vector<ts::TimeSeries> out;
  out.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> v(kRows + 48);  // some slack on both sides
    for (auto& x : v) x = rng.normal();
    out.emplace_back(-24, std::move(v));
  }
  return out;
}

ts::Matrix fill_design(const std::vector<ts::TimeSeries>& controls) {
  ts::Matrix x(kRows, controls.size());
  for (std::size_t c = 0; c < controls.size(); ++c)
    controls[c].copy_range_into(0, x.column(c));
  return x;
}

// Forces the kernel tier for one benchmark's scope: 0 = scalar, 1 = the
// best tier the host supports. The scalar/native row pair is the A/B
// measurement the SIMD layer is judged by (check_bench_regression.py
// --min-speedup); results are bit-identical either way, so the pair
// times the same work.
class TierGuard {
 public:
  explicit TierGuard(std::int64_t native)
      : prev_(ts::simd::active_tier()) {
    ts::simd::set_active_tier(native != 0 ? ts::simd::detected_tier()
                                          : ts::simd::Tier::kScalar);
  }
  ~TierGuard() { ts::simd::set_active_tier(prev_); }

 private:
  ts::simd::Tier prev_;
};

// Columnar design fill: one copy_range_into per control column.
void BM_DesignFill(benchmark::State& state) {
  const auto controls = make_controls(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto x = fill_design(controls);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kRows * controls.size()));
}
BENCHMARK(BM_DesignFill)->Arg(16)->Arg(64);

// Cold Gram build: the O(m·N²) blocked accumulation the cache amortizes.
// Second arg picks the kernel tier (0 scalar, 1 native).
void BM_GramBuildCold(benchmark::State& state) {
  const TierGuard tier(state.range(1));
  const auto x =
      fill_design(make_controls(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto panel = ts::GramPanel::build(x);
    benchmark::DoNotOptimize(panel);
  }
}
BENCHMARK(BM_GramBuildCold)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// The raw augmented-Gram accumulation kernel on pre-packed columns — the
// tightest loop of the panel build and the row the >=1.5x native-vs-
// scalar acceptance floor is measured on.
void BM_GramAccumulate(benchmark::State& state) {
  const TierGuard tier(state.range(1));
  const auto cols = static_cast<std::size_t>(state.range(0));
  ts::Rng rng(17);
  std::vector<double> packed(kRows * cols);
  for (auto& v : packed) v = rng.normal();
  std::vector<double> g((cols + 1) * (cols + 1));
  for (auto _ : state) {
    std::fill(g.begin(), g.end(), 0.0);
    ts::simd::accumulate_gram(packed.data(), kRows, cols, g.data());
    benchmark::DoNotOptimize(g.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * kRows * cols * (cols + 1) / 2));
}
BENCHMARK(BM_GramAccumulate)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// X̃ᵀy bind against a prebuilt panel: missing-scan of y, gather, Σy/yᵀy,
// and one dot per column through the dispatched kernels.
void BM_GramBind(benchmark::State& state) {
  const TierGuard tier(state.range(1));
  const auto x =
      fill_design(make_controls(static_cast<std::size_t>(state.range(0))));
  const auto panel = ts::GramPanel::build(x);
  ts::Rng rng(23);
  std::vector<double> y(kRows);
  for (auto& v : y) v = rng.normal();
  ts::GramSystem sys;
  for (auto _ : state) {
    const bool ok = sys.bind(panel, y, /*with_intercept=*/true);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(sys);
  }
}
BENCHMARK(BM_GramBind)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// Fligner-Policello placements over a tie-heavy sample pair, as the
// robust rank-order test runs them (both directions in one call). Sized
// under the counting-kernel crossover so the SIMD compare-and-count
// sweep is what gets timed.
void BM_Placements(benchmark::State& state) {
  const TierGuard tier(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(0));
  ts::Rng rng(29);
  std::vector<double> xs(n), ys(n);
  for (auto& v : xs) v = std::round(rng.normal() * 8.0) / 8.0;
  for (auto& v : ys) v = std::round(rng.normal() * 8.0) / 8.0;
  std::vector<double> u_x(n), u_y(n);
  for (auto _ : state) {
    ts::placement_pair_into(xs, ys, u_x, u_y);
    benchmark::DoNotOptimize(u_x.data());
    benchmark::DoNotOptimize(u_y.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * 2 * n));
}
BENCHMARK(BM_Placements)->Args({168, 0})->Args({168, 1});

// Warm-cache path as the analyzer runs it: fingerprint the design, then
// get_or_build on a cache that already holds the panel.
void BM_PanelCacheHit(benchmark::State& state) {
  const auto x =
      fill_design(make_controls(static_cast<std::size_t>(state.range(0))));
  core::PanelCache cache(64u << 20);
  (void)cache.get_or_build(core::fingerprint_design(x),
                           [&] { return ts::GramPanel::build(x); });
  for (auto _ : state) {
    auto panel = cache.get_or_build(core::fingerprint_design(x),
                                    [&] { return ts::GramPanel::build(x); });
    benchmark::DoNotOptimize(panel);
  }
  if (cache.stats().misses != 1) state.SkipWithError("cache did not stay warm");
}
BENCHMARK(BM_PanelCacheHit)->Arg(16)->Arg(64);

// End-to-end multi-element sweep (8 elements sharing one 64-control
// group), cache off (Arg 0) vs on (Arg 1). Items/s counts element
// assessments; the ratio of the two rows is the cache speedup.
void BM_MultiElementSweep(benchmark::State& state) {
  eval::EpisodeSpec spec;
  spec.n_study = 8;
  spec.n_control = 64;
  spec.before_bins = 14 * 24;
  spec.after_bins = 14 * 24;
  spec.true_sigma = 1.5;
  spec.seed = 97;
  const auto episode = eval::simulate_episode(spec);
  const core::RobustSpatialRegression alg;

  core::PanelCache& cache = core::PanelCache::global();
  const std::size_t prev_capacity = cache.capacity_bytes();
  cache.set_capacity_bytes(state.range(0) != 0 ? (64u << 20) : 0);
  cache.clear();
  for (auto _ : state) {
    for (const auto& w : episode.study_windows) {
      auto out = alg.assess(w, kpi::KpiId::kVoiceRetainability);
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * episode.study_windows.size()));
  cache.clear();
  cache.set_capacity_bytes(prev_capacity);
}
BENCHMARK(BM_MultiElementSweep)->Arg(0)->Arg(1);

// Same manifest-embedding scheme as bench_perf.cpp: google-benchmark owns
// the JSON writer, so provenance is spliced in afterwards for
// tools/check_bench_regression.py to inspect.
void embed_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // bench ran with a different reporter; nothing to do
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  const std::size_t brace = text.find('{');
  if (brace == std::string::npos) return;

  obs::RunManifest manifest;
  manifest.tool = "bench_kernels";
  manifest.threads = par::threads();
  manifest.seed = 97;
  manifest.simd_detected = ts::simd::tier_name(ts::simd::detected_tier());
  manifest.simd_dispatch = ts::simd::tier_name(ts::simd::active_tier());
  manifest.fast_math = ts::simd::fast_math();
  manifest.started_at_utc = obs::utc_timestamp_now();
  text.insert(brace + 1, "\n\"manifest\": " + manifest.to_json() + ",");

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot rewrite %s\n", path.c_str());
    return;
  }
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  litmus::par::set_threads(1);
  std::vector<char*> args(argv, argv + argc);
  std::string out_path;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0)
      out_path = argv[i] + 16;
  std::string out_flag = "--benchmark_out=BENCH_kernels.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (out_path.empty()) {
    out_path = "BENCH_kernels.json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  embed_manifest(out_path);
  return 0;
}
