// Fig 9 / case study 5.2: configuration changes at MSCs in the Northeast,
// applied in Fall. Voice retainability improves at the study MSCs — but the
// improvement is foliage (leaves falling), not the change: control MSCs
// improve too, with intensities that vary by location. Study-only analysis
// is a false positive; Litmus reports no relative change, and the
// engineering teams keep the change (no degradation) while correctly
// crediting foliage for the gain.
#include <cstdio>
#include <vector>

#include "eval/group_sim.h"
#include "figutil.h"
#include "litmus/voting.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 9: MSC config change during Fall foliage "
              "improvement ===\n\n");

  // The Fall scenario: a ramped region-wide improvement (leaves falling)
  // with per-element intensity differences, overlapping a truly neutral
  // config change at 3 study MSCs; 12 control MSCs without the change.
  eval::EpisodeSpec spec;
  spec.kpi = kpi::KpiId::kVoiceRetainability;
  spec.kind = net::ElementKind::kMsc;
  spec.region = net::Region::kNortheast;
  spec.n_study = 3;
  spec.n_control = 12;
  spec.true_sigma = 0.0;        // the change really did nothing
  spec.factor_sigma = +2.0;     // foliage improvement across the region
  spec.factor_shape = eval::FactorShape::kRamp;
  spec.factor_heterogeneity = 0.2;  // "different intensities of foliage"
  spec.seed = 2924;
  const eval::Episode ep = eval::simulate_episode(spec);

  // (a)/(b): daily series for study and control MSCs, stitched from the
  // analyzer windows.
  std::vector<std::string> names;
  std::vector<ts::TimeSeries> daily;
  for (std::size_t j = 0; j < ep.study_windows.size(); ++j) {
    const auto& w = ep.study_windows[j];
    ts::TimeSeries full(w.study_before.start_bin(),
                        w.study_before.size() + w.study_after.size(), 60);
    for (std::int64_t b = w.study_before.start_bin();
         b < w.study_before.end_bin(); ++b)
      full.set_bin(b, w.study_before.at_bin(b));
    for (std::int64_t b = w.study_after.start_bin();
         b < w.study_after.end_bin(); ++b)
      full.set_bin(b, w.study_after.at_bin(b));
    names.push_back("study_msc" + std::to_string(j + 1));
    daily.push_back(figutil::daily(full));
  }
  const auto& w0 = ep.study_windows.front();
  for (std::size_t c = 0; c < 4; ++c) {
    ts::TimeSeries full(w0.control_before[c].start_bin(),
                        w0.control_before[c].size() +
                            w0.control_after[c].size(),
                        60);
    for (std::int64_t b = full.start_bin(); b < full.end_bin(); ++b) {
      const double v = b < 0 ? w0.control_before[c].at_bin(b)
                             : w0.control_after[c].at_bin(b);
      full.set_bin(b, v);
    }
    names.push_back("ctrl_msc" + std::to_string(c + 1));
    daily.push_back(figutil::daily(full));
  }
  std::printf("daily voice retainability (relative; change at day 0, "
              "leaf-fall improvement ramping through the window):\n");
  figutil::print_daily_series(names, daily);

  std::printf("\nper-MSC verdicts (ground truth: no impact — foliage lifted "
              "everyone):\n");
  std::vector<core::AnalysisOutcome> outcomes;
  static const core::RobustSpatialRegression litmus_alg;
  for (std::size_t j = 0; j < ep.study_windows.size(); ++j) {
    const std::string name = "study_msc" + std::to_string(j + 1);
    figutil::print_verdicts(name.c_str(), ep.study_windows[j], spec.kpi);
    outcomes.push_back(litmus_alg.assess(ep.study_windows[j], spec.kpi));
  }
  const core::VoteSummary v = core::vote(outcomes);
  std::printf("\nLitmus vote: %s — %s\n", to_string(v.verdict),
              v.verdict == core::Verdict::kNoImpact
                  ? "[reproduced: improvement credited to foliage, not the "
                    "change]"
                  : "[NOT reproduced]");
  return 0;
}
