// Fig 8 / case study 5.1: a feature activation at one RNC (to reduce data
// session start-up times) causes a subtle but persistent increase in the
// dropped-voice-call ratio at the study RNC; the control RNCs in the region
// are unaffected. Litmus detects the statistical change of the study series
// against its control-based forecast, confirming the dropped-call issue
// that led to the feature being rolled back.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "litmus/assessor.h"
#include "litmus/report.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 8: feature activation at an RNC raises the dropped "
              "voice call ratio ===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kSoutheast, 111,
                                               /*rncs=*/7, /*nodebs_per_rnc=*/6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId study = rncs.front();
  const std::int64_t change_bin = 0;

  // The feature's true (unexpected) effect: a subtle -0.9 sigma quality
  // degradation at the study RNC subtree.
  sim::UpstreamEvent effect;
  effect.source = study;
  effect.start_bin = change_bin;
  effect.sigma_shift = -0.9;

  sim::KpiGenerator gen(topo, {.seed = 1111});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{effect}));

  const auto kpi = kpi::KpiId::kDroppedVoiceCallRatio;
  core::Assessor assessor(
      topo, [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                   std::size_t n) { return gen.kpi_series(e, k, s, n); });

  std::vector<net::ElementId> study_group{study};
  std::vector<net::ElementId> controls(rncs.begin() + 1, rncs.end());

  // (a) study RNC and (b) control RNCs, daily dropped-call ratios.
  std::vector<std::string> names{"study_rnc"};
  std::vector<ts::TimeSeries> daily{figutil::daily(
      gen.kpi_series(study, kpi, change_bin - 14 * 24, 28 * 24))};
  for (std::size_t i = 0; i < controls.size(); ++i) {
    names.push_back("control_rnc" + std::to_string(i + 1));
    daily.push_back(figutil::daily(
        gen.kpi_series(controls[i], kpi, change_bin - 14 * 24, 28 * 24)));
  }
  std::printf("daily dropped voice call ratio (relative; feature activated "
              "at day 0):\n");
  figutil::print_daily_series(names, daily);

  // Litmus verdict + forecast diagnostics.
  const core::ChangeAssessment a =
      assessor.assess(study_group, controls, kpi, change_bin);
  std::printf("\n%s", core::format_assessment(a, topo).c_str());

  const core::ElementWindows w =
      assessor.windows_for(study, controls, kpi, change_bin);
  core::RobustSpatialRegression alg;
  core::RobustSpatialRegression::Forecast fc;
  if (alg.forecast(w, fc)) {
    std::printf("forecast-difference medians: before=%+.5f after=%+.5f "
                "(median fit R^2=%.3f)\n",
                ts::median(fc.forecast_diff_before),
                ts::median(fc.forecast_diff_after), fc.median_r_squared);
  }
  std::printf("\npaper shape: persistent increase at the study RNC only; "
              "Litmus flags a degradation. %s\n",
              a.summary.verdict == core::Verdict::kDegradation
                  ? "[reproduced]"
                  : "[NOT reproduced]");
  return 0;
}
