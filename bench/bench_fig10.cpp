// Fig 10 / case study 5.3: hurricane Sandy as a stress test of SON
// (Self-Optimizing Network) features. Every tower degrades in absolute
// terms during the hurricane; the SON-enabled towers (study group) degrade
// *less* because automatic neighbor discovery and load balancing reroute
// around failures. Study-only analysis sees only the absolute degradation;
// Litmus surfaces the relative improvement that justified the network-wide
// SON rollout.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "figutil.h"
#include "litmus/assessor.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"

int main() {
  using namespace litmus;
  std::printf("=== Fig 10: SON vs non-SON towers during hurricane Sandy "
              "===\n\n");

  net::Topology topo = net::build_small_region(net::Region::kNortheast, 151,
                                               /*rncs=*/3, /*nodebs_per_rnc=*/10);
  const auto towers = topo.of_kind(net::ElementKind::kNodeB);

  // Study group: SON-enabled towers; control: the rest.
  std::vector<net::ElementId> study, controls;
  for (const auto t : towers)
    (topo.get(t).config.son_enabled ? study : controls).push_back(t);
  std::printf("SON-enabled (study): %zu towers; non-SON (control): %zu "
              "towers\n\n",
              study.size(), controls.size());

  // Hurricane: days 0-4 after the (long-deployed) SON activation point.
  // The assessment window is centered on landfall.
  const std::int64_t landfall = 0;
  sim::WeatherEvent sandy =
      sim::make_event(sim::WeatherKind::kHurricane,
                      topo.get(towers[0]).location, landfall, 4 * 24);
  sandy.outage_probability = 0.0;  // keep series complete for the figure

  // SON's true benefit: +1.2 sigma mitigation at SON towers while the
  // hurricane stresses the network.
  std::vector<sim::UpstreamEvent> mitigations;
  for (const auto t : study) {
    sim::UpstreamEvent m;
    m.source = t;
    m.start_bin = landfall;
    m.end_bin = landfall + 6 * 24;
    m.sigma_shift = +1.2;
    mitigations.push_back(m);
  }

  sim::KpiGenerator gen(topo, {.seed = 1515});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{sandy}));
  gen.add_factor(
      std::make_shared<sim::NetworkEventFactor>(topo, mitigations));

  core::Assessor assessor(
      topo,
      [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s, std::size_t n) {
        return gen.kpi_series(e, k, s, n);
      },
      core::AssessmentConfig{
          .before_bins = 10 * 24, .after_bins = 6 * 24, .guard_bins = 0,
          .regression = {}});

  for (const auto kpi_id : {kpi::KpiId::kVoiceAccessibility,
                            kpi::KpiId::kVoiceRetainability}) {
    // Group-mean daily series, as in the figure.
    std::vector<ts::TimeSeries> study_daily, ctrl_daily;
    for (const auto t : study)
      study_daily.push_back(figutil::daily(
          gen.kpi_series(t, kpi_id, landfall - 10 * 24, 16 * 24)));
    for (const auto t : controls)
      ctrl_daily.push_back(figutil::daily(
          gen.kpi_series(t, kpi_id, landfall - 10 * 24, 16 * 24)));
    std::printf("--- %s (daily group means, relative; hurricane days 0-3) "
                "---\n",
                std::string(kpi::to_string(kpi_id)).c_str());
    figutil::print_daily_series(
        {"SON_study_group", "nonSON_control"},
        {kpi::pointwise_mean(study_daily), kpi::pointwise_mean(ctrl_daily)});

    const core::ChangeAssessment a =
        assessor.assess(study, controls, kpi_id, landfall);
    std::size_t so_degr = 0;
    core::StudyOnlyAnalyzer study_only;
    for (const auto s : study) {
      const auto w = assessor.windows_for(s, controls, kpi_id, landfall);
      if (study_only.assess(w, kpi_id).verdict == core::Verdict::kDegradation)
        ++so_degr;
    }
    std::printf("\nstudy-only: %zu/%zu SON towers look degraded (absolute "
                "view). Litmus vote: %s (%zu improvements / %zu votes)\n",
                so_degr, study.size(), to_string(a.summary.verdict),
                a.summary.improvements,
                a.summary.improvements + a.summary.degradations +
                    a.summary.no_impacts);
    std::printf("paper shape: absolute degradation everywhere, relative "
                "improvement at SON towers. %s\n\n",
                a.summary.verdict == core::Verdict::kImprovement
                    ? "[reproduced]"
                    : "[NOT reproduced]");
  }
  return 0;
}
