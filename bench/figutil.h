// Shared helpers for the figure-reproduction benches: daily aggregation,
// aligned series printing, and a three-analyzer verdict line.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "kpi/aggregate.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"
#include "tsmath/stats.h"

namespace figutil {

using litmus::ts::TimeSeries;

/// Hourly -> daily mean KPI series.
inline TimeSeries daily(const TimeSeries& hourly) {
  return litmus::kpi::downsample_mean(hourly, 24);
}

/// Prints aligned columns: day index then one column per series, normalized
/// to each series' first observed value when `normalize` is set (the paper
/// shows no absolute values; we print relative levels by default).
inline void print_daily_series(const std::vector<std::string>& names,
                               const std::vector<TimeSeries>& series,
                               bool normalize = true) {
  std::printf("%8s", "day");
  for (const auto& n : names) std::printf("  %14s", n.c_str());
  std::printf("\n");
  if (series.empty()) return;
  std::vector<double> base(series.size(), 0.0);
  for (std::size_t s = 0; s < series.size(); ++s) {
    base[s] = 0.0;
    if (normalize) {
      for (double v : series[s].values())
        if (!litmus::ts::is_missing(v)) {
          base[s] = v;
          break;
        }
    }
  }
  const auto range = litmus::ts::common_range(series);
  for (std::int64_t d = range.from; d < range.to; ++d) {
    std::printf("%8lld", static_cast<long long>(d));
    for (std::size_t s = 0; s < series.size(); ++s) {
      const double v = series[s].at_bin(d);
      if (litmus::ts::is_missing(v))
        std::printf("  %14s", "-");
      else
        std::printf("  %+14.5f", v - base[s]);
    }
    std::printf("\n");
  }
}

/// Runs the three analyzers on one set of windows and prints a verdict row.
inline void print_verdicts(const char* scenario,
                           const litmus::core::ElementWindows& w,
                           litmus::kpi::KpiId kpi) {
  static const litmus::core::StudyOnlyAnalyzer study_only;
  static const litmus::core::DiDAnalyzer did;
  static const litmus::core::RobustSpatialRegression litmus_alg;
  const auto so = study_only.assess(w, kpi);
  const auto dd = did.assess(w, kpi);
  const auto lm = litmus_alg.assess(w, kpi);
  std::printf("%-28s study_only=%-12s did=%-12s litmus=%-12s\n", scenario,
              to_string(so.verdict), to_string(dd.verdict),
              to_string(lm.verdict));
}

}  // namespace figutil
