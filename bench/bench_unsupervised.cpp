// Extension bench: the PCA subspace anomaly detector the paper's related
// work discusses (Section 2.4) as a fourth algorithm on the Table-3
// injection patterns. The paper argues unsupervised detection cannot
// attribute *relative* changes correctly; this bench quantifies the claim:
// it keeps up on study-only injections but collapses on the relative
// patterns (control-only / both-different), where direction must come from
// study/control comparison.
#include <cstdio>

#include "eval/group_sim.h"
#include "eval/labeling.h"
#include "eval/synthetic.h"
#include "litmus/spatial_regression.h"
#include "litmus/unsupervised.h"
#include "tsmath/random.h"

using namespace litmus;

int main() {
  constexpr std::size_t kTrials = 40;
  std::printf("=== Unsupervised PCA baseline vs Litmus across injection "
              "patterns (%zu trials each) ===\n\n",
              kTrials);

  const core::PcaBaselineAnalyzer pca;
  const core::RobustSpatialRegression litmus_alg;

  std::printf("pattern                      PCA accuracy   Litmus accuracy\n");
  std::printf("----------------------------------------------------------\n");
  for (const eval::InjectionPattern p : eval::kAllPatterns) {
    eval::ConfusionCounts pca_counts, litmus_counts;
    ts::Rng seeder(808 + static_cast<std::uint64_t>(p));
    for (std::size_t t = 0; t < kTrials; ++t) {
      double study = 0.0, control = 0.0;
      const double mag = seeder.uniform(1.2, 3.0);
      switch (p) {
        case eval::InjectionPattern::kNone: break;
        case eval::InjectionPattern::kStudyOnly: study = mag; break;
        case eval::InjectionPattern::kControlOnly: control = mag; break;
        case eval::InjectionPattern::kBothSameMagnitude:
          study = control = mag;
          break;
        case eval::InjectionPattern::kBothDifferentMagnitude:
          study = mag * 0.4;
          control = mag * 0.4 + 1.2;
          break;
      }
      if (seeder.chance(0.5)) {
        study = -study;
        control = -control;
      }
      eval::EpisodeSpec spec;
      spec.true_sigma = study;
      spec.seed = seeder.next_u64() | 1;
      const eval::Episode ep = eval::simulate_episode(spec, control);
      const auto& w = ep.study_windows.front();
      pca_counts.add(eval::label(ep.truth, pca.assess(w, spec.kpi).verdict));
      litmus_counts.add(
          eval::label(ep.truth, litmus_alg.assess(w, spec.kpi).verdict));
    }
    std::printf("%-28s %8.1f%%       %8.1f%%\n", to_string(p),
                100.0 * pca_counts.accuracy(),
                100.0 * litmus_counts.accuracy());
  }

  std::printf("\nexpected shape: comparable on 'study' injections; the PCA "
              "detector collapses on 'control' and 'study+control "
              "different' — relative changes need study/control "
              "attribution (paper Section 2.4 / Fig 7(c)).\n");
  return 0;
}
