#!/usr/bin/env python3
"""Validate a Prometheus text exposition (format 0.0.4) scraped from the
litmus /metrics endpoint.

Checks, in order:
  1. the file is readable and every line is a comment, blank, or a sample
     with a parseable value;
  2. metric and label names are syntactically legal
     ([a-zA-Z_:][a-zA-Z0-9_:]* and [a-zA-Z_][a-zA-Z0-9_]*), label values
     are properly quoted, and no sample line precedes its # TYPE;
  3. every emitted family has exactly one # HELP and one # TYPE line, the
     TYPE is a known kind, and no family is emitted twice;
  4. counter sample names end in _total (or the histogram series
     suffixes), and no sample belongs to a family that was never typed;
  5. histogram families are complete and coherent: _bucket le bounds
     strictly ascend, cumulative counts are monotone, the mandatory
     le="+Inf" bucket is present and equals _count, and _sum/_count
     exist.

Exit status: 0 valid, 1 validation failure, 2 usage / unreadable file.

Usage:
  check_prom.py METRICS.txt [--require NAME ...]

--require fails the check when a named sample family (e.g.
litmus_serve_requests_total) is absent — the CI smoke uses it to prove a
live scrape actually carried the serve counters.
"""

import argparse
import math
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>-?\d+))?$"
)
LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$'
)
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def fail(msg):
    print(f"check_prom: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def parse_value(text, where):
    try:
        return float(text.replace("+Inf", "inf").replace("-Inf", "-inf"))
    except ValueError:
        fail(f"{where}: unparseable sample value {text!r}")


def family_of(name, types):
    """Maps a sample name to its declared family (histogram series sample
    names carry a suffix the # TYPE line does not)."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def main():
    ap = argparse.ArgumentParser(
        description="validate a Prometheus 0.0.4 text exposition"
    )
    ap.add_argument("path")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a sample with this exact name is present",
    )
    args = ap.parse_args()

    try:
        with open(args.path, encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        print(f"check_prom: cannot read {args.path}: {e}", file=sys.stderr)
        sys.exit(2)

    helps = {}
    types = {}
    samples = []  # (lineno, name, labels-dict, value)
    sample_names = set()

    for lineno, line in enumerate(lines, 1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                fail(f"{where}: malformed HELP: {line!r}")
            name = parts[2]
            if not METRIC_RE.match(name):
                fail(f"{where}: illegal metric name {name!r}")
            if name in helps:
                fail(f"{where}: duplicate # HELP for {name}")
            helps[name] = parts[3]
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"{where}: malformed TYPE: {line!r}")
            name, kind = parts[2], parts[3]
            if not METRIC_RE.match(name):
                fail(f"{where}: illegal metric name {name!r}")
            if kind not in KNOWN_TYPES:
                fail(f"{where}: unknown type {kind!r} for {name}")
            if name in types:
                fail(f"{where}: family {name} emitted twice")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{where}: unparseable sample line: {line!r}")
        name = m.group("name")
        labels = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                pm = LABEL_PAIR_RE.match(pair.strip())
                if not pm:
                    fail(f"{where}: malformed label pair {pair!r}")
                if not LABEL_RE.match(pm.group("key")):
                    fail(f"{where}: illegal label name {pm.group('key')!r}")
                if pm.group("key") in labels:
                    fail(f"{where}: duplicate label {pm.group('key')!r}")
                labels[pm.group("key")] = pm.group("val")
        value = parse_value(m.group("value"), where)
        samples.append((lineno, name, labels, value))
        sample_names.add(name)

    # Every sample belongs to a declared family, declared before use.
    for lineno, name, labels, value in samples:
        fam = family_of(name, types)
        if fam is None:
            fail(f"line {lineno}: sample {name} has no # TYPE family")
        if fam not in helps:
            fail(f"line {lineno}: family {fam} lacks a # HELP line")
        if types[fam] == "counter":
            if not name.endswith("_total"):
                fail(f"line {lineno}: counter sample {name} lacks _total")
            if value < 0 or math.isnan(value):
                fail(f"line {lineno}: counter {name} value {value}")

    # Histogram coherence per family.
    for fam, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []  # (le, cumulative)
        sum_seen = count_seen = None
        for lineno, name, labels, value in samples:
            if name == fam + "_bucket":
                if "le" not in labels:
                    fail(f"line {lineno}: {name} without le label")
                buckets.append(
                    (parse_value(labels["le"], f"line {lineno}"), value)
                )
            elif name == fam + "_sum":
                sum_seen = value
            elif name == fam + "_count":
                count_seen = value
        if sum_seen is None or count_seen is None:
            fail(f"histogram {fam} lacks _sum or _count")
        if not buckets:
            fail(f"histogram {fam} has no _bucket series")
        prev_le = -math.inf
        prev_cum = -1.0
        for le, cum in buckets:
            if le <= prev_le:
                fail(f"histogram {fam}: le bounds not ascending at {le}")
            if cum < prev_cum:
                fail(f"histogram {fam}: cumulative count drops at le={le}")
            prev_le, prev_cum = le, cum
        if not math.isinf(buckets[-1][0]):
            fail(f"histogram {fam}: missing le=\"+Inf\" bucket")
        if buckets[-1][1] != count_seen:
            fail(
                f"histogram {fam}: +Inf bucket {buckets[-1][1]} "
                f"!= _count {count_seen}"
            )

    for wanted in args.require:
        if wanted not in sample_names:
            fail(f"required sample {wanted} not present")

    histograms = sum(1 for k in types.values() if k == "histogram")
    print(
        f"OK: {args.path}: {len(samples)} sample(s), "
        f"{len(types)} family(ies), {histograms} histogram(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
