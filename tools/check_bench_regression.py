#!/usr/bin/env python3
"""Guard against perf regressions in the single-assessment benchmark.

Compares a fresh google-benchmark JSON export (BENCH_perf.json) against the
committed baseline. Raw nanoseconds are not comparable across machines, so
the check is *calibrated*: both runs are normalized by a CPU-bound primitive
(the OLS fit) measured in the same process, and only the ratio

    assess_time / calibration_time

is compared. The build fails when the current ratio exceeds the baseline
ratio by more than the tolerance (default 25%).

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]

Exit status: 0 OK, 1 regression, 2 malformed input.
"""

import argparse
import json
import sys

# The guarded benchmark: one assessment at the default production shape.
KEY_BENCHMARK = "BM_LitmusAssess_Controls/16"
# Calibration primitive: scales with raw CPU speed, not with the algorithmic
# changes this check is meant to catch.
CALIBRATION_BENCHMARK = "BM_OlsFit/16"


def load_times(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        t = b.get("real_time")
        if name is not None and t is not None:
            times[name] = float(t)
    return times


def pick(times, name, path):
    if name not in times:
        print(f"error: {path} has no benchmark named {name}", file=sys.stderr)
        sys.exit(2)
    if times[name] <= 0:
        print(f"error: {path}: {name} reports non-positive time",
              file=sys.stderr)
        sys.exit(2)
    return times[name]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slowdown (default 0.25 = 25%%)")
    args = ap.parse_args()

    base = load_times(args.baseline)
    cur = load_times(args.current)

    base_ratio = (pick(base, KEY_BENCHMARK, args.baseline) /
                  pick(base, CALIBRATION_BENCHMARK, args.baseline))
    cur_ratio = (pick(cur, KEY_BENCHMARK, args.current) /
                 pick(cur, CALIBRATION_BENCHMARK, args.current))

    change = cur_ratio / base_ratio - 1.0
    print(f"{KEY_BENCHMARK} (normalized by {CALIBRATION_BENCHMARK}):")
    print(f"  baseline ratio {base_ratio:.3f}  current ratio {cur_ratio:.3f}"
          f"  change {change:+.1%}  tolerance +{args.tolerance:.0%}")

    if change > args.tolerance:
        print("FAIL: single-assessment benchmark regressed beyond tolerance",
              file=sys.stderr)
        sys.exit(1)
    print("OK")


if __name__ == "__main__":
    main()
