#!/usr/bin/env python3
"""Guard against perf regressions in the calibrated benchmark pair.

Compares a fresh google-benchmark JSON export (BENCH_perf.json or
BENCH_kernels.json) against the committed baseline. Raw nanoseconds are not
comparable across machines, so the check is *calibrated*: both runs are
normalized by a CPU-bound primitive measured in the same process, and only
the ratio

    key_time / calibration_time

is compared. The build fails when the current ratio exceeds the baseline
ratio by more than the tolerance (default 25%).

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.25]
        [--key BM_LitmusAssess_Controls/16] [--calibration BM_OlsFit/16]

--key/--calibration select which benchmark pair to gate, so the same script
guards BENCH_perf.json (default pair) and BENCH_kernels.json (e.g.
--key BM_MultiElementSweep/1 --calibration BM_GramBuildCold/64).

A second mode gates an *absolute* speedup within one run — machine-
independent because both rows come from the same process:

    check_bench_regression.py RESULTS.json --min-speedup 1.5 \
        --slow "BM_GramAccumulate/64/0" --fast "BM_GramAccumulate/64/1"

fails unless slow_time / fast_time >= the floor (used to assert the SIMD
tiers actually beat the scalar kernels where they claim to).

Exit status: 0 OK, 1 regression/floor miss, 2 malformed input.
"""

import argparse
import json
import sys

# The guarded benchmark: one assessment at the default production shape.
DEFAULT_KEY = "BM_LitmusAssess_Controls/16"
# Calibration primitive: scales with raw CPU speed, not with the algorithmic
# changes this check is meant to catch.
DEFAULT_CALIBRATION = "BM_OlsFit/16"


def load_doc(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def load_times(doc):
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        name = b.get("name")
        t = b.get("real_time")
        if name is not None and t is not None:
            times[name] = float(t)
    return times


# Manifest fields whose mismatch makes a perf comparison apples-to-oranges.
MANIFEST_FIELDS = ("version", "build_flags", "threads", "seed", "rng_scheme")


def debug_markers(doc):
    """Returns the reasons a run looks like an unoptimized build.

    The authoritative signal is our manifest's build_flags, which carries
    opt=on/off from __OPTIMIZE__ — the compiler's view of the code actually
    being timed. google-benchmark's context.library_build_type only
    describes how the benchmark *library* was built (a preinstalled debug
    library under a Release build of ours is common), so it is consulted
    only when the manifest predates the opt marker.
    """
    flags = (doc.get("manifest") or {}).get("build_flags", "")
    if "opt=off" in flags:
        return [f"manifest build_flags={flags!r}"]
    if "opt=on" in flags:
        return []
    if (doc.get("context") or {}).get("library_build_type") == "debug":
        return ["benchmark library_build_type=debug "
                "(no opt marker in manifest)"]
    return []


def warn_on_debug_build(base_doc, cur_doc):
    for side, doc in (("baseline", base_doc), ("current", cur_doc)):
        reasons = debug_markers(doc)
        if reasons:
            print("*" * 72, file=sys.stderr)
            print(f"* WARNING: the {side} run was produced by a DEBUG build",
                  file=sys.stderr)
            for r in reasons:
                print(f"*   {r}", file=sys.stderr)
            print("* Debug timings are meaningless for perf tracking —",
                  file=sys.stderr)
            print("* re-record with -DCMAKE_BUILD_TYPE=Release.",
                  file=sys.stderr)
            print("*" * 72, file=sys.stderr)


def warn_on_manifest_mismatch(base_doc, cur_doc):
    """Warns (never fails) when the two runs' provenance differs.

    Older baselines predate the manifest block; that is reported once and
    tolerated so refreshing a baseline is never blocked by its own age.
    """
    base_m = base_doc.get("manifest")
    cur_m = cur_doc.get("manifest")
    if not base_m or not cur_m:
        missing = "baseline" if not base_m else "current"
        print(f"warning: {missing} run has no manifest block; "
              "provenance not comparable", file=sys.stderr)
        return
    for field in MANIFEST_FIELDS:
        bv, cv = base_m.get(field), cur_m.get(field)
        if bv != cv:
            print(f"warning: manifest mismatch on {field}: "
                  f"baseline={bv!r} current={cv!r} — the perf comparison "
                  "may be apples-to-oranges", file=sys.stderr)


def pick(times, name, path):
    if name not in times:
        print(f"error: {path} has no benchmark named {name}", file=sys.stderr)
        sys.exit(2)
    if times[name] <= 0:
        print(f"error: {path}: {name} reports non-positive time",
              file=sys.stderr)
        sys.exit(2)
    return times[name]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current", nargs="?")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative slowdown (default 0.25 = 25%%)")
    ap.add_argument("--key", default=DEFAULT_KEY,
                    help=f"benchmark to gate (default {DEFAULT_KEY})")
    ap.add_argument("--calibration", default=DEFAULT_CALIBRATION,
                    help="CPU-speed normalizer benchmark "
                         f"(default {DEFAULT_CALIBRATION})")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="single-file mode: require --slow to be at least "
                         "this many times slower than --fast")
    ap.add_argument("--slow", help="slow row for --min-speedup")
    ap.add_argument("--fast", help="fast row for --min-speedup")
    args = ap.parse_args()

    if args.min_speedup is not None:
        if not args.slow or not args.fast:
            print("error: --min-speedup needs --slow and --fast",
                  file=sys.stderr)
            sys.exit(2)
        path = args.current or args.baseline
        doc = load_doc(path)
        if markers := debug_markers(doc):
            print(f"warning: {path} looks like a debug build: "
                  f"{'; '.join(markers)}", file=sys.stderr)
        times = load_times(doc)
        speedup = pick(times, args.slow, path) / pick(times, args.fast, path)
        print(f"{args.fast} vs {args.slow}: speedup {speedup:.2f}x"
              f"  floor {args.min_speedup:.2f}x")
        if speedup < args.min_speedup:
            print("FAIL: speedup below the required floor", file=sys.stderr)
            sys.exit(1)
        print("OK")
        return

    if args.current is None:
        print("error: need BASELINE and CURRENT (or --min-speedup)",
              file=sys.stderr)
        sys.exit(2)
    base_doc = load_doc(args.baseline)
    cur_doc = load_doc(args.current)
    warn_on_debug_build(base_doc, cur_doc)
    warn_on_manifest_mismatch(base_doc, cur_doc)
    base = load_times(base_doc)
    cur = load_times(cur_doc)

    base_ratio = (pick(base, args.key, args.baseline) /
                  pick(base, args.calibration, args.baseline))
    cur_ratio = (pick(cur, args.key, args.current) /
                 pick(cur, args.calibration, args.current))

    change = cur_ratio / base_ratio - 1.0
    print(f"{args.key} (normalized by {args.calibration}):")
    print(f"  baseline ratio {base_ratio:.3f}  current ratio {cur_ratio:.3f}"
          f"  change {change:+.1%}  tolerance +{args.tolerance:.0%}")

    if change > args.tolerance:
        print("FAIL: key benchmark regressed beyond tolerance",
              file=sys.stderr)
        sys.exit(1)
    print("OK")


if __name__ == "__main__":
    main()
