#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --profile-json.

Checks, in order:
  1. the file parses as JSON and has a non-empty traceEvents array
     (a bare event array is also accepted);
  2. every event carries the required fields (name, ph, ts, pid, tid)
     with sane types, and ph is one of B/E/X/M/i;
  3. per tid, timestamps are monotonically non-decreasing in file order
     (the writer emits each thread's events in stack order);
  4. per tid, B and E events pair up LIFO with matching names — no
     unmatched E, nothing left open at the end;
  5. at least one thread_name metadata event names a thread (Perfetto
     needs it to label the tracks).

Exit status: 0 valid, 1 validation failure, 2 usage / unreadable file.

Usage:
  check_trace.py TRACE.json [--min-spans N]

--min-spans fails the check when fewer than N duration spans (B/E pairs
plus X events) are present — a smoke guard against an instrumented run
that silently recorded nothing.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace file to validate")
    ap.add_argument("--min-spans", type=int, default=1, metavar="N",
                    help="require at least N duration spans (default 1)")
    args = ap.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_trace: cannot read {args.trace}: {e}")
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"{args.trace} is not valid JSON: {e}")

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if events is None:
            fail("top-level object has no 'traceEvents' key")
    elif isinstance(doc, list):
        events = doc
    else:
        fail(f"top-level JSON is {type(doc).__name__}, expected object or array")
    if not isinstance(events, list):
        fail("'traceEvents' is not an array")
    if not events:
        fail("'traceEvents' is empty")

    required = {"name": str, "ph": str, "pid": int, "tid": int}
    phases_seen = set()
    # per tid: open B-event name stack, and last timestamp seen
    stacks = {}
    last_ts = {}
    spans = 0
    named_threads = {}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        for key, typ in required.items():
            if key not in ev:
                fail(f"event #{i} missing required field '{key}': {ev}")
            if not isinstance(ev[key], typ) or isinstance(ev[key], bool):
                fail(f"event #{i} field '{key}' has wrong type: {ev}")
        ph = ev["ph"]
        if ph not in ("B", "E", "X", "M", "i"):
            fail(f"event #{i} has unknown phase '{ph}': {ev}")
        phases_seen.add(ph)
        tid = ev["tid"]

        if ph == "M":
            if ev["name"] == "thread_name":
                name = ev.get("args", {}).get("name")
                if not isinstance(name, str) or not name:
                    fail(f"thread_name metadata event #{i} has no args.name")
                named_threads[tid] = name
            continue  # metadata events carry no meaningful ts

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            fail(f"event #{i} has missing or non-numeric 'ts': {ev}")
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"event #{i} goes back in time on tid {tid}: "
                 f"ts {ts} after {last_ts[tid]}")
        last_ts[tid] = ts

        if ph == "B":
            stacks.setdefault(tid, []).append(ev["name"])
        elif ph == "E":
            stack = stacks.get(tid)
            if not stack:
                fail(f"event #{i}: E with no open B on tid {tid}: {ev}")
            opened = stack.pop()
            if opened != ev["name"]:
                fail(f"event #{i}: E '{ev['name']}' closes B '{opened}' "
                     f"on tid {tid} (not LIFO)")
            spans += 1
        elif ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                fail(f"X event #{i} has missing or non-numeric 'dur': {ev}")
            spans += 1

    for tid, stack in stacks.items():
        if stack:
            fail(f"tid {tid} ends with {len(stack)} unclosed B event(s): "
                 f"{stack}")
    if not named_threads:
        fail("no thread_name metadata events — tracks would be unlabeled")
    if spans < args.min_spans:
        fail(f"only {spans} duration span(s), need at least {args.min_spans}")

    print(f"check_trace: OK: {len(events)} event(s), {spans} span(s), "
          f"{len(named_threads)} named thread(s) "
          f"({', '.join(sorted(named_threads.values()))}), "
          f"phases {{{', '.join(sorted(phases_seen))}}}")
    sys.exit(0)


if __name__ == "__main__":
    main()
