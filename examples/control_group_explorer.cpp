// Control-group selection explorer (paper Section 3.3).
//
// Builds the synthetic national network and shows how each attribute family
// — geography, topology, configuration, terrain, traffic — shapes the
// candidate control group for the same study element, including the
// impact-scope exclusion and the multi-variate predicate from the paper
// ("towers sharing the common upstream RNC and upstream RNCs with same OS").
#include <cstdio>
#include <vector>

#include "cellnet/builder.h"
#include "litmus/control_selection.h"

using namespace litmus;

namespace {

void show(const net::Topology& topo, const std::vector<net::ElementId>& study,
          const char* label, const core::ControlPredicate& pred) {
  core::SelectionPolicy policy;
  policy.max_size = 1000;  // show the full candidate pool
  const core::SelectionResult r =
      core::select_control_group(topo, study, pred, policy);
  std::printf("%-46s %4zu controls (of %zu candidates, %zu excluded by "
              "scope)\n",
              label, r.controls.size(), r.candidates_considered,
              r.excluded_by_scope);
}

}  // namespace

int main() {
  net::BuildSpec spec;
  spec.seed = 8128;
  spec.markets_per_region = 2;
  spec.rncs_per_msc = 4;
  spec.nodebs_per_rnc = 10;
  const net::Topology topo = net::NetworkBuilder(spec).build();

  const auto towers = topo.of_kind(net::ElementKind::kNodeB);
  const std::vector<net::ElementId> study{towers.front()};
  const auto& s = topo.get(study[0]);
  std::printf("network: %zu elements, %zu UMTS towers\n", topo.size(),
              towers.size());
  std::printf("study element: %s  region=%s zip=%s terrain=%s traffic=%s "
              "sw=%s\n\n",
              s.name.c_str(), to_string(s.region), s.zip.to_string().c_str(),
              to_string(s.config.terrain), to_string(s.config.traffic),
              s.config.software.to_string().c_str());

  std::printf("--- attribute family 1: geography ---\n");
  show(topo, study, "same zip code", core::same_zip());
  show(topo, study, "within 25 km", core::within_km(25.0));
  show(topo, study, "within 200 km", core::within_km(200.0));
  show(topo, study, "same region", core::same_region());

  std::printf("--- attribute family 2: topology ---\n");
  show(topo, study, "same parent RNC", core::same_parent());
  show(topo, study, "same upstream MSC",
       core::same_upstream(net::ElementKind::kMsc));
  show(topo, study, "same technology", core::same_technology());

  std::printf("--- attribute family 3: configuration ---\n");
  show(topo, study, "same software version", core::same_software_version());
  show(topo, study, "same equipment model", core::same_equipment_model());
  show(topo, study, "antenna within 2 deg / 2 dBm",
       core::similar_antenna(2.0, 2.0));
  show(topo, study, "matching SON state", core::son_state_matches());

  std::printf("--- attribute families 4-5: terrain & traffic ---\n");
  show(topo, study, "same terrain", core::same_terrain());
  show(topo, study, "same traffic profile", core::same_traffic_profile());

  std::printf("--- multi-variate (paper's example) ---\n");
  show(topo, study, "same upstream RNC AND same software",
       core::all_of({core::same_upstream(net::ElementKind::kRnc),
                     core::same_software_version()}));
  show(topo, study, "same region AND terrain AND traffic",
       core::all_of({core::same_region(), core::same_terrain(),
                     core::same_traffic_profile()}));

  std::printf("\noperational guidance (Section 3.3): keep the group in the "
              "10s-100s — wide enough for robust regression, close enough "
              "to share the study group's external factors.\n");
  return 0;
}
