// Planning when to execute a change (paper Section 2.4's future
// challenge): the scheduler scores candidate FFA windows for a Northeast
// RNC change over a full year, penalizing foliage ramps, holiday traffic
// shifts, and conflicts with already-planned work.
#include <cstdio>

#include "cellnet/builder.h"
#include "changelog/changelog.h"
#include "litmus/scheduler.h"
#include "simkit/clock.h"

using namespace litmus;

int main() {
  net::Topology topo =
      net::build_small_region(net::Region::kNortheast, 555, 4, 6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId study = rncs[0];

  // Known regional traffic shifts for the planning year.
  std::vector<sim::HolidayWindow> holidays;
  auto add_holiday = [&](int from_doy, int to_doy) {
    sim::HolidayWindow h;
    h.start_bin = sim::bin_at(1, from_doy);
    h.end_bin = sim::bin_at(1, to_doy);
    h.region = net::Region::kNortheast;
    holidays.push_back(h);
  };
  add_holiday(0, 3);                                          // New Year
  add_holiday(sim::kIndependenceDoy - 1, sim::kIndependenceDoy + 3);
  add_holiday(sim::kThanksgivingDoy - 1, sim::kThanksgivingDoy + 4);
  add_holiday(sim::kChristmasDoy - 3, 365);                   // year end

  // Already-planned maintenance at a downstream tower in June.
  chg::ChangeLog planned;
  chg::ChangeRecord other;
  other.element = topo.children_of(study)[0];
  other.type = chg::ChangeType::kHardwareUpgrade;
  other.bin = sim::bin_at(1, 160);
  other.description = "antenna swap (planned)";
  planned.add(other);

  const core::ChangeScheduler scheduler(net::Region::kNortheast, holidays,
                                        &topo, &planned);

  std::printf("scoring every day of year 1 for a change at %s "
              "(14-day windows each side)...\n\n",
              topo.get(study).name.c_str());
  const auto best = scheduler.recommend(study, sim::bin_at(1, 0),
                                        sim::bin_at(2, 0), 8);
  std::printf("best windows:\n");
  for (const auto& w : best)
    std::printf("  penalty %.3f — %s\n", w.penalty, w.rationale.c_str());

  std::printf("\nworst offenders, for contrast:\n");
  for (const int doy : {105, 160, 275, 358}) {
    const auto s = scheduler.score(study, sim::bin_at(1, doy));
    std::printf("  penalty %.3f — %s\n", s.penalty, s.rationale.c_str());
  }

  std::printf("\nreading: avoid the April budding ramp, the Sep-Oct "
              "leaf-fall ramp, holiday seasons, and the June window that "
              "clashes with planned tower work. Deep winter or the "
              "mid-summer canopy plateau assess cleanest.\n");
  return 0;
}
