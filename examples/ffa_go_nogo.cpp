// FFA (First Field Application) go / no-go workflow, end to end:
//
//   1. register the trial change in the change-management log
//   2. verify the assessment window is clean (no conflicting changes in the
//      study group's impact scope — paper Section 2.5, "Network events")
//   3. select a domain-knowledge-guided control group (Section 3.3)
//   4. assess every KPI with the robust spatial regression and vote
//   5. emit the go / no-go recommendation the Engineering and Operations
//      teams act on (Sections 1, 2.4)
//
// Two trials run here: a good feature (improves retainability) and a bad
// one (regresses accessibility). The first gets GO, the second NO-GO.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "changelog/changelog.h"
#include "litmus/assessor.h"
#include "litmus/report.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

using namespace litmus;

namespace {

void run_trial(const char* title, net::Topology& topo, chg::ChangeLog& log,
               net::ElementId study_rnc, double true_effect_sigma,
               kpi::KpiId affected_kpi, std::uint64_t seed) {
  std::printf("================ %s ================\n", title);

  // 1. Change record.
  chg::ChangeRecord record;
  record.element = study_rnc;
  record.type = chg::ChangeType::kFeatureActivation;
  record.frequency = chg::ChangeFrequency::kLow;
  record.bin = 0;
  record.description = title;
  record.expectation = chg::Expectation::kImprovement;
  record.target_kpi = affected_kpi;
  record.is_ffa = true;
  record.id = log.add(record);
  std::printf("change #%u registered at %s (FFA trial)\n", record.id,
              topo.get(study_rnc).name.c_str());

  // 2. Clean-window check over the 14-day before/after comparison span.
  const bool clean = log.window_is_clean(topo, record, 14 * 24, 14 * 24);
  std::printf("assessment window clean of conflicting changes: %s\n",
              clean ? "yes" : "NO - findings need manual review");

  // 3. The telemetry feed carries the change's true effect.
  sim::UpstreamEvent effect;
  effect.source = study_rnc;
  effect.start_bin = record.bin;
  effect.sigma_shift = true_effect_sigma;
  sim::KpiGenerator gen(topo, {.seed = seed});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{effect}));

  core::Assessor assessor(
      topo, [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                   std::size_t n) { return gen.kpi_series(e, k, s, n); });

  // 4. Control group: RNCs under the same MSC, same technology.
  const std::vector<net::ElementId> study{study_rnc};
  const core::SelectionResult sel = core::select_control_group(
      topo, study,
      core::all_of({core::same_upstream(net::ElementKind::kMsc),
                    core::same_technology()}));
  std::printf("control group: %zu elements (%zu candidates considered, %zu "
              "excluded by impact scope)\n",
              sel.controls.size(), sel.candidates_considered,
              sel.excluded_by_scope);

  // 5. Multi-KPI decision.
  const std::vector<kpi::KpiId> kpis{kpi::KpiId::kVoiceRetainability,
                                     kpi::KpiId::kVoiceAccessibility,
                                     kpi::KpiId::kDataRetainability};
  const core::FfaDecision decision =
      assessor.ffa_decision(study, sel.controls, kpis, record.bin);
  for (const auto& a : decision.per_kpi)
    std::printf("  %s\n", core::one_line_summary(a).c_str());
  std::printf("DECISION: %s — %s\n\n", decision.go ? "GO" : "NO-GO",
              decision.rationale.c_str());
}

}  // namespace

int main() {
  net::Topology topo =
      net::build_small_region(net::Region::kNortheast, 2718, 6, 6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  chg::ChangeLog log;

  // NOTE: a change's *true* effect in this simulated world maps onto the
  // service-quality latent; +1.5 sigma is a solid improvement, while the
  // second trial genuinely regresses service.
  run_trial("fast-dormancy feature, release 5.2", topo, log, rncs[0], +1.5,
            kpi::KpiId::kVoiceRetainability, 41);
  run_trial("aggressive power-save timer", topo, log, rncs[1], -1.2,
            kpi::KpiId::kVoiceAccessibility, 43);
  return 0;
}
