// Staged network-wide rollout gated by Litmus (the operational loop the
// paper's go/no-go decisions feed, Section 1).
//
// Wave 0 is the FFA trial at one RNC. Each subsequent wave doubles the
// footprint, and each wave proceeds only if Litmus clears the previous one
// on every KPI. The change here has a latent defect that only manifests in
// data retainability — the rollout should stop at the wave where Litmus
// catches it. (The defect activates with scale: a race that needs enough
// upgraded neighbors, as software defects often do.)
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "litmus/assessor.h"
#include "litmus/report.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

using namespace litmus;

int main() {
  net::BuildSpec netspec;
  netspec.seed = 90125;
  netspec.regions = {net::Region::kNortheast, net::Region::kMidwest};
  netspec.rncs_per_msc = 6;
  net::Topology topo = net::NetworkBuilder(netspec).build();
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  std::printf("network: %zu elements, %zu RNCs; rolling out a software "
              "update in waves\n\n",
              topo.size(), rncs.size());

  // Wave plan: 1, 2, 4, ... RNCs; one wave per 14 days.
  std::vector<std::vector<net::ElementId>> waves;
  std::size_t next = 0;
  for (std::size_t size = 1; next < rncs.size(); size *= 2) {
    std::vector<net::ElementId> wave;
    for (std::size_t i = 0; i < size && next < rncs.size(); ++i)
      wave.push_back(rncs[next++]);
    waves.push_back(std::move(wave));
  }

  // The change's true behaviour: +1.2 sigma voice improvement everywhere,
  // but from wave 2 on (enough upgraded neighbors) a -1.0 sigma data
  // retainability defect at newly upgraded RNCs.
  std::vector<sim::UpstreamEvent> effects;
  std::int64_t wave_bin = 0;
  for (std::size_t wv = 0; wv < waves.size(); ++wv, wave_bin += 14 * 24) {
    for (const auto rnc : waves[wv]) {
      sim::UpstreamEvent good;
      good.source = rnc;
      good.start_bin = wave_bin;
      good.sigma_shift = +1.2;
      effects.push_back(good);
      if (wv >= 2) {
        sim::UpstreamEvent defect;
        defect.source = rnc;
        defect.start_bin = wave_bin;
        defect.sigma_shift = -1.0;
        effects.push_back(defect);
      }
    }
  }
  // Note: the defect only hurts data sessions; model by assessing the voice
  // KPI against `good` and data retainability against good+defect. The
  // generator's latent is shared across KPIs, so we run two generators: the
  // voice world (good only) and the data world (good + defect).
  sim::KpiGenerator voice_world(topo, {.seed = 90125});
  voice_world.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  {
    std::vector<sim::UpstreamEvent> good_only;
    for (const auto& e : effects)
      if (e.sigma_shift > 0) good_only.push_back(e);
    voice_world.add_factor(
        std::make_shared<sim::NetworkEventFactor>(topo, good_only));
  }
  sim::KpiGenerator data_world(topo, {.seed = 90125});
  data_world.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  data_world.add_factor(
      std::make_shared<sim::NetworkEventFactor>(topo, effects));

  const core::SeriesProvider provider =
      [&](net::ElementId e, kpi::KpiId k, std::int64_t s, std::size_t n) {
        return k == kpi::KpiId::kDataRetainability
                   ? data_world.kpi_series(e, k, s, n)
                   : voice_world.kpi_series(e, k, s, n);
      };
  core::Assessor assessor(topo, provider);
  const std::vector<kpi::KpiId> kpis{kpi::KpiId::kVoiceRetainability,
                                     kpi::KpiId::kDataRetainability};

  // Gate each wave: controls = RNCs not yet upgraded at assessment time.
  std::size_t upgraded = 0;
  wave_bin = 0;
  for (std::size_t wv = 0; wv < waves.size(); ++wv, wave_bin += 14 * 24) {
    upgraded += waves[wv].size();
    std::vector<net::ElementId> controls(rncs.begin() + upgraded, rncs.end());
    if (controls.size() < 4) {
      std::printf("wave %zu: too few untouched RNCs left for a control "
                  "group; final waves ride on the accumulated evidence\n",
                  wv);
      break;
    }
    const core::FfaDecision d =
        assessor.ffa_decision(waves[wv], controls, kpis, wave_bin);
    std::printf("wave %zu (%zu RNC(s), day %lld): %s\n", wv,
                waves[wv].size(), static_cast<long long>(wave_bin / 24),
                d.go ? "GO - proceed to next wave" : "NO-GO - rollout halted");
    for (const auto& a : d.per_kpi)
      std::printf("    %s\n", core::one_line_summary(a).c_str());
    if (!d.go) {
      std::printf("\nthe scale-dependent data-retainability defect was "
                  "caught at wave %zu; %zu of %zu RNCs were exposed before "
                  "the halt.\n",
                  wv, upgraded, rncs.size());
      return 0;
    }
  }
  std::printf("\nrollout completed without a NO-GO — unexpected for this "
              "scenario.\n");
  return 1;
}
