// Continuous post-change monitoring (paper Section 5: impacts are
// confirmed over multiple time-intervals before rollout decisions).
//
// The scenario: a software feature passes its day-3 spot check, but a slow
// resource leak starts degrading service five days in. The one-shot
// assessment would have said GO; the ChangeMonitor flips to `degrading`
// once the late-onset regression is confirmed across consecutive windows.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "litmus/monitor.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

using namespace litmus;

int main() {
  net::Topology topo =
      net::build_small_region(net::Region::kMidwest, 733, 6, 4);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId study = rncs[0];
  const std::vector<net::ElementId> controls(rncs.begin() + 1, rncs.end());

  // The late-onset defect: -1.8 sigma starting five days after activation.
  sim::UpstreamEvent leak;
  leak.source = study;
  leak.start_bin = 5 * 24;
  leak.sigma_shift = -1.8;
  leak.ramp_bins = 24;  // degrades over a day, as leaks do
  sim::KpiGenerator gen(topo, {.seed = 733});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{leak}));

  core::ChangeMonitor monitor(
      [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s, std::size_t n) {
        return gen.kpi_series(e, k, s, n);
      },
      study, controls, kpi::KpiId::kVoiceRetainability, /*change_bin=*/0);

  std::printf("monitoring %s after feature activation (3-day sliding "
              "window, daily steps, 3 consecutive reads to confirm):\n\n",
              topo.get(study).name.c_str());
  std::printf("  day   window verdict   confirmed state\n");
  for (std::int64_t day = 1; day <= 14; ++day) {
    // In deployment this would be a daily cron pulling fresh KPI exports.
    for (const auto& reading : monitor.advance(day * 24)) {
      std::printf("  %3lld   %-15s %s\n",
                  static_cast<long long>(reading.up_to_bin / 24),
                  to_string(reading.outcome.verdict),
                  to_string(reading.state));
    }
  }

  std::printf("\nfinal state: %s — %s\n", to_string(monitor.state()),
              monitor.state() == core::MonitorState::kDegrading
                  ? "the late-onset leak was caught; roll the feature back"
                  : "unexpected for this scenario");
  return monitor.state() == core::MonitorState::kDegrading ? 0 : 1;
}
