// Quickstart: assess a feature activation at one RNC with Litmus.
//
// The "real world" here is the simulator: a synthetic national network
// whose KPI feeds carry diurnal load, foliage seasonality and a slow
// improvement trend — plus the actual effect of the change under test,
// injected as an upstream event at the study RNC. Litmus then plays the
// operations role: select a control group, learn the study/control
// dependency before the change, and decide go / no-go.
#include <cstdio>
#include <memory>

#include "cellnet/builder.h"
#include "litmus/assessor.h"
#include "litmus/report.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

int main() {
  using namespace litmus;

  // 1. A synthetic network: one UMTS region with MSC -> RNCs -> NodeBs.
  net::Topology topo = net::build_small_region(net::Region::kNortheast,
                                               /*seed=*/7, /*rncs=*/6,
                                               /*nodebs_per_rnc=*/8);
  const std::vector<net::ElementId> rncs = topo.of_kind(net::ElementKind::kRnc);
  const net::ElementId study_rnc = rncs.front();
  std::printf("network: %zu elements, %zu RNCs; study RNC: %s\n", topo.size(),
              rncs.size(), topo.get(study_rnc).name.c_str());

  // 2. The change: a feature activation at the study RNC at bin 0 that
  //    genuinely improves voice retainability by ~1.5 sigma.
  const std::int64_t change_bin = 0;
  sim::UpstreamEvent change_effect;
  change_effect.source = study_rnc;
  change_effect.start_bin = change_bin;
  change_effect.sigma_shift = +1.5;

  // 3. The telemetry feed.
  sim::KpiGenerator gen(topo, {.seed = 99});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::CarrierTrendFactor>());
  gen.add_factor(
      std::make_shared<sim::NetworkEventFactor>(topo,
          std::vector<sim::UpstreamEvent>{change_effect}));

  // 4. Litmus: control group = other RNCs in the region under the same MSC,
  //    outside the change's impact scope.
  core::Assessor assessor(
      topo,
      [&gen](net::ElementId e, kpi::KpiId k, std::int64_t start,
             std::size_t n) { return gen.kpi_series(e, k, start, n); });

  const std::vector<net::ElementId> study{study_rnc};
  const core::ControlPredicate predicate = core::all_of(
      {core::same_upstream(net::ElementKind::kMsc), core::same_technology()});

  core::ChangeAssessment assessment = assessor.assess_with_selection(
      study, predicate, kpi::KpiId::kVoiceRetainability, change_bin);
  std::printf("%s\n", core::format_assessment(assessment, topo).c_str());

  // 5. Full FFA go / no-go across KPIs.
  const std::vector<kpi::KpiId> kpis{kpi::KpiId::kVoiceRetainability,
                                     kpi::KpiId::kVoiceAccessibility,
                                     kpi::KpiId::kDataRetainability};
  core::FfaDecision decision = assessor.ffa_decision(
      study, assessment.control_group, kpis, change_bin);
  std::printf("%s\n", core::format_ffa_decision(decision, topo).c_str());
  return decision.per_kpi.empty() ? 1 : 0;
}
