// How well did SON perform during the hurricane? (paper Section 5.3)
//
// The carrier had Self-Optimizing Network features live on part of the
// fleet when a hurricane hit. Every tower degrades in absolute terms, so a
// study-only read says "everything is worse". The operational question is
// *relative*: did SON towers (study group) weather the storm better than
// non-SON towers (control group)? Litmus answers by forecasting the SON
// towers from the non-SON towers and testing the forecast difference.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "kpi/aggregate.h"
#include "litmus/assessor.h"
#include "litmus/study_only.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"
#include "simkit/weather.h"
#include "tsmath/stats.h"

using namespace litmus;

int main() {
  // A coastal market with SON rollout in progress (~40% of towers).
  net::Topology topo =
      net::build_small_region(net::Region::kNortheast, 1938, 3, 12);
  std::vector<net::ElementId> son, non_son;
  for (const auto id : topo.of_kind(net::ElementKind::kNodeB))
    (topo.get(id).config.son_enabled ? son : non_son).push_back(id);
  std::printf("fleet: %zu SON towers (study), %zu non-SON towers (control)\n",
              son.size(), non_son.size());

  // Landfall at bin 0; four days of hurricane conditions.
  const std::int64_t landfall = 0;
  sim::WeatherEvent hurricane =
      sim::make_event(sim::WeatherKind::kHurricane,
                      topo.get(son.front()).location, landfall, 4 * 24);
  hurricane.outage_probability = 0.05;

  // SON's real value during the event: automatic neighbor discovery and
  // load balancing soften the hit at SON towers.
  std::vector<sim::UpstreamEvent> mitigation;
  for (const auto t : son) {
    sim::UpstreamEvent m;
    m.source = t;
    m.start_bin = landfall;
    m.end_bin = landfall + 6 * 24;
    m.sigma_shift = +1.1;
    mitigation.push_back(m);
  }

  sim::KpiGenerator gen(topo, {.seed = 1938});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::WeatherFactor>(
      std::vector<sim::WeatherEvent>{hurricane}));
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(topo, mitigation));

  core::AssessmentConfig cfg;
  cfg.before_bins = 10 * 24;
  cfg.after_bins = 5 * 24;
  core::Assessor assessor(
      topo,
      [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s, std::size_t n) {
        return gen.kpi_series(e, k, s, n);
      },
      cfg);

  for (const auto kpi_id : {kpi::KpiId::kVoiceAccessibility,
                            kpi::KpiId::kVoiceRetainability,
                            kpi::KpiId::kDataRetainability}) {
    // Absolute view first.
    std::vector<ts::TimeSeries> son_series, ctrl_series;
    for (const auto t : son)
      son_series.push_back(gen.kpi_series(t, kpi_id, landfall - 240, 360));
    for (const auto t : non_son)
      ctrl_series.push_back(gen.kpi_series(t, kpi_id, landfall - 240, 360));
    const ts::TimeSeries son_mean = kpi::pointwise_mean(son_series);
    const ts::TimeSeries ctrl_mean = kpi::pointwise_mean(ctrl_series);
    const double son_drop = ts::mean(son_mean.slice_bins(0, 96)) -
                            ts::mean(son_mean.slice_bins(-240, 0));
    const double ctrl_drop = ts::mean(ctrl_mean.slice_bins(0, 96)) -
                             ts::mean(ctrl_mean.slice_bins(-240, 0));
    std::printf("\n%s: absolute change during the hurricane — SON %+0.5f, "
                "non-SON %+0.5f (both degrade; SON degrades less)\n",
                std::string(kpi::to_string(kpi_id)).c_str(), son_drop,
                ctrl_drop);

    // Litmus relative view.
    const core::ChangeAssessment a =
        assessor.assess(son, non_son, kpi_id, landfall);
    std::printf("Litmus vote: %s (%zu/%zu towers show relative "
                "improvement)\n",
                to_string(a.summary.verdict), a.summary.improvements,
                son.size());
  }

  std::printf("\nconclusion: SON did its job under the worst conditions — "
              "roll the features out fleet-wide (the paper's operational "
              "outcome).\n");
  return 0;
}
