// The holiday false positive (paper Section 5.4, Fig 11).
//
// A parameter change to improve cell-change success rates is trialed at a
// few RNCs. Shortly afterwards the holiday season starts, traffic lightens
// across the whole region, and data retainability improves *everywhere*.
// A study-only read recommends a network-wide rollout; Litmus compares
// against the control RNCs, sees no relative change, and blocks the rollout
// — the outcome the Engineering teams confirmed as correct.
#include <cstdio>
#include <memory>
#include <vector>

#include "cellnet/builder.h"
#include "litmus/assessor.h"
#include "litmus/report.h"
#include "litmus/study_only.h"
#include "simkit/generator.h"
#include "simkit/seasonality.h"
#include "simkit/traffic.h"

using namespace litmus;

int main() {
  net::Topology topo =
      net::build_small_region(net::Region::kSoutheast, 424, 8, 5);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);
  const std::int64_t change_bin = 0;

  // Holiday three days after the change: lighter load, fewer drops.
  sim::HolidayWindow holiday;
  holiday.start_bin = change_bin + 3 * 24;
  holiday.end_bin = change_bin + 13 * 24;
  holiday.load_multiplier = 0.6;
  holiday.region = net::Region::kSoutheast;

  sim::KpiGenerator gen(topo, {.seed = 424, .congestion_threshold = 0.9});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::TrafficEventFactor>(
      std::vector<sim::HolidayWindow>{holiday},
      std::vector<sim::VenueEvent>{}));

  core::Assessor assessor(
      topo, [&gen](net::ElementId e, kpi::KpiId k, std::int64_t s,
                   std::size_t n) { return gen.kpi_series(e, k, s, n); });

  const std::vector<net::ElementId> study(rncs.begin(), rncs.begin() + 3);
  const std::vector<net::ElementId> controls(rncs.begin() + 3, rncs.end());
  const auto kpi_id = kpi::KpiId::kDataRetainability;

  // What a study-only dashboard would report.
  std::printf("study-only before/after reads (the naive dashboard):\n");
  const core::StudyOnlyAnalyzer study_only;
  for (const auto s : study) {
    const auto w = assessor.windows_for(s, controls, kpi_id, change_bin);
    const auto o = study_only.assess(w, kpi_id);
    std::printf("  %-22s %-12s (effect %+0.5f)\n",
                topo.get(s).name.c_str(), to_string(o.verdict),
                o.effect_kpi_units);
  }

  // What Litmus reports.
  const core::ChangeAssessment a =
      assessor.assess(study, controls, kpi_id, change_bin);
  std::printf("\n%s\n", core::format_assessment(a, topo).c_str());

  const bool rollout =
      a.summary.verdict == core::Verdict::kImprovement;
  std::printf("rollout recommendation: %s\n",
              rollout ? "ROLL OUT (would be a mistake here!)"
                      : "DO NOT roll out — the apparent gain is the holiday, "
                        "not the change");
  return 0;
}
