#include "simkit/scale.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "io/csv.h"
#include "io/snapshot.h"
#include "obs/manifest.h"
#include "simkit/injection.h"

namespace litmus::sim {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double u01(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Ids are a pure function of the cluster layout: each cluster owns
/// cluster_size + 1 consecutive ids, the RNC first (ids start at 1 —
/// id 0 is net::kInvalidElement).
std::uint32_t rnc_id(const ScaleCorpusConfig& cfg, std::size_t cluster) {
  return static_cast<std::uint32_t>(cluster * (cfg.cluster_size + 1) + 1);
}

void check(bool ok, const char* what) {
  if (!ok) throw std::runtime_error(std::string("scale corpus: ") + what);
}

}  // namespace

double scale_corpus_value(const ScaleCorpusConfig& config,
                          std::uint32_t element_id, std::size_t cluster,
                          kpi::KpiId id, std::int64_t bin,
                          bool improved) noexcept {
  const kpi::KpiInfo& k = kpi::info(id);
  const std::uint64_t kpi_tag = static_cast<std::uint64_t>(id) + 1;

  // Shared per-(cluster, kpi) diurnal component: 24-bin sinusoid with a
  // hash-derived phase, so clusters differ but cluster-mates co-move.
  const std::uint64_t ch =
      splitmix64(splitmix64(config.seed ^ 0xC1A57E12ull) ^
                 (static_cast<std::uint64_t>(cluster) * 0x9E3779B1ull +
                  kpi_tag));
  const double phase = u01(ch) * kTwoPi;
  const double common =
      std::sin(kTwoPi * static_cast<double>(bin) / 24.0 + phase);

  // Per-element loading on the shared component, in [0.5, 1.5].
  const std::uint64_t lh =
      splitmix64(splitmix64(config.seed ^ 0x10AD1064ull) ^
                 (static_cast<std::uint64_t>(element_id) * 0x85EBCA6Bull +
                  kpi_tag));
  const double loading = 0.5 + u01(lh);

  // Per-(element, kpi, bin) noise: Irwin-Hall(4), rescaled to sigma 1.
  std::uint64_t nh =
      splitmix64(splitmix64(config.seed ^ 0x4015E000ull) ^
                 (static_cast<std::uint64_t>(element_id) * 0xC2B2AE35ull +
                  kpi_tag));
  nh = splitmix64(nh ^ static_cast<std::uint64_t>(bin));
  double sum = 0.0;
  for (int draw = 0; draw < 4; ++draw) {
    nh = splitmix64(nh);
    sum += u01(nh);
  }
  const double noise = (sum - 2.0) * 1.7320508075688772;  // sqrt(3)

  double value =
      k.typical_value + k.typical_noise * (0.6 * loading * common + noise);
  if (improved && bin >= config.change_bin)
    value += sigma_to_kpi_delta(id, config.shift_sigma);
  if (k.is_ratio) value = std::clamp(value, 0.0, 1.0);
  return value;
}

ScaleCorpusReport write_scale_corpus(const std::string& dir,
                                     const ScaleCorpusConfig& config) {
  check(config.elements > 0, "elements must be > 0");
  check(config.cluster_size > 0, "cluster_size must be > 0");
  check(config.change_stride > 0, "change_stride must be > 0");
  check(config.improve_stride > 0, "improve_stride must be > 0");
  check(!config.kpis.empty(), "kpis must be non-empty");
  check(config.before_bins + config.guard_bins + config.after_bins > 0,
        "series would be empty");

  // Snapshot records must be ascending by (element, kpi): sort the KPI
  // list by id (deduplicated) once up front.
  std::vector<kpi::KpiId> kpis = config.kpis;
  std::sort(kpis.begin(), kpis.end());
  kpis.erase(std::unique(kpis.begin(), kpis.end()), kpis.end());

  ScaleCorpusReport report;
  report.nodebs = config.elements;
  report.clusters =
      (config.elements + config.cluster_size - 1) / config.cluster_size;
  report.elements = report.nodebs + report.clusters;

  const std::int64_t start_bin =
      config.change_bin - static_cast<std::int64_t>(config.before_bins);
  const std::size_t n_bins =
      config.before_bins + config.guard_bins + config.after_bins;

  std::ofstream topo_out = obs::open_output_file(dir + "/topology.csv");
  std::ofstream chg_out = obs::open_output_file(dir + "/changes.csv");
  io::SnapshotWriter snap(dir + "/series.litmus-snap",
                          /*source_fingerprint=*/0, /*source_bytes=*/0,
                          /*source_mtime_ns=*/0);

  topo_out << "# id, kind, technology, name, lat, lon, zip, region, "
              "parent_id, market\n";
  chg_out << "# element_id, type, bin, expectation, target_kpi, parameter, "
             "description\n";

  static constexpr const char* kRegions[] = {"Northeast", "Southeast",
                                             "Midwest", "Southwest", "West"};
  std::vector<double> values(n_bins);
  std::size_t nodeb_index = 0;  // global 0-based NodeB counter

  for (std::size_t c = 0; c < report.clusters; ++c) {
    const std::size_t members = std::min(
        config.cluster_size, config.elements - c * config.cluster_size);
    // ~0.02-degree grid of clusters over a continental box; members get
    // sub-milli-degree offsets so prefer_closest has real distances.
    const double base_lat = 25.0 + static_cast<double>(c / 1000) * 0.02;
    const double base_lon = -120.0 + static_cast<double>(c % 1000) * 0.02;
    const std::uint32_t zip = static_cast<std::uint32_t>(10000 + c);
    const char* region = kRegions[c % 5];
    const std::uint32_t rnc = rnc_id(config, c);

    char lat[32], lon[32];
    std::snprintf(lat, sizeof lat, "%.6f", base_lat);
    std::snprintf(lon, sizeof lon, "%.6f", base_lon);
    io::write_csv_row(
        topo_out,
        {std::to_string(rnc), "RNC", "UMTS", "RNC-" + std::to_string(c), lat,
         lon, std::to_string(zip), region, "0", std::to_string(c)});

    for (std::size_t j = 0; j < members; ++j, ++nodeb_index) {
      const std::uint32_t id = rnc + 1 + static_cast<std::uint32_t>(j);
      std::snprintf(lat, sizeof lat, "%.6f",
                    base_lat + static_cast<double>(j % 8) * 0.001);
      std::snprintf(lon, sizeof lon, "%.6f",
                    base_lon + static_cast<double>(j / 8) * 0.001);
      io::write_csv_row(
          topo_out,
          {std::to_string(id), "NodeB", "UMTS",
           "NB-" + std::to_string(c) + "-" + std::to_string(j), lat, lon,
           std::to_string(zip), region, std::to_string(rnc),
           std::to_string(c)});

      const bool changed = nodeb_index % config.change_stride == 0;
      const std::size_t ordinal = nodeb_index / config.change_stride;
      const bool improved = changed && ordinal % config.improve_stride == 0;
      const kpi::KpiId target = kpis[ordinal % kpis.size()];
      if (changed) {
        io::write_csv_row(
            chg_out,
            {std::to_string(id),
             improved ? "software_upgrade" : "config_change",
             std::to_string(config.change_bin),
             improved ? "improvement" : "no_impact",
             std::string(kpi::to_string(target)), "scale-corpus",
             improved ? "baked shift" : "placebo"});
        ++report.changes;
      }

      for (const kpi::KpiId k : kpis) {
        const bool shifted = improved && k == target;
        for (std::size_t b = 0; b < n_bins; ++b)
          values[b] = scale_corpus_value(config, id, c, k,
                                         start_bin +
                                             static_cast<std::int64_t>(b),
                                         shifted);
        snap.append(id, k, start_bin, /*bin_minutes=*/60, values);
      }
    }
  }

  check(topo_out.good() && chg_out.good(), "CSV write failed");
  snap.finish();
  report.series = snap.series_written();
  report.snapshot_payload_bytes = snap.payload_bytes();
  return report;
}

}  // namespace litmus::sim
