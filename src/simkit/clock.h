// Simulation calendar.
//
// Bins are hours since the simulation epoch, which is defined to be
// 00:00 on Monday, January 1 of simulation year 0 (years are 365 days; no
// leap handling — the factors only need day-of-year phase). Daily series
// use bin_minutes = 1440 and day indices.
#pragma once

#include <cstdint>

namespace litmus::sim {

inline constexpr int kHoursPerDay = 24;
inline constexpr int kDaysPerWeek = 7;
inline constexpr int kDaysPerYear = 365;
inline constexpr int kHoursPerWeek = kHoursPerDay * kDaysPerWeek;
inline constexpr int kHoursPerYear = kHoursPerDay * kDaysPerYear;

/// Day index (can be negative) of an hourly bin.
std::int64_t day_of(std::int64_t hour_bin) noexcept;

/// Hour of day in [0, 24).
int hour_of_day(std::int64_t hour_bin) noexcept;

/// Day of week in [0, 7), 0 = Monday.
int day_of_week(std::int64_t hour_bin) noexcept;

bool is_weekend(std::int64_t hour_bin) noexcept;

/// Day of year in [0, 365).
int day_of_year(std::int64_t hour_bin) noexcept;

/// Hourly bin at 00:00 of the given (year, day-of-year).
std::int64_t bin_at(std::int64_t year, int day_of_year, int hour = 0) noexcept;

/// Calendar helpers for US-style holiday windows used by the traffic
/// factors. Day-of-year constants (0-based, non-leap).
inline constexpr int kNewYearDoy = 0;
inline constexpr int kIndependenceDoy = 184;   // Jul 4
inline constexpr int kThanksgivingDoy = 329;   // ~Nov 26
inline constexpr int kChristmasDoy = 358;      // Dec 25

}  // namespace litmus::sim
