#include "simkit/network_events.h"

#include <algorithm>

#include "tsmath/random.h"

namespace litmus::sim {

NetworkEventFactor::NetworkEventFactor(const net::Topology& topo,
                                       std::vector<UpstreamEvent> upstream,
                                       std::vector<OutageEvent> outages)
    : outages_(std::move(outages)) {
  upstream_.reserve(upstream.size());
  for (auto& ev : upstream) {
    ResolvedUpstream r;
    const auto subtree = topo.subtree_of(ev.source);
    if (ev.hit_fraction >= 1.0) {
      r.affected.insert(subtree.begin(), subtree.end());
    } else {
      // Fig 6: the upgrade improves a *majority* of downstream towers, not
      // all — model per-element hits deterministically.
      ts::Rng rng(ev.seed ^ (ev.source.value * 0x9E3779B97F4A7C15ULL));
      for (const auto id : subtree)
        if (id == ev.source || rng.chance(ev.hit_fraction))
          r.affected.insert(id);
    }
    r.event = std::move(ev);
    upstream_.push_back(std::move(r));
  }
}

double NetworkEventFactor::quality_effect(const net::NetworkElement& element,
                                          std::int64_t bin) const {
  double total = 0.0;
  for (const auto& r : upstream_) {
    const auto& ev = r.event;
    if (bin < ev.start_bin || bin >= ev.end_bin) continue;
    if (!r.affected.contains(element.id)) continue;
    double scale = 1.0;
    if (ev.ramp_bins > 0 && bin < ev.start_bin + ev.ramp_bins)
      scale = static_cast<double>(bin - ev.start_bin + 1) /
              static_cast<double>(ev.ramp_bins);
    total += ev.sigma_shift * scale;
  }
  return total;
}

bool NetworkEventFactor::blackout(const net::NetworkElement& element,
                                  std::int64_t bin) const {
  for (const auto& o : outages_) {
    if (bin < o.start_bin || bin >= o.end_bin) continue;
    if (std::find(o.elements.begin(), o.elements.end(), element.id) !=
        o.elements.end())
      return true;
  }
  return false;
}

}  // namespace litmus::sim
