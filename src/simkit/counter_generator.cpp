#include "simkit/counter_generator.h"

#include <algorithm>
#include <cmath>

#include "tsmath/random.h"

namespace litmus::sim {

CounterGenerator::CounterGenerator(const KpiGenerator& base,
                                   CounterModel model)
    : base_(&base), model_(model) {}

kpi::SessionRates CounterGenerator::rates_for(double quality,
                                              double load) const {
  auto scale_p = [&](double p0) {
    return std::clamp(p0 * std::exp(-model_.quality_sensitivity * quality),
                      0.0, model_.max_failure_probability);
  };
  kpi::SessionRates r = model_.baseline;
  r.voice_attempts_per_bin *= load;
  r.data_attempts_per_bin *= load;
  r.voice_block_prob = scale_p(model_.baseline.voice_block_prob);
  r.voice_drop_prob = scale_p(model_.baseline.voice_drop_prob);
  r.data_block_prob = scale_p(model_.baseline.data_block_prob);
  r.data_drop_prob = scale_p(model_.baseline.data_drop_prob);
  r.mean_megabits_per_data_session =
      model_.baseline.mean_megabits_per_data_session *
      std::max(0.2, 1.0 + 0.08 * quality);
  return r;
}

kpi::CounterSeries CounterGenerator::counters(net::ElementId element,
                                              std::int64_t start,
                                              std::size_t n) const {
  const ts::TimeSeries latent = base_->latent_series(element, start, n);
  const ts::TimeSeries load = base_->load_series(element, start, n);
  ts::Rng rng(base_->config().seed ^ 0xC0DA ^
              (element.value * 0x9E3779B97F4A7C15ULL) ^
              (static_cast<std::uint64_t>(start + (1LL << 40)) *
               0xD1B54A32D192ED03ULL));

  kpi::CounterSeries out(start, n, 60);
  for (std::size_t i = 0; i < n; ++i) {
    if (ts::is_missing(latent[i])) continue;  // element dark: zero counters
    const std::int64_t bin = start + static_cast<std::int64_t>(i);
    const kpi::SessionRates rates = rates_for(latent[i], load[i]);
    for (const auto& rec :
         kpi::synthesize_bin_records(rng, element, bin, rates))
      kpi::accumulate(out.at_bin(bin), rec);
  }
  return out;
}

ts::TimeSeries CounterGenerator::kpi_series(net::ElementId element,
                                            kpi::KpiId kpi,
                                            std::int64_t start,
                                            std::size_t n) const {
  return counters(element, start, n).kpi_series(kpi);
}

}  // namespace litmus::sim
