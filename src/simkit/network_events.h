// Network-event external factors (paper Section 2.5, "Network events"):
// changes and maintenance at *other* elements that spill into the study or
// control group through topology — Fig 6's upstream RNC upgrade — plus
// planned/unplanned outages.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cellnet/topology.h"
#include "simkit/factors.h"

namespace litmus::sim {

/// A performance-affecting event at `source` whose effect applies to the
/// whole subtree below it from `start_bin` onward (level shift), optionally
/// with a ramp-in and an end.
struct UpstreamEvent {
  net::ElementId source;
  std::int64_t start_bin = 0;
  std::int64_t end_bin = INT64_MAX;  ///< exclusive; default: permanent
  double sigma_shift = 1.0;          ///< + improves, - degrades the subtree
  std::int64_t ramp_bins = 0;        ///< linear ramp-in length
  double hit_fraction = 1.0;         ///< fraction of subtree elements affected
  std::uint64_t seed = 31;           ///< for the hit_fraction draw
};

/// A hard outage of a set of elements over a window: series go missing.
struct OutageEvent {
  std::vector<net::ElementId> elements;
  std::int64_t start_bin = 0;
  std::int64_t end_bin = 0;  ///< exclusive
};

class NetworkEventFactor final : public ExternalFactor {
 public:
  /// Resolves each upstream event's subtree against `topo` at construction.
  NetworkEventFactor(const net::Topology& topo,
                     std::vector<UpstreamEvent> upstream,
                     std::vector<OutageEvent> outages = {});

  double quality_effect(const net::NetworkElement& element,
                        std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "network_events"; }

  /// True when `element` is inside an outage window at `bin`.
  bool blackout(const net::NetworkElement& element,
                std::int64_t bin) const override;

 private:
  struct ResolvedUpstream {
    UpstreamEvent event;
    std::unordered_set<net::ElementId> affected;
  };
  std::vector<ResolvedUpstream> upstream_;
  std::vector<OutageEvent> outages_;
};

}  // namespace litmus::sim
