// Synthetic change injection (paper Section 4.3).
//
// The evaluation injects level shifts (and ramps) into generated KPI
// series, at the study group, the control group, or both. Magnitudes are
// expressed in latent sigma units — multiples of the KPI's per-bin noise —
// and converted through the KPI catalogue so that a *positive* magnitude is
// always a service-quality improvement regardless of polarity (a +2-sigma
// injection lowers a dropped-call ratio but raises a retainability).
#pragma once

#include <cstdint>

#include "kpi/kpi.h"
#include "tsmath/timeseries.h"

namespace litmus::sim {

enum class InjectionShape : std::uint8_t {
  kLevelShift,  ///< step at `at_bin`, persists to the end of the series
  kRamp,        ///< linear ramp from 0 to full magnitude over `ramp_bins`
};

struct Injection {
  std::int64_t at_bin = 0;
  double magnitude_sigma = 0.0;  ///< + improves service, - degrades
  InjectionShape shape = InjectionShape::kLevelShift;
  std::int64_t ramp_bins = 24;
};

/// KPI-unit delta corresponding to a sigma-unit quality change for `id`.
double sigma_to_kpi_delta(kpi::KpiId id, double magnitude_sigma) noexcept;

/// Applies the injection to a KPI series in place (ratio KPIs re-clamped).
void apply_injection(ts::TimeSeries& series, kpi::KpiId id,
                     const Injection& injection);

}  // namespace litmus::sim
