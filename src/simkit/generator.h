// KpiGenerator: the telemetry model that stands in for the carrier's
// production KPI feeds.
//
// Per element e and hourly bin t the generator produces a latent service-
// quality process (in "sigma units" — the scale of the element's own noise):
//
//   q_e(t) =  w_r * R_region(e)(t)            spatially shared regional AR(1)
//           + w_m * M_market(e)(t)            spatially shared market AR(1)
//           + sum_f f.quality_effect(e, t)    external factors
//           - congestion(load_e(t))           traffic-driven quality loss
//           + a_e(t) + eps_e(t)               element AR(1) + white noise
//
// The shared R/M components give geographically-close elements the strong
// spatial auto-correlation the paper observes (Section 3.1, observation i),
// and the external factors move study and control together (observation
// ii). KPI values map from q via the KPI catalogue's operating point and
// noise scale, honouring polarity; ratio KPIs are clamped to [0,1].
//
// Everything is a deterministic function of (seed, topology, factors,
// window), so scenario runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "cellnet/topology.h"
#include "kpi/kpi.h"
#include "simkit/factors.h"
#include "tsmath/timeseries.h"

namespace litmus::sim {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // Spatial dependency weights (sigma units). The shared components are
  // slow-moving (high rho): regional weather/season/traffic conditions
  // persist across days, which is what makes two windows a fortnight apart
  // almost never exchangeable for a single element (the study-only trap).
  double region_factor_weight = 0.9;
  double market_factor_weight = 0.5;
  /// Each shared component is a unit-variance mix of a slow AR(1) (multi-day
  /// weather/season persistence — the reason two windows a fortnight apart
  /// are never exchangeable) and a fast AR(1) (hour-scale conditions, whose
  /// stable within-window variance lets a regression identify per-element
  /// loadings reliably).
  double shared_slow_rho = 0.985;
  double shared_fast_rho = 0.80;
  double shared_slow_mix = 0.83;
  double shared_fast_mix = 0.55;
  /// Per-element exposure to the shared components varies (different sites
  /// feel the same weather differently): each element's loading is drawn
  /// uniformly from [1 - loading_spread, 1 + loading_spread].
  double loading_spread = 0.15;

  // Element-local noise; stationary sigma of AR1 + white is ~1.
  double element_rho = 0.5;
  double element_ar_sigma = 0.55;
  double white_sigma = 0.45;

  // Congestion: quality penalty once normalized load exceeds the threshold.
  // The knee sits just above the mean load, so the busy-hour dip is a
  // reliable daily structure in every quality series (as in production
  // KPIs, which breathe with the traffic day).
  double congestion_threshold = 1.05;
  double congestion_coeff = 1.2;

  // Baseline voice-call attempts per element-hour, for volume series.
  double base_voice_attempts = 240.0;

  // Warm-up bins for the AR recursions before the requested window.
  int burn_in = 64;
};

class KpiGenerator {
 public:
  explicit KpiGenerator(const net::Topology& topo, GeneratorConfig cfg = {});

  /// Registers an external factor. Factors are shared and immutable.
  void add_factor(FactorPtr factor);

  const GeneratorConfig& config() const noexcept { return cfg_; }
  const net::Topology& topology() const noexcept { return *topo_; }

  /// Latent service quality q_e(t), sigma units, over [start, start+n).
  ts::TimeSeries latent_series(net::ElementId element, std::int64_t start,
                               std::size_t n) const;

  /// KPI series for one element.
  ts::TimeSeries kpi_series(net::ElementId element, kpi::KpiId id,
                            std::int64_t start, std::size_t n) const;

  /// KPI series for several elements (same window).
  std::vector<ts::TimeSeries> kpi_series(std::span<const net::ElementId> ids,
                                         kpi::KpiId id, std::int64_t start,
                                         std::size_t n) const;

  /// Normalized offered load (1.0 = baseline) for one element.
  ts::TimeSeries load_series(net::ElementId element, std::int64_t start,
                             std::size_t n) const;

  /// Voice-call attempt volume per bin (attempts/hour).
  ts::TimeSeries volume_series(net::ElementId element, std::int64_t start,
                               std::size_t n) const;

  /// Maps a latent series to KPI units (exposed for injection helpers).
  ts::TimeSeries latent_to_kpi(const ts::TimeSeries& latent,
                               kpi::KpiId id) const;

  /// The element's loading on the shared regional component — its
  /// susceptibility to region-wide external conditions. External-factor
  /// effects scale with this (exposed so scenario code can apply confounds
  /// consistently with the latent model).
  double region_loading(net::ElementId element) const;

  /// Weighted susceptibility across both shared components — how strongly a
  /// region-wide condition that rides the full latent mix hits the element.
  double combined_loading(net::ElementId element) const;

 private:
  /// Shared AR(1) component for a tag ("R<region>" / "M<market>"), cached
  /// per (tag, start, n).
  const std::vector<double>& shared_component(std::uint64_t tag,
                                              std::int64_t start,
                                              std::size_t n) const;

  const net::Topology* topo_;
  GeneratorConfig cfg_;
  std::vector<FactorPtr> factors_;
  mutable std::map<std::tuple<std::uint64_t, std::int64_t, std::size_t>,
                   std::vector<double>>
      shared_cache_;
};

}  // namespace litmus::sim
