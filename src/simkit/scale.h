// Million-element corpus generator for the mapped-store scale path
// (DESIGN.md §15).
//
// The fidelity-first KpiGenerator holds AR(1) state per element and is
// superb at thousands of elements; at a million it is the wrong tool. This
// generator trades the latent model for a *closed-form* per-value formula —
// every value is a pure function of (seed, element, kpi, bin) — so the
// corpus streams straight to disk with O(1) memory through SnapshotWriter
// and regenerates bit-identically on any machine.
//
// Shape of the corpus:
//   * clusters of `cluster_size` NodeBs under one RNC each, one zip code
//     per cluster and no neighbor links, so a change's impact scope is the
//     changed element alone and the natural control group is "the rest of
//     the cluster" (litmus_cli --select zip);
//   * per (cluster, kpi) a smooth shared component with per-element
//     loadings, so control regression has genuine signal to fit, plus
//     hash-derived per-bin element noise;
//   * every `change_stride`-th NodeB carries one change record at
//     `change_bin`; every `improve_stride`-th of those gets a real
//     `shift_sigma` service improvement baked into its after window
//     (expectation: improvement), the rest are no-impact controls of the
//     assessment itself.
//
// Outputs (into `dir`): topology.csv, changes.csv, series.litmus-snap.
// The snapshot is the store — litmus_cli batch --series-snap mmaps it
// directly and never materialises the series on the heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "kpi/kpi.h"

namespace litmus::sim {

struct ScaleCorpusConfig {
  /// NodeB count; RNC parents (one per cluster) come on top.
  std::size_t elements = 100'000;
  std::size_t cluster_size = 40;
  /// Every Nth NodeB gets a change record at `change_bin`.
  std::size_t change_stride = 64;
  /// Every Nth change record is a real improvement; the rest are
  /// no-impact placebo changes.
  std::size_t improve_stride = 2;
  std::int64_t change_bin = 0;
  /// Series cover exactly [change_bin - before_bins,
  /// change_bin + guard_bins + after_bins) — the assessment windows for a
  /// batch run with matching --before-bins/--after-bins.
  std::size_t before_bins = 48;
  std::size_t guard_bins = 0;
  std::size_t after_bins = 24;
  /// Injected improvement magnitude in sigma units (see
  /// sim::sigma_to_kpi_delta).
  double shift_sigma = 2.0;
  std::uint64_t seed = 20260808;
  /// KPIs generated per element (written in ascending id order).
  std::vector<kpi::KpiId> kpis = {kpi::KpiId::kVoiceRetainability,
                                  kpi::KpiId::kDroppedVoiceCallRatio};
};

struct ScaleCorpusReport {
  std::size_t clusters = 0;
  std::size_t nodebs = 0;
  std::size_t elements = 0;  ///< total rows in topology.csv (incl. RNCs)
  std::size_t changes = 0;
  std::uint64_t series = 0;  ///< records in the snapshot
  std::uint64_t snapshot_payload_bytes = 0;
};

/// Streams the corpus into `dir` (created if needed). Deterministic for a
/// given config; throws std::runtime_error on I/O failure.
ScaleCorpusReport write_scale_corpus(const std::string& dir,
                                     const ScaleCorpusConfig& config);

/// The closed-form series value for (element, kpi, bin) — exposed so tests
/// can cross-check snapshot contents against the formula.
double scale_corpus_value(const ScaleCorpusConfig& config,
                          std::uint32_t element_id, std::size_t cluster,
                          kpi::KpiId kpi, std::int64_t bin,
                          bool improved) noexcept;

}  // namespace litmus::sim
