#include "simkit/weather.h"

#include <algorithm>
#include <cmath>

#include "tsmath/random.h"

namespace litmus::sim {

const char* to_string(WeatherKind k) noexcept {
  switch (k) {
    case WeatherKind::kRain: return "rain";
    case WeatherKind::kWind: return "wind";
    case WeatherKind::kSevereStorm: return "severe_storm";
    case WeatherKind::kHurricane: return "hurricane";
  }
  return "?";
}

WeatherEvent make_event(WeatherKind kind, net::GeoPoint center,
                        std::int64_t start_bin, std::int64_t duration_bins) {
  WeatherEvent ev;
  ev.kind = kind;
  ev.center = center;
  ev.start_bin = start_bin;
  ev.end_bin = start_bin + duration_bins;
  switch (kind) {
    case WeatherKind::kRain:
      ev.radius_km = 250.0;
      ev.peak_sigma = 0.8;
      ev.outage_probability = 0.0;
      break;
    case WeatherKind::kWind:
      ev.radius_km = 150.0;
      ev.peak_sigma = 1.8;
      ev.outage_probability = 0.0;
      break;
    case WeatherKind::kSevereStorm:
      ev.radius_km = 120.0;
      ev.peak_sigma = 3.0;
      ev.outage_probability = 0.04;
      break;
    case WeatherKind::kHurricane:
      ev.radius_km = 400.0;
      ev.peak_sigma = 4.0;
      ev.outage_probability = 0.12;
      break;
  }
  return ev;
}

WeatherFactor::WeatherFactor(std::vector<WeatherEvent> events,
                             std::uint64_t seed)
    : events_(std::move(events)), seed_(seed) {}

double WeatherFactor::footprint(const WeatherEvent& ev,
                                const net::GeoPoint& p) {
  const double d = net::haversine_km(ev.center, p);
  // Gaussian decay: ~1 at the center, 0.5 at radius, ~0 beyond 2.5 radii.
  const double x = d / ev.radius_km;
  if (x > 2.5) return 0.0;
  return std::exp(-0.6931 * x * x);
}

double WeatherFactor::envelope(const WeatherEvent& ev, std::int64_t bin) {
  if (bin < ev.start_bin || bin >= ev.end_bin) return 0.0;
  const double len = static_cast<double>(ev.end_bin - ev.start_bin);
  const double t = (static_cast<double>(bin - ev.start_bin) + 0.5) / len;
  // Asymmetric pulse: quick onset, slower recovery.
  const double up = std::min(1.0, t / 0.25);
  const double down = std::min(1.0, (1.0 - t) / 0.45);
  return std::min(up, down);
}

bool WeatherFactor::outage_hit(const WeatherEvent& ev, std::size_t event_index,
                               const net::NetworkElement& element) const {
  if (ev.outage_probability <= 0.0) return false;
  if (!net::is_tower(element.kind)) return false;
  const double fp = footprint(ev, element.location);
  if (fp < 0.3) return false;
  ts::Rng rng(seed_ ^ (event_index * 0xD1B54A32D192ED03ULL) ^
              (element.id.value * 0x9E3779B97F4A7C15ULL));
  return rng.chance(ev.outage_probability * fp);
}

double WeatherFactor::quality_effect(const net::NetworkElement& element,
                                     std::int64_t bin) const {
  double total = 0.0;
  for (const auto& ev : events_) {
    const double env = envelope(ev, bin);
    if (env == 0.0) continue;
    total -= ev.peak_sigma * env * footprint(ev, element.location);
  }
  return total;
}

double WeatherFactor::load_factor(const net::NetworkElement& element,
                                  std::int64_t bin) const {
  // Severe events spike call volumes (people checking in) while degrading
  // quality; mild rain does not move load.
  double factor = 1.0;
  for (const auto& ev : events_) {
    if (ev.kind != WeatherKind::kSevereStorm &&
        ev.kind != WeatherKind::kHurricane)
      continue;
    const double env = envelope(ev, bin);
    if (env == 0.0) continue;
    factor *= 1.0 + 0.4 * env * footprint(ev, element.location);
  }
  return factor;
}

bool WeatherFactor::blackout(const net::NetworkElement& element,
                             std::int64_t bin) const {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto& ev = events_[i];
    if (bin < ev.start_bin || bin >= ev.end_bin) continue;
    if (outage_hit(ev, i, element)) return true;
  }
  return false;
}

}  // namespace litmus::sim
