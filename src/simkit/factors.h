// External-factor interface (paper Section 2.5).
//
// Factors contribute to two channels of the telemetry model:
//
//  * quality_effect: an additive contribution to the element's latent
//    service-quality process q(t), expressed in "sigma units" — the scale of
//    the element's own per-bin noise. Negative values degrade service.
//  * load_factor: a multiplicative contribution to the element's offered
//    traffic load (1.0 = neutral). High load degrades quality through the
//    generator's congestion term (Section 2.5, "Traffic pattern changes").
//
// Factors are pure functions of (element, bin), so the generator can
// evaluate any subset of elements over any window deterministically.
#pragma once

#include <memory>
#include <string_view>

#include "cellnet/element.h"

namespace litmus::sim {

class ExternalFactor {
 public:
  virtual ~ExternalFactor() = default;

  /// Additive latent-quality contribution in sigma units.
  virtual double quality_effect(const net::NetworkElement& element,
                                std::int64_t bin) const = 0;

  /// Multiplicative offered-load contribution (1.0 = neutral).
  virtual double load_factor(const net::NetworkElement& element,
                             std::int64_t bin) const {
    (void)element;
    (void)bin;
    return 1.0;
  }

  /// True when the factor takes the element out of service entirely at
  /// `bin` (tower outage): the generator reports the bin as missing, since
  /// an element that is down produces no counters.
  virtual bool blackout(const net::NetworkElement& element,
                        std::int64_t bin) const {
    (void)element;
    (void)bin;
    return false;
  }

  virtual std::string_view name() const noexcept = 0;
};

using FactorPtr = std::shared_ptr<const ExternalFactor>;

}  // namespace litmus::sim
