// Traffic-pattern external factors (paper Section 2.5, "Traffic pattern
// changes"): holidays that move load everywhere in a region, and big events
// (games at stadiums) that concentrate load near a venue — Fig 5.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cellnet/geo.h"
#include "simkit/factors.h"

namespace litmus::sim {

/// A region-wide (or nationwide) load shift over a date window, e.g. a
/// holiday season. `load_multiplier` > 1 raises traffic.
struct HolidayWindow {
  std::int64_t start_bin = 0;
  std::int64_t end_bin = 0;                       ///< exclusive
  double load_multiplier = 1.4;
  std::optional<net::Region> region;              ///< nullopt = everywhere
};

/// A venue event: a sharp load spike near a point for a few hours.
struct VenueEvent {
  net::GeoPoint venue;
  double radius_km = 8.0;
  std::int64_t start_bin = 0;
  std::int64_t end_bin = 0;                       ///< exclusive
  double peak_load_multiplier = 4.0;              ///< at the venue
};

class TrafficEventFactor final : public ExternalFactor {
 public:
  TrafficEventFactor(std::vector<HolidayWindow> holidays,
                     std::vector<VenueEvent> events);

  double quality_effect(const net::NetworkElement&,
                        std::int64_t) const override {
    return 0.0;  // traffic affects quality only through the congestion term
  }
  double load_factor(const net::NetworkElement& element,
                     std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "traffic_events"; }

 private:
  std::vector<HolidayWindow> holidays_;
  std::vector<VenueEvent> events_;
};

}  // namespace litmus::sim
