#include "simkit/injection.h"

namespace litmus::sim {

double sigma_to_kpi_delta(kpi::KpiId id, double magnitude_sigma) noexcept {
  const kpi::KpiInfo& k = kpi::info(id);
  const double sign =
      k.polarity == kpi::Polarity::kHigherIsBetter ? 1.0 : -1.0;
  return sign * k.typical_noise * magnitude_sigma;
}

void apply_injection(ts::TimeSeries& series, kpi::KpiId id,
                     const Injection& injection) {
  const double delta = sigma_to_kpi_delta(id, injection.magnitude_sigma);
  switch (injection.shape) {
    case InjectionShape::kLevelShift:
      series.add_level(injection.at_bin, series.end_bin(), delta);
      break;
    case InjectionShape::kRamp:
      series.add_ramp(injection.at_bin, injection.at_bin + injection.ramp_bins,
                      delta);
      series.add_level(injection.at_bin + injection.ramp_bins,
                       series.end_bin(), delta);
      break;
  }
  if (kpi::info(id).is_ratio) series.clamp(0.0, 1.0);
}

}  // namespace litmus::sim
