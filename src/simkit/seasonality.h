// Seasonal external factors: yearly foliage, diurnal/weekly load, and the
// slow carrier-improvement trend visible in Fig 3.
#pragma once

#include <cstdint>

#include "simkit/factors.h"

namespace litmus::sim {

/// Yearly foliage seasonality (Fig 3): leaves bud in April and fall in
/// September, degrading radio propagation while present. Only elements in
/// foliage regions (Northeast/Midwest) are affected, with a per-element
/// intensity in [0,1] derived deterministically from the element id — the
/// paper's Fig 9 notes "different intensities of foliage" across elements.
class FoliageFactor final : public ExternalFactor {
 public:
  /// `peak_sigma`: worst-case quality loss at full leaf-out for an element
  /// with intensity 1.
  explicit FoliageFactor(double peak_sigma = 2.0, std::uint64_t seed = 17);

  double quality_effect(const net::NetworkElement& element,
                        std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "foliage"; }

  /// Leaf-out fraction in [0,1] for a day of year (0 in winter, 1 in
  /// mid-summer, smooth shoulders in April and September).
  static double leaf_fraction(int day_of_year) noexcept;

  /// The per-element intensity this factor will use.
  double intensity(const net::NetworkElement& element) const;

 private:
  double peak_sigma_;
  std::uint64_t seed_;
};

/// Diurnal + weekly offered-load pattern, shaped by the element's traffic
/// profile (Section 3.2's business-vs-lake example): business towers peak
/// on weekday working hours, residential in the evening, recreation on
/// weekends, highway at commute times, stadium flat (events come from
/// TrafficEventFactor).
class DiurnalLoadFactor final : public ExternalFactor {
 public:
  /// `amplitude` in [0,1): peak-to-trough swing around the 1.0 baseline.
  explicit DiurnalLoadFactor(double amplitude = 0.45);

  double quality_effect(const net::NetworkElement&,
                        std::int64_t) const override {
    return 0.0;
  }
  double load_factor(const net::NetworkElement& element,
                     std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "diurnal_load"; }

 private:
  double amplitude_;
};

/// Slow fleet-wide improvement trend ("likely due to the continuous
/// improvements performed by the carrier", Fig 3 caption).
class CarrierTrendFactor final : public ExternalFactor {
 public:
  /// `sigma_per_year`: latent-quality gain per simulated year.
  explicit CarrierTrendFactor(double sigma_per_year = 0.5);

  double quality_effect(const net::NetworkElement& element,
                        std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "carrier_trend"; }

 private:
  double sigma_per_year_;
};

}  // namespace litmus::sim
