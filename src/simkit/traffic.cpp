#include "simkit/traffic.h"

#include <algorithm>
#include <cmath>

namespace litmus::sim {

TrafficEventFactor::TrafficEventFactor(std::vector<HolidayWindow> holidays,
                                       std::vector<VenueEvent> events)
    : holidays_(std::move(holidays)), events_(std::move(events)) {}

double TrafficEventFactor::load_factor(const net::NetworkElement& element,
                                       std::int64_t bin) const {
  double factor = 1.0;
  for (const auto& h : holidays_) {
    if (bin < h.start_bin || bin >= h.end_bin) continue;
    if (h.region && *h.region != element.region) continue;
    factor *= h.load_multiplier;
  }
  for (const auto& ev : events_) {
    if (bin < ev.start_bin || bin >= ev.end_bin) continue;
    const double d = net::haversine_km(ev.venue, element.location);
    const double x = d / ev.radius_km;
    if (x > 2.0) continue;
    const double spatial = std::exp(-1.5 * x * x);
    factor *= 1.0 + (ev.peak_load_multiplier - 1.0) * spatial;
  }
  return factor;
}

}  // namespace litmus::sim
