#include "simkit/seasonality.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "simkit/clock.h"
#include "tsmath/random.h"

namespace litmus::sim {

FoliageFactor::FoliageFactor(double peak_sigma, std::uint64_t seed)
    : peak_sigma_(peak_sigma), seed_(seed) {}

double FoliageFactor::leaf_fraction(int doy) noexcept {
  // Budding ramp over April (doy ~90-120), full canopy May-Aug, leaf-fall
  // ramp over September-October (doy ~244-304).
  constexpr int kBudStart = 90, kBudEnd = 120;
  constexpr int kFallStart = 244, kFallEnd = 304;
  auto smooth = [](double x) {  // smoothstep on [0,1]
    x = std::clamp(x, 0.0, 1.0);
    return x * x * (3.0 - 2.0 * x);
  };
  if (doy < kBudStart || doy >= kFallEnd) return 0.0;
  if (doy < kBudEnd)
    return smooth(static_cast<double>(doy - kBudStart) /
                  (kBudEnd - kBudStart));
  if (doy < kFallStart) return 1.0;
  return 1.0 - smooth(static_cast<double>(doy - kFallStart) /
                      (kFallEnd - kFallStart));
}

double FoliageFactor::intensity(const net::NetworkElement& element) const {
  if (!net::has_foliage_seasonality(element.region)) return 0.0;
  // Urban cores see less foliage than suburban/rural sites.
  double terrain_scale = 1.0;
  switch (element.config.terrain) {
    case net::Terrain::kUrban: terrain_scale = 0.35; break;
    case net::Terrain::kSuburban: terrain_scale = 0.9; break;
    case net::Terrain::kRural: terrain_scale = 1.0; break;
    case net::Terrain::kMountain: terrain_scale = 0.8; break;
    case net::Terrain::kWater: terrain_scale = 0.6; break;
    case net::Terrain::kFlat: terrain_scale = 0.7; break;
  }
  ts::Rng rng(seed_ ^ (0x9E3779B97F4A7C15ULL * element.id.value));
  return terrain_scale * rng.uniform(0.4, 1.0);
}

double FoliageFactor::quality_effect(const net::NetworkElement& element,
                                     std::int64_t bin) const {
  const double inten = intensity(element);
  if (inten == 0.0) return 0.0;
  return -peak_sigma_ * inten * leaf_fraction(day_of_year(bin));
}

DiurnalLoadFactor::DiurnalLoadFactor(double amplitude)
    : amplitude_(std::clamp(amplitude, 0.0, 0.95)) {}

double DiurnalLoadFactor::load_factor(const net::NetworkElement& element,
                                      std::int64_t bin) const {
  const int hour = hour_of_day(bin);
  const bool weekend = is_weekend(bin);
  const double h = static_cast<double>(hour);

  // Profile-specific shape in [-1, 1] around the daily mean.
  double shape = 0.0;
  switch (element.config.traffic) {
    case net::TrafficProfile::kBusiness:
      shape = weekend ? -0.7
                      : (hour >= 9 && hour < 17 ? 1.0
                         : hour >= 7 && hour < 20 ? 0.1
                                                  : -0.8);
      break;
    case net::TrafficProfile::kResidential:
      shape = (hour >= 18 && hour < 23) ? 1.0
              : (hour >= 7 && hour < 18) ? 0.0
                                         : -0.8;
      if (weekend && hour >= 10 && hour < 23) shape = std::max(shape, 0.5);
      break;
    case net::TrafficProfile::kHighway:
      shape = (!weekend && ((hour >= 7 && hour < 10) ||
                            (hour >= 16 && hour < 19)))
                  ? 1.0
                  : (hour >= 10 && hour < 16 ? 0.2 : -0.7);
      break;
    case net::TrafficProfile::kStadium:
      // Mostly idle; big bursts come from TrafficEventFactor.
      shape = (hour >= 11 && hour < 22) ? 0.1 : -0.5;
      break;
    case net::TrafficProfile::kRecreation:
      shape = weekend ? (hour >= 10 && hour < 20 ? 1.0 : -0.4)
                      : (hour >= 17 && hour < 21 ? 0.5 : -0.6);
      break;
  }
  // Smooth the blocky profile slightly with a daily harmonic so adjacent
  // hours are not perfectly flat.
  shape += 0.15 * std::sin(2.0 * std::numbers::pi * (h - 14.0) / 24.0);
  return std::max(0.05, 1.0 + amplitude_ * shape);
}

CarrierTrendFactor::CarrierTrendFactor(double sigma_per_year)
    : sigma_per_year_(sigma_per_year) {}

double CarrierTrendFactor::quality_effect(const net::NetworkElement&,
                                          std::int64_t bin) const {
  return sigma_per_year_ * static_cast<double>(bin) /
         static_cast<double>(kHoursPerYear);
}

}  // namespace litmus::sim
