#include "simkit/generator.h"

#include <algorithm>
#include <cmath>

#include "tsmath/random.h"

namespace litmus::sim {
namespace {

using litmus::ts::Rng;

// AR(1) with stationary standard deviation `sigma`, burned in so the state
// at the window start has forgotten the zero initial condition.
std::vector<double> ar1_path(Rng& rng, double rho, double sigma,
                             std::size_t n, int burn_in) {
  const double innov = sigma * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  double state = 0.0;
  for (int i = 0; i < burn_in; ++i) state = rho * state + innov * rng.normal();
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    state = rho * state + innov * rng.normal();
    out[i] = state;
  }
  return out;
}

}  // namespace

KpiGenerator::KpiGenerator(const net::Topology& topo, GeneratorConfig cfg)
    : topo_(&topo), cfg_(cfg) {}

void KpiGenerator::add_factor(FactorPtr factor) {
  factors_.push_back(std::move(factor));
}

const std::vector<double>& KpiGenerator::shared_component(
    std::uint64_t tag, std::int64_t start, std::size_t n) const {
  const auto key = std::make_tuple(tag, start, n);
  const auto it = shared_cache_.find(key);
  if (it != shared_cache_.end()) return it->second;
  // Seed stream by (seed, tag, start) so the same window is reproducible;
  // a window shift re-draws the shared path, which is fine — scenarios fix
  // their windows up front.
  Rng rng(cfg_.seed ^ (tag * 0xBF58476D1CE4E5B9ULL) ^
          (static_cast<std::uint64_t>(start + (1LL << 40)) *
           0x94D049BB133111EBULL));
  std::vector<double> slow =
      ar1_path(rng, cfg_.shared_slow_rho, 1.0, n, cfg_.burn_in);
  const std::vector<double> fast =
      ar1_path(rng, cfg_.shared_fast_rho, 1.0, n, cfg_.burn_in);
  for (std::size_t i = 0; i < n; ++i)
    slow[i] = cfg_.shared_slow_mix * slow[i] + cfg_.shared_fast_mix * fast[i];
  auto [ins, _] = shared_cache_.emplace(key, std::move(slow));
  return ins->second;
}

ts::TimeSeries KpiGenerator::load_series(net::ElementId element,
                                         std::int64_t start,
                                         std::size_t n) const {
  const net::NetworkElement& e = topo_->get(element);
  Rng rng(cfg_.seed ^ 0x1234567ULL ^
          (element.value * 0xD1B54A32D192ED03ULL) ^
          (static_cast<std::uint64_t>(start + (1LL << 40)) * 0x2545F4914F6CDD1DULL));
  ts::TimeSeries out(start, n, 60);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t bin = start + static_cast<std::int64_t>(i);
    double load = 1.0;
    for (const auto& f : factors_) load *= f->load_factor(e, bin);
    load *= std::max(0.0, 1.0 + 0.05 * rng.normal());
    out[i] = load;
  }
  return out;
}

ts::TimeSeries KpiGenerator::volume_series(net::ElementId element,
                                           std::int64_t start,
                                           std::size_t n) const {
  ts::TimeSeries load = load_series(element, start, n);
  for (std::size_t i = 0; i < n; ++i)
    if (!ts::is_missing(load[i])) load[i] *= cfg_.base_voice_attempts;
  return load;
}

ts::TimeSeries KpiGenerator::latent_series(net::ElementId element,
                                           std::int64_t start,
                                           std::size_t n) const {
  const net::NetworkElement& e = topo_->get(element);

  const std::uint64_t region_tag =
      0x100 + static_cast<std::uint64_t>(e.region);
  const std::uint64_t market_tag = 0x10000 + e.market;
  const std::vector<double>& region_path =
      shared_component(region_tag, start, n);
  const std::vector<double>& market_path =
      shared_component(market_tag, start, n);

  Rng rng(cfg_.seed ^ (element.value * 0x9E3779B97F4A7C15ULL) ^
          (static_cast<std::uint64_t>(start + (1LL << 40)) *
           0xBF58476D1CE4E5B9ULL));
  const std::vector<double> ar =
      ar1_path(rng, cfg_.element_rho, cfg_.element_ar_sigma, n, cfg_.burn_in);
  const ts::TimeSeries load = load_series(element, start, n);

  // Window-independent per-element loadings on the shared components.
  const double region_load = region_loading(element);
  Rng loading_rng(cfg_.seed ^ 0x10AD ^ 0x5EED ^
                  (element.value * 0xD1B54A32D192ED03ULL));
  const double market_loading =
      1.0 + cfg_.loading_spread * loading_rng.uniform(-1.0, 1.0);

  ts::TimeSeries out(start, n, 60);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t bin = start + static_cast<std::int64_t>(i);

    bool dark = false;
    double factor_quality = 0.0;
    for (const auto& f : factors_) {
      if (f->blackout(e, bin)) {
        dark = true;
        break;
      }
      factor_quality += f->quality_effect(e, bin);
    }
    if (dark) continue;  // stays missing

    double q = cfg_.region_factor_weight * region_load * region_path[i] +
               cfg_.market_factor_weight * market_loading * market_path[i] +
               factor_quality + ar[i] + cfg_.white_sigma * rng.normal();

    const double excess = load[i] - cfg_.congestion_threshold;
    if (excess > 0.0) q -= cfg_.congestion_coeff * excess;

    out[i] = q;
  }
  return out;
}

double KpiGenerator::region_loading(net::ElementId element) const {
  Rng rng(cfg_.seed ^ 0x10AD ^ (element.value * 0x9E3779B97F4A7C15ULL));
  return 1.0 + cfg_.loading_spread * rng.uniform(-1.0, 1.0);
}

double KpiGenerator::combined_loading(net::ElementId element) const {
  Rng rng(cfg_.seed ^ 0x10AD ^ 0x5EED ^
          (element.value * 0xD1B54A32D192ED03ULL));
  const double market_loading =
      1.0 + cfg_.loading_spread * rng.uniform(-1.0, 1.0);
  const double wr = cfg_.region_factor_weight;
  const double wm = cfg_.market_factor_weight;
  if (wr + wm <= 0.0) return 1.0;
  return (wr * region_loading(element) + wm * market_loading) / (wr + wm);
}

ts::TimeSeries KpiGenerator::latent_to_kpi(const ts::TimeSeries& latent,
                                           kpi::KpiId id) const {
  const kpi::KpiInfo& k = kpi::info(id);
  ts::TimeSeries out = latent;
  const double sign =
      k.polarity == kpi::Polarity::kHigherIsBetter ? 1.0 : -1.0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (ts::is_missing(out[i])) continue;
    if (k.is_ratio) {
      out[i] = k.typical_value + sign * k.typical_noise * out[i];
    } else {
      // Throughput: multiplicative around the operating point.
      out[i] = k.typical_value *
               (1.0 + sign * (k.typical_noise / k.typical_value) * out[i]);
      out[i] = std::max(0.0, out[i]);
    }
  }
  if (k.is_ratio) out.clamp(0.0, 1.0);
  return out;
}

ts::TimeSeries KpiGenerator::kpi_series(net::ElementId element, kpi::KpiId id,
                                        std::int64_t start,
                                        std::size_t n) const {
  return latent_to_kpi(latent_series(element, start, n), id);
}

std::vector<ts::TimeSeries> KpiGenerator::kpi_series(
    std::span<const net::ElementId> ids, kpi::KpiId id, std::int64_t start,
    std::size_t n) const {
  std::vector<ts::TimeSeries> out;
  out.reserve(ids.size());
  for (const auto e : ids) out.push_back(kpi_series(e, id, start, n));
  return out;
}

}  // namespace litmus::sim
