// Weather external factors (paper Section 2.5, "Weather changes"): rain,
// severe storms/tornadoes, hurricanes. Each event has a geographic footprint
// with distance decay and a temporal profile; severe events can also knock
// towers out entirely (outages, Fig 4 / Section 5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "cellnet/geo.h"
#include "simkit/factors.h"

namespace litmus::sim {

enum class WeatherKind : std::uint8_t {
  kRain,        ///< steady rainfall, mild broad impact
  kWind,        ///< strong winds (Fig 1)
  kSevereStorm, ///< storms / damaging hail / tornado (Fig 4)
  kHurricane,   ///< long multi-day event with outages (Sandy, Section 5.3)
};

const char* to_string(WeatherKind k) noexcept;

struct WeatherEvent {
  WeatherKind kind = WeatherKind::kRain;
  net::GeoPoint center;
  double radius_km = 150.0;      ///< footprint half-decay radius
  std::int64_t start_bin = 0;
  std::int64_t end_bin = 0;      ///< exclusive
  double peak_sigma = 1.5;       ///< quality loss at the center, at peak
  double outage_probability = 0; ///< per-tower chance of outage during event
};

/// Returns a typical configuration for a given kind (used by scenarios).
WeatherEvent make_event(WeatherKind kind, net::GeoPoint center,
                        std::int64_t start_bin, std::int64_t duration_bins);

class WeatherFactor final : public ExternalFactor {
 public:
  explicit WeatherFactor(std::vector<WeatherEvent> events,
                         std::uint64_t seed = 23);

  double quality_effect(const net::NetworkElement& element,
                        std::int64_t bin) const override;
  double load_factor(const net::NetworkElement& element,
                     std::int64_t bin) const override;
  std::string_view name() const noexcept override { return "weather"; }

  /// True when `element` is knocked out by an event at `bin`. The generator
  /// marks these bins missing (towers out of service report nothing).
  bool blackout(const net::NetworkElement& element,
                std::int64_t bin) const override;

  const std::vector<WeatherEvent>& events() const noexcept { return events_; }

 private:
  /// Spatial decay in [0,1] for an element against one event.
  static double footprint(const WeatherEvent& ev, const net::GeoPoint& p);
  /// Temporal envelope in [0,1] over the event window.
  static double envelope(const WeatherEvent& ev, std::int64_t bin);
  /// Deterministic outage decision for (event, element).
  bool outage_hit(const WeatherEvent& ev, std::size_t event_index,
                  const net::NetworkElement& element) const;

  std::vector<WeatherEvent> events_;
  std::uint64_t seed_;
};

}  // namespace litmus::sim
