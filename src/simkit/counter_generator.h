// Counter-level telemetry: the carrier pipeline derives KPIs from
// performance counters, not the other way round (paper Section 2.2). This
// generator maps the latent quality/load model to per-bin session outcomes
// — attempts follow the offered load, failure probabilities move against
// the latent quality — and rolls them into CounterSeries, so ratio KPIs
// carry genuine binomial sampling noise and quiet bins go missing exactly
// as production counters do.
//
// KpiGenerator remains the fast path for the evaluation sweeps; this class
// is the high-fidelity path used where counter semantics matter (Fig 5,
// CDR-level tests, aggregation work).
#pragma once

#include "kpi/cdr.h"
#include "simkit/generator.h"

namespace litmus::sim {

struct CounterModel {
  kpi::SessionRates baseline;  ///< rates at neutral quality and unit load
  /// Failure probabilities scale as p = p0 * exp(-sensitivity * q); +q
  /// (better service) means fewer blocks/drops.
  double quality_sensitivity = 0.55;
  double max_failure_probability = 0.5;
};

class CounterGenerator {
 public:
  explicit CounterGenerator(const KpiGenerator& base, CounterModel model = {});

  /// Per-bin counters over [start, start+n). Bins where the element is dark
  /// (outage) produce zero attempts — the KPI pipeline then reports the bin
  /// missing, matching the latent path's behaviour.
  kpi::CounterSeries counters(net::ElementId element, std::int64_t start,
                              std::size_t n) const;

  /// KPI series derived from the counters.
  ts::TimeSeries kpi_series(net::ElementId element, kpi::KpiId kpi,
                            std::int64_t start, std::size_t n) const;

  /// The per-bin session rates implied by latent quality `q` and load `l`
  /// (exposed for tests).
  kpi::SessionRates rates_for(double quality, double load) const;

 private:
  const KpiGenerator* base_;
  CounterModel model_;
};

}  // namespace litmus::sim
