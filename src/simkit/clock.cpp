#include "simkit/clock.h"

namespace litmus::sim {
namespace {

// Floor division/modulo for negative bins.
std::int64_t floor_div(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t floor_mod(std::int64_t a, std::int64_t b) noexcept {
  return a - floor_div(a, b) * b;
}

}  // namespace

std::int64_t day_of(std::int64_t hour_bin) noexcept {
  return floor_div(hour_bin, kHoursPerDay);
}

int hour_of_day(std::int64_t hour_bin) noexcept {
  return static_cast<int>(floor_mod(hour_bin, kHoursPerDay));
}

int day_of_week(std::int64_t hour_bin) noexcept {
  return static_cast<int>(floor_mod(day_of(hour_bin), kDaysPerWeek));
}

bool is_weekend(std::int64_t hour_bin) noexcept {
  const int dow = day_of_week(hour_bin);
  return dow >= 5;  // Saturday(5), Sunday(6); epoch is a Monday
}

int day_of_year(std::int64_t hour_bin) noexcept {
  return static_cast<int>(floor_mod(day_of(hour_bin), kDaysPerYear));
}

std::int64_t bin_at(std::int64_t year, int doy, int hour) noexcept {
  return (year * kDaysPerYear + doy) * kHoursPerDay + hour;
}

}  // namespace litmus::sim
