// Cross-thread profiling substrate: per-thread lock-free span rings, the
// thread-name registry behind Perfetto's named tracks, and the trace
// summarization used by `litmus_cli profile`.
//
// The recording path is built for the hot loop: ScopedSpan (obs/trace.h)
// closes millions of times per sweep, so completed spans land in a
// fixed-capacity ring owned by the recording thread — a single-producer
// structure whose writer never takes a lock and never allocates after the
// ring exists. Each slot is seqlock-stamped (odd while a write is in
// flight, even when stable) so an exporter can snapshot rings while
// workers are still recording: a torn slot is detected by its sequence
// number and skipped, never mis-read. When a ring wraps, the oldest spans
// are overwritten and counted as dropped — the timeline keeps its most
// recent window, like chrome://tracing's own ring-buffer mode.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace litmus::obs {

/// One completed span. start_ns is relative to the owning Tracer's epoch;
/// thread is obs::thread_index() of the recording thread, and parent links
/// to the span that was innermost on that thread (or installed across a
/// pool submit by SpanParentGuard) when this one opened.
struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 for root spans
  const char* name = "";     ///< static stage name, e.g. "fit"
  std::uint64_t start_ns = 0;  ///< relative to the Tracer's epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< obs::thread_index() of the recording thread
};

/// Fixed set of per-thread span rings, indexed by obs::thread_index().
/// append() is wait-free for the owning thread; collect() may run
/// concurrently and returns every stable slot, oldest first.
class SpanRingSet {
 public:
  /// Per-thread capacity: at ~48 bytes/span this is ~3 MiB per active
  /// thread when full, holding minutes of batch-sweep spans.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;
  /// Threads with thread_index() >= kMaxThreads drop spans (counted).
  static constexpr std::size_t kMaxThreads = 512;

  explicit SpanRingSet(std::size_t capacity_per_thread = kDefaultCapacity);
  ~SpanRingSet();
  SpanRingSet(const SpanRingSet&) = delete;
  SpanRingSet& operator=(const SpanRingSet&) = delete;

  /// Records one span into the calling thread's ring (lazily created on
  /// first use). Only the owning thread may append to its ring.
  void append(const SpanRecord& rec) noexcept;

  struct Drain {
    std::vector<SpanRecord> spans;  ///< time-sorted (start_ns, then id)
    std::uint64_t dropped = 0;      ///< overwritten by wrap or over-capacity
  };

  /// Snapshot of every ring. Non-consuming and safe to call while writers
  /// are appending; slots mid-write are skipped (they reappear stable on
  /// the next collect).
  Drain collect() const;

  /// Rewinds every ring and zeroes drop counts. Callers must guarantee no
  /// thread is inside append() (rings themselves are never freed, so a
  /// straggler write is harmless — it just lands in the new window).
  void clear();

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::atomic<std::uint32_t> seq{0};  ///< odd: write in flight
    SpanRecord rec{};
  };
  struct Ring {
    explicit Ring(std::size_t cap) : slots(cap) {}
    std::atomic<std::uint64_t> head{0};  ///< total spans ever appended
    std::vector<Slot> slots;
  };

  std::size_t capacity_;
  std::atomic<std::uint64_t> overflow_dropped_{0};
  std::array<std::atomic<Ring*>, kMaxThreads> rings_{};
};

/// Registers a human-readable name for the calling thread (by its
/// obs::thread_index()), surfaced as Chrome-trace thread_name metadata so
/// Perfetto shows "pool-worker-3" instead of a bare tid. Re-registering
/// replaces the previous name.
void set_thread_name(std::string name);

/// All (thread_index, name) registrations, ordered by thread index.
std::vector<std::pair<std::uint32_t, std::string>> thread_names();

/// One event parsed back out of a trace file — the reader-side analog of
/// SpanRecord, with owned name storage and microsecond units (the
/// trace_event wire format's native unit).
struct TraceEvent {
  std::string name;
  std::uint32_t thread = 0;
  double start_us = 0.0;
  double duration_us = 0.0;
  std::uint64_t id = 0;      ///< 0 when the producer did not record ids
  std::uint64_t parent = 0;  ///< 0 for root spans
};

/// Aggregated statistics for one stage (all spans sharing a name).
struct StageRow {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double p50_us = 0.0;  ///< exact (computed from the full duration list)
  double p99_us = 0.0;  ///< exact
  double max_us = 0.0;
  /// Stage total as a share of wall time. Sums across threads and nesting
  /// levels, so a parallel or enclosing stage can legitimately exceed 100.
  double pct_wall = 0.0;
};

struct ProfileReport {
  std::uint64_t span_count = 0;
  double wall_us = 0.0;  ///< max end - min start over all spans
  std::vector<StageRow> stages;    ///< sorted by total_us, descending
  std::vector<TraceEvent> slowest;  ///< top-N spans by duration
};

/// Builds the per-stage table `litmus_cli profile` prints: count, total,
/// exact p50/p99, % of wall, and the top_n slowest individual spans.
ProfileReport summarize_trace(const std::vector<TraceEvent>& events,
                              std::size_t top_n = 10);

/// Renders the report as an aligned text table.
std::string format_profile_report(const ProfileReport& report);

}  // namespace litmus::obs
