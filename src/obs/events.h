// Structured JSONL event log: the durable, append-only record of what a
// run did, one JSON object per line so `tail -f` and line-oriented tools
// work on a live run.
//
//   {"v":1,"seq":17,"t_us":84231,"span":9,"type":"kpi_verdict",...}
//
// Schema, versioned "v":1:
//   * v      — schema version of the line
//   * seq    — per-log monotonic sequence number, gapless in file order
//   * t_us   — microseconds since the log was opened (steady clock)
//   * span   — obs::current_span_id() at emission (omitted when 0), so an
//              event correlates with the --trace-json timeline
//   * type   — run_start | heartbeat | element_assessed | kpi_verdict |
//              iteration_retry | fallback_qr | run_end
//   plus per-type fields appended by the emitter (run_start embeds the
//   RunManifest; run_end carries wall_s and status).
//
// Concurrency: a single mutex orders seq assignment and buffer appends, so
// lines are never torn and seq is monotonic in file order even when worker
// threads emit concurrently. Writes are batched in a memory buffer and
// flushed when it grows past a threshold — and eagerly on run_start,
// heartbeat and run_end so a watcher always sees signs of life.
//
// Emission sites guard with `if (auto* ev = obs::events())`, one relaxed
// atomic load when no --events-jsonl was requested; events are emitted at
// element/chunk granularity, never per sampling iteration.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace litmus::obs {

class JsonWriter;

enum class EventType : std::uint8_t {
  kRunStart,
  kHeartbeat,
  kElementAssessed,
  kKpiVerdict,
  kIterationRetry,
  kFallbackQr,
  kRunEnd,
};

const char* to_string(EventType t) noexcept;

class EventLog {
 public:
  static constexpr int kSchemaVersion = 1;

  /// Logs into a borrowed stream (tests, in-memory use).
  explicit EventLog(std::ostream& out);

  /// Opens `path` via open_output_file (creates parent directories,
  /// rotates an existing file with a warning). Throws when unwritable.
  static std::unique_ptr<EventLog> open(const std::string& path);

  ~EventLog();  ///< flushes whatever is buffered

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event line; `extra` (may be empty) adds the per-type
  /// fields to the open JSON object. Thread-safe.
  using FieldFn = std::function<void(JsonWriter&)>;
  void emit(EventType type, const FieldFn& extra = {});

  /// Heartbeat helper for long fan-outs: emits a `heartbeat` event
  /// carrying {stage, done, total} when `done` is a multiple of `every`
  /// or the work just finished (done == total). Callers report their own
  /// completion counter; emission granularity stays O(total / every).
  /// `extra` (may be empty) appends caller fields — e.g. the pool's
  /// queue depth — and is only invoked on lines that actually emit.
  void progress(std::string_view stage, std::uint64_t done,
                std::uint64_t total, std::uint64_t every = 16,
                const FieldFn& extra = {});

  void flush();
  std::uint64_t events_written() const noexcept;

 private:
  void flush_locked();

  static constexpr std::size_t kFlushBytes = 16 * 1024;

  std::unique_ptr<std::ofstream> owned_;  ///< null when stream is borrowed
  std::ostream* out_;
  std::uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::string buffer_;
  std::uint64_t seq_ = 0;
};

/// Process-global event log the pipeline instrumentation emits into;
/// nullptr (the default) disables emission. The pointer is borrowed — the
/// owner (e.g. litmus_cli's ObsSession) must clear it before destroying
/// the log.
EventLog* events() noexcept;
void set_events(EventLog* log) noexcept;

}  // namespace litmus::obs
