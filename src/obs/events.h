// Structured JSONL event log: the durable, append-only record of what a
// run did, one JSON object per line so `tail -f` and line-oriented tools
// work on a live run.
//
//   {"v":1,"seq":17,"t_us":84231,"span":9,"type":"kpi_verdict",...}
//
// Schema, versioned "v":1:
//   * v      — schema version of the line
//   * seq    — per-log monotonic sequence number, gapless in file order
//   * t_us   — microseconds since the log was opened (steady clock)
//   * span   — obs::current_span_id() at emission (omitted when 0), so an
//              event correlates with the --trace-json timeline
//   * type   — run_start | heartbeat | element_assessed | kpi_verdict |
//              iteration_retry | fallback_qr | adaptive_stop | warning |
//              run_end
//   plus per-type fields appended by the emitter (run_start embeds the
//   RunManifest; run_end carries wall_s and status).
//
// Concurrency: a single mutex orders seq assignment and buffer appends, so
// lines are never torn and seq is monotonic in file order even when worker
// threads emit concurrently. Writes are batched in a memory buffer and
// flushed when it grows past a threshold — and eagerly on run_start,
// heartbeat and run_end so a watcher always sees signs of life.
//
// Emission sites guard with `if (auto* ev = obs::events())`, one relaxed
// atomic load when no --events-jsonl was requested; events are emitted at
// element/chunk granularity, never per sampling iteration.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace litmus::obs {

class JsonWriter;

enum class EventType : std::uint8_t {
  kRunStart,
  kHeartbeat,
  kElementAssessed,
  kKpiVerdict,
  kIterationRetry,
  kFallbackQr,
  kAdaptiveStop,
  kWarning,
  kRunEnd,
};

const char* to_string(EventType t) noexcept;

/// A page of recent events from the in-memory ring (the /events?since=SEQ
/// endpoint's payload). `lines` are complete JSON objects (no trailing
/// newline), ascending by seq starting at `first_seq`; `next_seq` is the
/// cursor to pass as `since` on the next call; `dropped` counts events
/// that have already fallen out of the ring since the log opened.
struct EventTail {
  std::uint64_t first_seq = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t dropped = 0;
  std::vector<std::string> lines;
};

/// The last progress report seen by EventLog::progress (throttled lines
/// included), for the /status payload. total == 0 means "none yet".
struct ProgressSnapshot {
  std::string stage;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
};

class EventLog {
 public:
  static constexpr int kSchemaVersion = 1;
  /// Events retained in memory for tail(); older ones count as dropped.
  static constexpr std::size_t kRingCapacity = 512;

  /// Ring-only log: events are retained in memory for tail() but never
  /// written anywhere. --serve without --events-jsonl uses this so the
  /// /events endpoint works without touching disk.
  EventLog();

  /// Logs into a borrowed stream (tests, in-memory use).
  explicit EventLog(std::ostream& out);

  /// Opens `path` via open_output_file (creates parent directories,
  /// rotates an existing file with a warning). Throws when unwritable.
  static std::unique_ptr<EventLog> open(const std::string& path);

  ~EventLog();  ///< flushes whatever is buffered

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one event line; `extra` (may be empty) adds the per-type
  /// fields to the open JSON object. Thread-safe.
  using FieldFn = std::function<void(JsonWriter&)>;
  void emit(EventType type, const FieldFn& extra = {});

  /// Heartbeat helper for long fan-outs: emits a `heartbeat` event
  /// carrying {stage, done, total} when `done` is a multiple of `every`
  /// or the work just finished (done == total). Callers report their own
  /// completion counter; emission granularity stays O(total / every).
  /// `extra` (may be empty) appends caller fields — e.g. the pool's
  /// queue depth — and is only invoked on lines that actually emit.
  void progress(std::string_view stage, std::uint64_t done,
                std::uint64_t total, std::uint64_t every = 16,
                const FieldFn& extra = {});

  void flush();
  std::uint64_t events_written() const noexcept;

  /// Events with seq >= since, oldest first, at most max_lines. Thread-
  /// safe; non-consuming (the same page can be read twice).
  EventTail tail(std::uint64_t since = 0, std::size_t max_lines = 256) const;

  /// Events no longer retained by the ring.
  std::uint64_t ring_dropped() const noexcept;

  ProgressSnapshot last_progress() const;

 private:
  void flush_locked();

  static constexpr std::size_t kFlushBytes = 16 * 1024;

  std::unique_ptr<std::ofstream> owned_;  ///< null when stream is borrowed
  std::ostream* out_;  ///< null for a ring-only log
  std::uint64_t epoch_ns_;
  mutable std::mutex mu_;
  std::string buffer_;
  std::uint64_t seq_ = 0;
  std::deque<std::pair<std::uint64_t, std::string>> ring_;  ///< (seq, line)
  std::uint64_t ring_dropped_ = 0;
  ProgressSnapshot progress_;
};

/// Process-global event log the pipeline instrumentation emits into;
/// nullptr (the default) disables emission. The pointer is borrowed — the
/// owner (e.g. litmus_cli's ObsSession) must clear it before destroying
/// the log.
EventLog* events() noexcept;
void set_events(EventLog* log) noexcept;

/// Liveness watermark for /readyz: the steady-clock time of the most
/// recent sign of life. Touched by every run_start/heartbeat emission and
/// every EventLog::progress call (throttled lines included), and directly
/// by long-running loops that want liveness without an event line.
/// 0 means "never".
void touch_heartbeat() noexcept;
std::uint64_t last_heartbeat_ns() noexcept;

/// Resident set size of the calling process in bytes, from
/// /proc/self/statm; 0 where unsupported. Cheap enough for heartbeats.
std::uint64_t rss_bytes() noexcept;

}  // namespace litmus::obs
