// Prometheus text-exposition translation of the obs metrics registry
// (exposition format 0.0.4, the format every Prometheus server scrapes).
//
// The mapping from the registry's dotted names:
//   * every metric gains the `litmus_` namespace prefix;
//   * characters outside [a-zA-Z0-9_] become '_'
//     (`panel_cache.hits` -> `litmus_panel_cache_hits`);
//   * counters additionally gain the conventional `_total` suffix
//     (`litmus_panel_cache_hits_total`);
//   * histograms render as the cumulative `_bucket{le="..."}` series
//     (from HistogramSnapshot::buckets) plus `_sum` and `_count`, with
//     the mandatory `le="+Inf"` bucket equal to `_count`;
//   * when two registry names sanitize to the same exposition name, the
//     later one (in counter -> gauge -> histogram, name-sorted order)
//     gains a `_2`/`_3`/... suffix, deterministically, so the exposition
//     never emits a duplicate metric family.
// Every family carries `# HELP` (the original dotted name) and `# TYPE`.
//
// The translation is a pure function of a MetricsSnapshot — collection
// stays non-consuming and the scrape path never blocks the hot path
// beyond the snapshot's own short stripe locks.
#pragma once

#include <ostream>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace litmus::obs {

/// `litmus_` + `name` with every character outside [a-zA-Z0-9_] replaced
/// by '_'. Does not apply the counter `_total` suffix.
std::string prom_sanitize(std::string_view name);

/// Renders the snapshot in Prometheus text exposition format 0.0.4.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// write_prometheus into a string (the /metrics handler's body).
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// The Content-Type a 0.0.4 exposition must be served with.
inline constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace litmus::obs
