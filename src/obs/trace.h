// RAII trace spans forming a hierarchical, cross-thread trace tree.
//
// A ScopedSpan measures the wall time of a scope. On destruction it
//   * appends a SpanRecord (id, parent id, name, start, duration, thread)
//     to the Tracer when the Tracer is collecting, and
//   * records the duration into the `stage.<name>` histogram of the global
//     Registry when metrics are enabled (obs::enabled()),
// so every instrumented stage yields both an event on the trace timeline
// and a latency distribution. Completed spans land in per-thread lock-free
// ring buffers (obs/profile.h): the close path is wait-free, and a full
// ring drops its oldest spans (counted via Tracer::dropped()) instead of
// blocking the pipeline.
//
// Parentage is tracked per thread: spans nest within the same thread, and
// a span opened on a fresh thread is a root — unless the submitting span's
// id is carried across with SpanParentGuard, which is what the worker pool
// does so a worker's spans nest under the span that submitted the task.
//
// When neither metrics nor tracing is active the constructor is a couple
// of relaxed loads and the destructor a branch; with
// -DLITMUS_OBS_ENABLED=0 the class collapses to an empty no-op.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"

namespace litmus::obs {

/// Innermost span currently open on the calling thread, 0 when none (or
/// when tracing is off — span ids are only assigned while collecting).
/// Event records (obs/events.h) carry this id so a JSONL event can be
/// located on the --trace-json timeline.
std::uint64_t current_span_id() noexcept;

enum class TraceMode : std::uint8_t {
  kFull,     ///< record every span
  kSampled,  ///< record 1 in sample_every spans, decided per thread
};

struct TraceConfig {
  TraceMode mode = TraceMode::kFull;
  /// kSampled: keep one span in this many, per recording thread. Children
  /// of a skipped span chain to their grandparent — the timeline thins but
  /// never dangles.
  std::uint32_t sample_every = 16;
};

/// Collects completed spans into per-thread rings. start() rewinds the
/// rings and anchors the epoch; collection is off by default. start() and
/// stop() are session boundaries: callers must not race them against
/// in-flight spans (a straggler span is recorded harmlessly but may land
/// in the next session's window).
class Tracer {
 public:
  explicit Tracer(
      std::size_t ring_capacity = SpanRingSet::kDefaultCapacity);

  void start() { start(TraceConfig{}); }
  void start(const TraceConfig& config);
  void stop();
  bool collecting() const noexcept {
    return collecting_.load(std::memory_order_relaxed);
  }

  /// Sampling gate, one decision per span open; always true in kFull mode.
  bool sample() noexcept;

  /// Time-sorted snapshot of every recorded span. Safe to call while
  /// collection is live (mid-write ring slots are skipped).
  std::vector<SpanRecord> spans() const;

  /// Spans lost to ring wrap-around or thread-count overflow since the
  /// last start().
  std::uint64_t dropped() const;

  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void add(const SpanRecord& span) { rings_.append(span); }

  static Tracer& global();

 private:
  std::atomic<bool> collecting_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t epoch_ns_ = 0;
  TraceConfig config_;
  SpanRingSet rings_;
};

/// Installs `span_id` as the calling thread's current span for the guard's
/// lifetime, restoring the previous chain on destruction. The worker pool
/// wraps each task in one of these with the submitter's span id, which is
/// what makes worker-side spans children of the span that enqueued the
/// work instead of disconnected roots.
class SpanParentGuard {
 public:
  explicit SpanParentGuard(std::uint64_t span_id) noexcept;
  ~SpanParentGuard();

  SpanParentGuard(const SpanParentGuard&) = delete;
  SpanParentGuard& operator=(const SpanParentGuard&) = delete;

 private:
  std::uint64_t saved_ = 0;
};

#if LITMUS_OBS_ENABLED

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = "";
  Tracer* tracer_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool metrics_ = false;
  bool tracing_ = false;
};

#else

class ScopedSpan {
 public:
  explicit constexpr ScopedSpan(const char*) noexcept {}
  constexpr ScopedSpan(const char*, Tracer&) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // LITMUS_OBS_ENABLED

}  // namespace litmus::obs
