// RAII trace spans forming a hierarchical trace tree.
//
// A ScopedSpan measures the wall time of a scope. On destruction it
//   * appends a SpanRecord (id, parent id, name, start, duration, thread)
//     to the Tracer when the Tracer is collecting, and
//   * records the duration into the `stage.<name>` histogram of the global
//     Registry when metrics are enabled (obs::enabled()),
// so every instrumented stage yields both an event on the trace timeline
// and a latency distribution. Parentage is tracked per thread: spans nest
// within the same thread; a span opened on a fresh thread is a root.
//
// When neither metrics nor tracing is active the constructor is a couple
// of relaxed loads and the destructor a branch; with
// -DLITMUS_OBS_ENABLED=0 the class collapses to an empty no-op.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace litmus::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 for root spans
  const char* name = "";     ///< static stage name, e.g. "fit"
  std::uint64_t start_ns = 0;  ///< relative to the Tracer's epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  ///< obs::thread_index() of the recording thread
};

/// Innermost span currently open on the calling thread, 0 when none (or
/// when tracing is off — span ids are only assigned while collecting).
/// Event records (obs/events.h) carry this id so a JSONL event can be
/// located on the --trace-json timeline.
std::uint64_t current_span_id() noexcept;

/// Collects completed spans. start() clears previous spans and anchors the
/// epoch; collection is off by default.
class Tracer {
 public:
  void start();
  void stop();
  bool collecting() const noexcept {
    return collecting_.load(std::memory_order_relaxed);
  }

  std::vector<SpanRecord> spans() const;
  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }

  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void add(const SpanRecord& span);

  static Tracer& global();

 private:
  std::atomic<bool> collecting_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t epoch_ns_ = 0;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

#if LITMUS_OBS_ENABLED

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Tracer& tracer = Tracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = "";
  Tracer* tracer_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool metrics_ = false;
  bool tracing_ = false;
};

#else

class ScopedSpan {
 public:
  explicit constexpr ScopedSpan(const char*) noexcept {}
  constexpr ScopedSpan(const char*, Tracer&) noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // LITMUS_OBS_ENABLED

}  // namespace litmus::obs
