// Live observability plane: a dependency-free, read-only HTTP/1.1 server
// over POSIX sockets that makes a long-running litmus process scrapeable
// *while the run is in flight* (DESIGN.md §14).
//
// Endpoints (GET only; everything else is 405, unknown paths 404):
//   /metrics           Prometheus text exposition of obs::Registry
//                      (obs/promexport.h), translated live per scrape.
//   /healthz           liveness: 200 "ok" while the server thread runs.
//   /readyz            readiness: 200 when the heartbeat watermark
//                      (obs/events.h) is younger than the configured
//                      staleness threshold, 503 otherwise — wire this to
//                      a load balancer / Kubernetes readiness probe.
//   /status            one JSON snapshot: uptime, rss, readiness, run
//                      manifest, event-log counters, last progress, plus
//                      whatever the host registered via set_status_fn
//                      (pool stats, monitor state machines, ...).
//   /events?since=SEQ&max=N
//                      a bounded page of the in-memory event ring, JSON:
//                      {"next_seq":..,"dropped":..,"events":[...]}.
//
// Design rules:
//   * Read-only and localhost-bound by default; the server never mutates
//     run state, so exposing it wider is a deployment decision, not a
//     code change.
//   * One dedicated named thread ("obs-http") runs a blocking accept
//     loop (poll + accept, 100 ms stop-check cadence) and serves
//     requests inline — scrapes are cheap and rare relative to the
//     assessment hot path. Workers are never blocked: the scrape reads
//     atomic counters and takes only the registry/stripe locks that
//     Registry::snapshot() already takes, and the event ring's mutex for
//     a bounded copy.
//   * Fully absent when not started: constructing the server performs no
//     syscalls and spawns no threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

namespace litmus::obs {

class JsonWriter;
struct RunManifest;

struct ServeOptions {
  std::string host = "127.0.0.1";  ///< bind address (dotted IPv4)
  std::uint16_t port = 0;          ///< 0: kernel-assigned ephemeral port
  /// /readyz turns 503 when the heartbeat watermark is older than this.
  std::uint64_t ready_stale_after_ms = 30000;
};

/// Parses a --serve / LITMUS_SERVE spec: "PORT" or "ADDR:PORT".
/// Returns nullopt on malformed input.
std::optional<std::pair<std::string, std::uint16_t>> parse_serve_addr(
    std::string_view spec);

class HttpServer {
 public:
  /// Appends host-specific members to the /status object (e.g. "pool",
  /// "monitors"). Called on the server thread; must be thread-safe
  /// against the host's own updates.
  using StatusFn = std::function<void(JsonWriter&)>;

  HttpServer() = default;
  ~HttpServer();  ///< stop()s if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Borrowed pointer embedded in /status; the manifest (and the status
  /// fn's captures) must outlive stop(). Set before start().
  void set_manifest(const RunManifest* manifest) { manifest_ = manifest; }
  void set_status_fn(StatusFn fn) { status_fn_ = std::move(fn); }

  /// Binds, listens, and spawns the serving thread. Returns the bound
  /// "host:port" (the actual port when options.port was 0). Throws
  /// std::runtime_error on bind/listen failure or if already running.
  std::string start(const ServeOptions& options);

  /// Graceful shutdown: in-flight request finishes, thread joins,
  /// listening socket closes. Idempotent.
  void stop();

  bool running() const noexcept { return listen_fd_ >= 0; }
  const std::string& address() const noexcept { return address_; }

 private:
  void run_loop();
  void handle(int fd);
  std::string status_json() const;

  int listen_fd_ = -1;
  std::string address_;
  ServeOptions options_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  const RunManifest* manifest_ = nullptr;
  StatusFn status_fn_;
  std::uint64_t started_ns_ = 0;
};

}  // namespace litmus::obs
