// Run provenance: a RunManifest captures everything needed to answer
// "what exactly produced this output?" — binary version and build flags,
// the resolved execution environment (thread count, RNG seed and substream
// scheme), the fully resolved configuration, and a streaming 64-bit
// content fingerprint of every input file. Entry points build one at
// startup, write it as run_manifest.json next to the event stream, and
// embed it in every JSON artifact (metrics, trace, bench output) so an
// artifact is auditable on its own.
//
// diff-runs (obs/rundiff.h) compares two manifests field by field; the
// wall-clock timestamp and thread count are recorded but treated as
// informational there (results are bit-identical at any thread count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <istream>
#include <string>
#include <utility>
#include <vector>

namespace litmus::obs {

class JsonWriter;

/// Library semantic version, single-sourced for the CLI and the benches.
inline constexpr const char* kLitmusVersion = "0.9.0";

/// Identifier of the RNG substream scheme (DESIGN.md §8): per-iteration
/// counter-based forks, Rng(seed).fork(iteration). Recorded so a future
/// scheme change is visible as provenance drift, not silent bias.
inline constexpr const char* kRngScheme = "counter-fork-v1";

struct InputFingerprint {
  std::string path;
  std::uint64_t bytes = 0;
  std::uint64_t hash = 0;  ///< FNV-1a 64 over the raw bytes
  bool ok = false;         ///< false when the file could not be read
};

struct RunManifest {
  int schema = 1;
  std::string tool;     ///< e.g. "litmus_cli assess", "bench_perf"
  std::string version = kLitmusVersion;
  std::string build_flags;  ///< build_flags_string() unless overridden
  std::size_t threads = 0;  ///< resolved worker count
  std::uint64_t seed = 0;   ///< sampling seed of the run
  std::string rng_scheme = kRngScheme;
  std::string started_at_utc;  ///< informational; ignored by diff-runs
  /// SIMD dispatch provenance (tsmath/simd/dispatch.h), set by entry
  /// points — obs cannot depend on tsmath. `simd_detected` is the best
  /// tier the host supports, `simd_dispatch` the tier actually run
  /// (after LITMUS_SIMD / --simd overrides). Both are informational to
  /// diff-runs: the default kernels are bit-identical across tiers.
  /// `fast_math` is GATING: reassociated kernels may change results.
  std::string simd_detected;
  std::string simd_dispatch;
  bool fast_math = false;
  /// Fully resolved configuration as key/value pairs, in insertion order
  /// (flags as given plus defaults the run actually used).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<InputFingerprint> inputs;

  void add_config(std::string key, std::string value);
  /// Fingerprints the file now (streaming; never loads it whole). A
  /// missing/unreadable file records ok = false rather than throwing, so
  /// the manifest always reflects what the run attempted to read.
  void add_input(const std::string& path);
  /// Records an already-computed fingerprint (e.g. from the ingest layer,
  /// which hashes the mapped file anyway) instead of re-reading the file.
  void add_input(std::string path, std::uint64_t bytes, std::uint64_t hash);

  /// Emits the manifest as one JSON object (caller owns the surrounding
  /// document position — used both standalone and embedded).
  void write(JsonWriter& w) const;
  std::string to_json() const;

  /// Writes "<to_json()>\n" via open_output_file (mkdir + rotate).
  void write_file(const std::string& path) const;
};

/// Streaming FNV-1a 64 of everything readable from `in`; byte count is
/// returned through `bytes` when non-null.
std::uint64_t fnv1a64(std::istream& in, std::uint64_t* bytes = nullptr);

/// FNV-1a 64 of an in-memory buffer. `seed` chains calls: pass a previous
/// result to continue hashing, so buffered and streamed hashes agree.
std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed = 14695981039346656037ull) noexcept;

InputFingerprint fingerprint_file(const std::string& path);

/// Compile-time switches that can change results or overhead, e.g.
/// "obs=on,assert=off". Kept short and stable so manifests diff cleanly.
std::string build_flags_string();

/// "YYYY-MM-DDTHH:MM:SSZ" for the current wall-clock time.
std::string utc_timestamp_now();

/// Opens `path` for writing. Creates missing parent directories, and when
/// the file already exists rotates it aside with a warning on stderr
/// instead of silently overwriting: to "<path>.old" first, then
/// "<path>.old.1", "<path>.old.2", ... so repeated rotations never clobber
/// an earlier rotation. Throws std::runtime_error when the path stays
/// unwritable.
std::ofstream open_output_file(const std::string& path);

}  // namespace litmus::obs
