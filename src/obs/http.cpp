#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/promexport.h"

namespace litmus::obs {
namespace {

struct Request {
  std::string method;
  std::string path;
  std::string query;  ///< without the '?'
};

/// Reads the request head (up to the blank line) with a byte cap; the
/// server only needs the request line, so the body (GETs have none) is
/// never read. Returns false on timeout/overflow/close.
bool read_request(int fd, Request& req) {
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos) {
    if (head.size() > 8192) return false;  // absurd header size: reject
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;  // closed, error, or SO_RCVTIMEO expiry
    head.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = head.find("\r\n");
  std::istringstream line(head.substr(0, line_end));
  std::string target, version;
  if (!(line >> req.method >> target >> version)) return false;
  const std::size_t q = target.find('?');
  req.path = target.substr(0, q);
  req.query = q == std::string::npos ? "" : target.substr(q + 1);
  return true;
}

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

void respond(int fd, int code, const char* reason,
             const std::string& content_type, const std::string& body) {
  std::ostringstream head;
  head << "HTTP/1.1 " << code << " " << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Cache-Control: no-store\r\n"
       << "Connection: close\r\n\r\n";
  send_all(fd, head.str());
  send_all(fd, body);
}

std::uint64_t query_u64(const std::string& query, std::string_view key,
                        std::uint64_t fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair(query.data() + pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string_view v = pair.substr(eq + 1);
      std::uint64_t out = 0;
      const auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(),
                                           out);
      if (ec == std::errc() && p == v.data() + v.size()) return out;
      return fallback;
    }
    pos = amp + 1;
  }
  return fallback;
}

/// Heartbeat age in milliseconds; nullopt when no heartbeat ever fired.
std::optional<std::uint64_t> heartbeat_age_ms() {
  const std::uint64_t hb = last_heartbeat_ns();
  if (hb == 0) return std::nullopt;
  const std::uint64_t now = now_ns();
  return now > hb ? (now - hb) / 1000000 : 0;
}

}  // namespace

std::optional<std::pair<std::string, std::uint16_t>> parse_serve_addr(
    std::string_view spec) {
  std::string host = "127.0.0.1";
  std::string_view port_part = spec;
  if (const std::size_t colon = spec.rfind(':');
      colon != std::string_view::npos) {
    if (colon == 0 || colon + 1 == spec.size()) return std::nullopt;
    host.assign(spec.substr(0, colon));
    port_part = spec.substr(colon + 1);
  }
  unsigned port = 0;
  const auto [p, ec] = std::from_chars(
      port_part.data(), port_part.data() + port_part.size(), port);
  if (ec != std::errc() || p != port_part.data() + port_part.size() ||
      port > 65535)
    return std::nullopt;
  return std::make_pair(host, static_cast<std::uint16_t>(port));
}

HttpServer::~HttpServer() { stop(); }

std::string HttpServer::start(const ServeOptions& options) {
  if (running()) throw std::runtime_error("HttpServer already running");
  options_ = options;
  stop_.store(false, std::memory_order_relaxed);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("serve: bad bind address: " + options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot bind " + options.host + ":" +
                             std::to_string(options.port) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  address_ =
      options.host + ":" + std::to_string(ntohs(addr.sin_port));
  listen_fd_ = fd;
  started_ns_ = now_ns();
  thread_ = std::thread([this] { run_loop(); });
  return address_;
}

void HttpServer::stop() {
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::run_loop() {
  set_thread_name("obs-http");
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc <= 0 || !(pfd.revents & POLLIN)) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    timeval tv{2, 0};  // a stuck client must not wedge the plane
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    handle(conn);
    ::close(conn);
  }
}

void HttpServer::handle(int fd) {
  Request req;
  if (!read_request(fd, req)) return;

  Registry& reg = Registry::global();
  // The request counters land in the same registry the scrape renders;
  // counting *before* rendering makes the very first scrape self-visible
  // (check_prom.py --require litmus_serve_requests_total holds from
  // request one).
  const bool count = enabled();
  if (count) reg.counter("serve.requests").add();

  if (req.method != "GET") {
    respond(fd, 405, "Method Not Allowed", "text/plain; charset=utf-8",
            "read-only observability plane: GET only\n");
    return;
  }

  if (req.path == "/metrics") {
    if (count) reg.counter("serve.requests.metrics").add();
    const std::uint64_t t0 = now_ns();
    const std::string body = prometheus_text(reg.snapshot());
    if (count)
      reg.histogram("serve.scrape_us")
          .record(static_cast<double>(now_ns() - t0) / 1000.0);
    respond(fd, 200, "OK", kPromContentType, body);
  } else if (req.path == "/healthz") {
    if (count) reg.counter("serve.requests.healthz").add();
    respond(fd, 200, "OK", "text/plain; charset=utf-8", "ok\n");
  } else if (req.path == "/readyz") {
    if (count) reg.counter("serve.requests.readyz").add();
    const auto age = heartbeat_age_ms();
    const bool ready = age && *age <= options_.ready_stale_after_ms;
    if (ready) {
      respond(fd, 200, "OK", "text/plain; charset=utf-8", "ready\n");
    } else {
      std::string body =
          age ? "stale: last heartbeat " + std::to_string(*age) +
                    " ms ago (threshold " +
                    std::to_string(options_.ready_stale_after_ms) + " ms)\n"
              : "stale: no heartbeat yet\n";
      respond(fd, 503, "Service Unavailable", "text/plain; charset=utf-8",
              body);
    }
  } else if (req.path == "/status") {
    if (count) reg.counter("serve.requests.status").add();
    respond(fd, 200, "OK", "application/json", status_json());
  } else if (req.path == "/events") {
    if (count) reg.counter("serve.requests.events").add();
    EventLog* log = events();
    std::ostringstream body;
    if (!log) {
      body << "{\"error\":\"no event log attached to this run\"}\n";
    } else {
      const std::uint64_t since = query_u64(req.query, "since", 0);
      const std::uint64_t max =
          std::min<std::uint64_t>(query_u64(req.query, "max", 256), 1024);
      const EventTail tail =
          log->tail(since, static_cast<std::size_t>(max));
      body << "{\"first_seq\":" << tail.first_seq
           << ",\"next_seq\":" << tail.next_seq
           << ",\"dropped\":" << tail.dropped << ",\"events\":[";
      for (std::size_t i = 0; i < tail.lines.size(); ++i) {
        if (i > 0) body << ",";
        body << tail.lines[i];  // each line is a complete JSON object
      }
      body << "]}\n";
    }
    respond(fd, 200, "OK", "application/json", body.str());
  } else {
    if (count) reg.counter("serve.requests.not_found").add();
    respond(fd, 404, "Not Found", "text/plain; charset=utf-8",
            "unknown path; try /metrics /healthz /readyz /status "
            "/events\n");
  }
}

std::string HttpServer::status_json() const {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.member("version", kLitmusVersion);
  w.member("addr", address_);
  w.member("uptime_ms", (now_ns() - started_ns_) / 1000000);
  w.member("rss_bytes", rss_bytes());

  const auto age = heartbeat_age_ms();
  w.member("ready", age && *age <= options_.ready_stale_after_ms);
  if (age)
    w.member("heartbeat_age_ms", *age);
  else
    w.key("heartbeat_age_ms").null();
  w.member("ready_stale_after_ms", options_.ready_stale_after_ms);

  if (EventLog* log = events()) {
    const ProgressSnapshot progress = log->last_progress();
    w.key("events").begin_object();
    w.member("written", log->events_written());
    w.member("dropped", log->ring_dropped());
    w.end_object();
    if (progress.total > 0) {
      w.key("progress").begin_object();
      w.member("stage", progress.stage);
      w.member("done", progress.done);
      w.member("total", progress.total);
      w.end_object();
    }
  }

  if (status_fn_) status_fn_(w);

  if (manifest_) {
    w.key("manifest");
    manifest_->write(w);
  }
  w.end_object();
  out << "\n";
  return out.str();
}

}  // namespace litmus::obs
