#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/json.h"
#include "obs/metrics.h"  // LITMUS_OBS_ENABLED default

namespace litmus::obs {
namespace {

std::string hex64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t len,
                      std::uint64_t seed) noexcept {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

std::uint64_t fnv1a64(std::istream& in, std::uint64_t* bytes) {
  constexpr std::uint64_t kOffset = 14695981039346656037ull;
  std::uint64_t hash = kOffset;
  std::uint64_t total = 0;
  char chunk[65536];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    const std::streamsize got = in.gcount();
    hash = fnv1a64(chunk, static_cast<std::size_t>(got), hash);
    total += static_cast<std::uint64_t>(got);
    if (!in) break;
  }
  if (bytes) *bytes = total;
  return hash;
}

InputFingerprint fingerprint_file(const std::string& path) {
  InputFingerprint fp;
  fp.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) return fp;
  fp.hash = fnv1a64(in, &fp.bytes);
  fp.ok = true;
  return fp;
}

std::string build_flags_string() {
  std::string flags;
  flags += "obs=";
#if LITMUS_OBS_ENABLED
  flags += "on";
#else
  flags += "off";
#endif
  flags += ",assert=";
#ifdef NDEBUG
  flags += "off";
#else
  flags += "on";
#endif
  // Debug (-O0) numbers are not comparable with optimized ones;
  // check_bench_regression.py refuses to trust a run whose manifest says
  // opt=off. (google-benchmark's own context.library_build_type reports
  // how *its* library was compiled, not this code.)
  flags += ",opt=";
#ifdef __OPTIMIZE__
  flags += "on";
#else
  flags += "off";
#endif
  return flags;
}

std::string utc_timestamp_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[24];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void RunManifest::add_config(std::string key, std::string value) {
  config.emplace_back(std::move(key), std::move(value));
}

void RunManifest::add_input(const std::string& path) {
  inputs.push_back(fingerprint_file(path));
}

void RunManifest::add_input(std::string path, std::uint64_t bytes,
                            std::uint64_t hash) {
  InputFingerprint fp;
  fp.path = std::move(path);
  fp.bytes = bytes;
  fp.hash = hash;
  fp.ok = true;
  inputs.push_back(std::move(fp));
}

void RunManifest::write(JsonWriter& w) const {
  w.begin_object();
  w.member("schema", static_cast<std::int64_t>(schema));
  w.member("tool", tool);
  w.member("version", version);
  w.member("build_flags",
           build_flags.empty() ? build_flags_string() : build_flags);
  w.member("threads", static_cast<std::uint64_t>(threads));
  w.member("seed", seed);
  w.member("rng_scheme", rng_scheme);
  w.member("started_at_utc", started_at_utc);
  w.member("simd_detected", simd_detected);
  w.member("simd_dispatch", simd_dispatch);
  w.member("fast_math", fast_math);
  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.member(k, v);
  w.end_object();
  w.key("inputs").begin_array();
  for (const InputFingerprint& fp : inputs) {
    w.begin_object()
        .member("path", fp.path)
        .member("bytes", fp.bytes)
        .member("fnv1a64", hex64(fp.hash))
        .member("ok", fp.ok)
        .end_object();
  }
  w.end_array();
  w.end_object();
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  write(w);
  return os.str();
}

void RunManifest::write_file(const std::string& path) const {
  std::ofstream out = open_output_file(path);
  out << to_json() << '\n';
  if (!out) throw std::runtime_error("cannot write manifest: " + path);
}

std::ofstream open_output_file(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path p(path);
  if (p.has_parent_path()) fs::create_directories(p.parent_path(), ec);
  if (fs::exists(p, ec)) {
    // First rotation takes "<path>.old"; later ones fall through to
    // ".old.1", ".old.2", ... — fs::rename would silently replace an
    // existing target, and a rotated artifact must never clobber an
    // earlier one.
    fs::path rotated = p.string() + ".old";
    for (unsigned n = 1; fs::exists(rotated, ec); ++n) {
      if (n > 10000)
        throw std::runtime_error("refusing to overwrite " + path +
                                 ": over 10000 rotated copies exist");
      rotated = p.string() + ".old." + std::to_string(n);
    }
    fs::rename(p, rotated, ec);
    if (ec) {
      throw std::runtime_error("refusing to overwrite " + path +
                               " (rotation to " + rotated.string() +
                               " failed: " + ec.message() + ")");
    }
    std::fprintf(stderr, "warning: %s existed; rotated to %s\n",
                 path.c_str(), rotated.string().c_str());
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

}  // namespace litmus::obs
