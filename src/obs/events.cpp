#include "obs/events.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#if defined(__linux__)
#include <unistd.h>
#endif

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::obs {
namespace {

std::atomic<EventLog*> g_events{nullptr};
std::atomic<std::uint64_t> g_heartbeat_ns{0};

}  // namespace

void touch_heartbeat() noexcept {
  g_heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
}

std::uint64_t last_heartbeat_ns() noexcept {
  return g_heartbeat_ns.load(std::memory_order_relaxed);
}

std::uint64_t rss_bytes() noexcept {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0, resident = 0;
  const int n = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  static const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kRunStart: return "run_start";
    case EventType::kHeartbeat: return "heartbeat";
    case EventType::kElementAssessed: return "element_assessed";
    case EventType::kKpiVerdict: return "kpi_verdict";
    case EventType::kIterationRetry: return "iteration_retry";
    case EventType::kFallbackQr: return "fallback_qr";
    case EventType::kAdaptiveStop: return "adaptive_stop";
    case EventType::kWarning: return "warning";
    case EventType::kRunEnd: return "run_end";
  }
  return "?";
}

EventLog::EventLog() : out_(nullptr), epoch_ns_(now_ns()) {}

EventLog::EventLog(std::ostream& out) : out_(&out), epoch_ns_(now_ns()) {}

std::unique_ptr<EventLog> EventLog::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(open_output_file(path));
  auto log = std::unique_ptr<EventLog>(new EventLog(*file));
  log->owned_ = std::move(file);
  return log;
}

EventLog::~EventLog() { flush(); }

void EventLog::emit(EventType type, const FieldFn& extra) {
  const std::uint64_t now = now_ns();
  const std::uint64_t t_us = (now - epoch_ns_) / 1000;
  const std::uint64_t span = current_span_id();

  // Liveness events double as the /readyz staleness watermark, and carry
  // the live-visibility triple (uptime, resident set, ring drops) so
  // staleness and memory creep are visible both live and post-mortem.
  const bool liveness =
      type == EventType::kRunStart || type == EventType::kHeartbeat;
  if (liveness) g_heartbeat_ns.store(now, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.member("v", static_cast<std::int64_t>(kSchemaVersion));
  w.member("seq", seq_);
  w.member("t_us", t_us);
  if (span != 0) w.member("span", span);
  w.member("type", to_string(type));
  if (extra) extra(w);
  if (liveness) {
    w.member("uptime_ms", t_us / 1000);
    w.member("rss_bytes", rss_bytes());
    w.member("events.dropped", ring_dropped_);
  }
  w.end_object();

  ring_.emplace_back(seq_, line.str());
  while (ring_.size() > kRingCapacity) {
    ring_.pop_front();
    ++ring_dropped_;
  }
  ++seq_;
  if (!out_) return;

  buffer_ += ring_.back().second;
  buffer_ += '\n';
  const bool eager = liveness || type == EventType::kRunEnd;
  if (eager || buffer_.size() >= kFlushBytes) flush_locked();
}

void EventLog::progress(std::string_view stage, std::uint64_t done,
                        std::uint64_t total, std::uint64_t every,
                        const FieldFn& extra) {
  // Every call — including throttled ones — refreshes the liveness
  // watermark and the /status progress snapshot: a stalled readiness
  // probe must mean stalled *work*, not an unlucky modulus.
  touch_heartbeat();
  {
    std::lock_guard<std::mutex> lock(mu_);
    progress_.stage.assign(stage.data(), stage.size());
    progress_.done = done;
    progress_.total = total;
  }
  if (every == 0) every = 1;
  if (done % every != 0 && done != total) return;
  const std::string stage_copy(stage);
  emit(EventType::kHeartbeat, [&](JsonWriter& w) {
    w.member("stage", stage_copy)
        .member("done", done)
        .member("total", total);
    if (extra) extra(w);
  });
}

void EventLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void EventLog::flush_locked() {
  if (buffer_.empty() || !out_) return;
  out_->write(buffer_.data(),
              static_cast<std::streamsize>(buffer_.size()));
  out_->flush();
  buffer_.clear();
}

std::uint64_t EventLog::events_written() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

EventTail EventLog::tail(std::uint64_t since, std::size_t max_lines) const {
  EventTail out;
  std::lock_guard<std::mutex> lock(mu_);
  out.dropped = ring_dropped_;
  out.next_seq = since;
  bool first = true;
  for (const auto& [seq, line] : ring_) {
    if (seq < since) continue;
    if (out.lines.size() >= max_lines) break;
    if (first) {
      out.first_seq = seq;
      first = false;
    }
    out.lines.push_back(line);
    out.next_seq = seq + 1;
  }
  if (first) out.first_seq = out.next_seq;
  return out;
}

std::uint64_t EventLog::ring_dropped() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_dropped_;
}

ProgressSnapshot EventLog::last_progress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return progress_;
}

EventLog* events() noexcept {
  return g_events.load(std::memory_order_relaxed);
}

void set_events(EventLog* log) noexcept {
  g_events.store(log, std::memory_order_release);
}

}  // namespace litmus::obs
