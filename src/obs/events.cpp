#include "obs/events.h"

#include <sstream>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::obs {
namespace {

std::atomic<EventLog*> g_events{nullptr};

}  // namespace

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kRunStart: return "run_start";
    case EventType::kHeartbeat: return "heartbeat";
    case EventType::kElementAssessed: return "element_assessed";
    case EventType::kKpiVerdict: return "kpi_verdict";
    case EventType::kIterationRetry: return "iteration_retry";
    case EventType::kFallbackQr: return "fallback_qr";
    case EventType::kRunEnd: return "run_end";
  }
  return "?";
}

EventLog::EventLog(std::ostream& out) : out_(&out), epoch_ns_(now_ns()) {}

std::unique_ptr<EventLog> EventLog::open(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(open_output_file(path));
  auto log = std::unique_ptr<EventLog>(new EventLog(*file));
  log->owned_ = std::move(file);
  return log;
}

EventLog::~EventLog() { flush(); }

void EventLog::emit(EventType type, const FieldFn& extra) {
  const std::uint64_t now = now_ns();
  const std::uint64_t t_us = (now - epoch_ns_) / 1000;
  const std::uint64_t span = current_span_id();

  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.member("v", static_cast<std::int64_t>(kSchemaVersion));
  w.member("seq", seq_++);
  w.member("t_us", t_us);
  if (span != 0) w.member("span", span);
  w.member("type", to_string(type));
  if (extra) extra(w);
  w.end_object();
  buffer_ += line.str();
  buffer_ += '\n';

  const bool eager = type == EventType::kRunStart ||
                     type == EventType::kHeartbeat ||
                     type == EventType::kRunEnd;
  if (eager || buffer_.size() >= kFlushBytes) flush_locked();
}

void EventLog::progress(std::string_view stage, std::uint64_t done,
                        std::uint64_t total, std::uint64_t every,
                        const FieldFn& extra) {
  if (every == 0) every = 1;
  if (done % every != 0 && done != total) return;
  const std::string stage_copy(stage);
  emit(EventType::kHeartbeat, [&](JsonWriter& w) {
    w.member("stage", stage_copy)
        .member("done", done)
        .member("total", total);
    if (extra) extra(w);
  });
}

void EventLog::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  flush_locked();
}

void EventLog::flush_locked() {
  if (buffer_.empty()) return;
  out_->write(buffer_.data(),
              static_cast<std::streamsize>(buffer_.size()));
  out_->flush();
  buffer_.clear();
}

std::uint64_t EventLog::events_written() const noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

EventLog* events() noexcept {
  return g_events.load(std::memory_order_relaxed);
}

void set_events(EventLog* log) noexcept {
  g_events.store(log, std::memory_order_release);
}

}  // namespace litmus::obs
