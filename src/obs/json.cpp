#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace litmus::obs {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) *out_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  *out_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out_ << "\\\""; break;
      case '\\': *out_ << "\\\\"; break;
      case '\n': *out_ << "\\n"; break;
      case '\r': *out_ << "\\r"; break;
      case '\t': *out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  *out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  *out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  write_escaped(k);
  *out_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  *out_ << "null";
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(double fallback) const noexcept {
  return kind == Kind::kNumber ? number : fallback;
}

std::string JsonValue::string_or(std::string fallback) const {
  return kind == Kind::kString ? string : std::move(fallback);
}

double JsonValue::member_number(std::string_view key,
                                double fallback) const noexcept {
  const JsonValue* v = find(key);
  return v ? v->number_or(fallback) : fallback;
}

std::string JsonValue::member_string(std::string_view key,
                                     std::string fallback) const {
  const JsonValue* v = find(key);
  return v ? v->string_or(std::move(fallback)) : std::move(fallback);
}

namespace {

// Recursive-descent parser over a string_view. Depth is bounded so a
// pathological input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v, 0) || (skip_ws(), pos_ != text_.size())) {
      if (error) {
        if (message_.empty()) message_ = "trailing characters";
        *error = "json parse error at byte " + std::to_string(pos_) + ": " +
                 message_;
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool fail(const char* why) {
    if (message_.empty()) message_ = why;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return object(out, depth);
      case '[': return array(out, depth);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null");
      default: return number(out);
    }
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':'");
      ++pos_;
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // produced by our writer; a lone surrogate encodes as-is).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return fail("unknown escape");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return JsonParser(text).parse(error);
}

}  // namespace litmus::obs
