#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace litmus::obs {

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) *out_ << ',';
    first_.back() = false;
  }
}

void JsonWriter::write_escaped(std::string_view s) {
  *out_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': *out_ << "\\\""; break;
      case '\\': *out_ << "\\\\"; break;
      case '\n': *out_ << "\\n"; break;
      case '\r': *out_ << "\\r"; break;
      case '\t': *out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out_ << buf;
        } else {
          *out_ << c;
        }
    }
  }
  *out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  *out_ << '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_.pop_back();
  *out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  *out_ << '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_.pop_back();
  *out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separate();
  write_escaped(k);
  *out_ << ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separate();
  write_escaped(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  separate();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  *out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separate();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separate();
  *out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separate();
  *out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  *out_ << "null";
  return *this;
}

}  // namespace litmus::obs
