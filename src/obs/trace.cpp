#include "obs/trace.h"

#include <string>
#include <utility>
#include <vector>

namespace litmus::obs {
namespace {

thread_local std::uint64_t tls_current_span = 0;

// Span names are static string literals, so the `stage.<name>` histogram
// lookup can be memoized by pointer identity: a handful of hot spans
// ("sampling", "fit", "forecast") close millions of times per sweep, and
// building the prefixed name each close put a heap allocation plus a
// registry map walk on the hot path. Registry references stay valid for
// its lifetime, so caching them is safe; duplicate literals in different
// translation units just yield two entries for the same histogram.
Histogram& stage_histogram(const char* name) {
  thread_local std::vector<std::pair<const char*, Histogram*>> cache;
  for (const auto& [key, hist] : cache)
    if (key == name) return *hist;
  Histogram& h = Registry::global().histogram(std::string("stage.") + name);
  cache.emplace_back(name, &h);
  return h;
}

}  // namespace

std::uint64_t current_span_id() noexcept { return tls_current_span; }

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ns_ = now_ns();
  collecting_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { collecting_.store(false, std::memory_order_relaxed); }

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::add(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(span);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

#if LITMUS_OBS_ENABLED

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer) {
  metrics_ = enabled();
  tracing_ = tracer.collecting();
  if (!metrics_ && !tracing_) return;
  name_ = name;
  tracer_ = &tracer;
  start_ns_ = now_ns();
  if (tracing_) {
    id_ = tracer.next_id();
    parent_ = tls_current_span;
    tls_current_span = id_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!metrics_ && !tracing_) return;
  const std::uint64_t end = now_ns();
  const std::uint64_t duration = end > start_ns_ ? end - start_ns_ : 0;
  if (tracing_) {
    tls_current_span = parent_;
    SpanRecord rec;
    rec.id = id_;
    rec.parent = parent_;
    rec.name = name_;
    const std::uint64_t epoch = tracer_->epoch_ns();
    rec.start_ns = start_ns_ > epoch ? start_ns_ - epoch : 0;
    rec.duration_ns = duration;
    rec.thread = thread_index();
    tracer_->add(rec);
  }
  if (metrics_) {
    stage_histogram(name_).record(static_cast<double>(duration) /
                                  1000.0);  // microseconds
  }
}

#endif  // LITMUS_OBS_ENABLED

}  // namespace litmus::obs
