#include "obs/trace.h"

#include <string>
#include <utility>
#include <vector>

namespace litmus::obs {
namespace {

thread_local std::uint64_t tls_current_span = 0;

// Span names are static string literals, so the `stage.<name>` histogram
// lookup can be memoized by pointer identity: a handful of hot spans
// ("sampling", "fit", "forecast") close millions of times per sweep, and
// building the prefixed name each close put a heap allocation plus a
// registry map walk on the hot path. Registry references stay valid for
// its lifetime, so caching them is safe; duplicate literals in different
// translation units just yield two entries for the same histogram.
Histogram& stage_histogram(const char* name) {
  thread_local std::vector<std::pair<const char*, Histogram*>> cache;
  for (const auto& [key, hist] : cache)
    if (key == name) return *hist;
  Histogram& h = Registry::global().histogram(std::string("stage.") + name);
  cache.emplace_back(name, &h);
  return h;
}

}  // namespace

std::uint64_t current_span_id() noexcept { return tls_current_span; }

SpanParentGuard::SpanParentGuard(std::uint64_t span_id) noexcept
    : saved_(tls_current_span) {
  tls_current_span = span_id;
}

SpanParentGuard::~SpanParentGuard() { tls_current_span = saved_; }

Tracer::Tracer(std::size_t ring_capacity) : rings_(ring_capacity) {}

void Tracer::start(const TraceConfig& config) {
  rings_.clear();
  config_ = config;
  next_id_.store(1, std::memory_order_relaxed);
  epoch_ns_ = now_ns();
  collecting_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { collecting_.store(false, std::memory_order_relaxed); }

bool Tracer::sample() noexcept {
  if (config_.mode == TraceMode::kFull) return true;
  const std::uint32_t every = config_.sample_every == 0
                                  ? 1
                                  : config_.sample_every;
  // Per-thread counter (shared across Tracer instances; sessions do not
  // overlap in practice, and a shared phase only shifts which spans the
  // sampler keeps).
  thread_local std::uint32_t tick = 0;
  return tick++ % every == 0;
}

std::vector<SpanRecord> Tracer::spans() const {
  return rings_.collect().spans;
}

std::uint64_t Tracer::dropped() const { return rings_.collect().dropped; }

Tracer& Tracer::global() {
  // Intentionally immortal: reached from pool workers (ScopedSpan's default
  // argument), which can outlive the start of static destruction on the
  // main thread. See thread_name_registry() in profile.cpp.
  static Tracer* tracer = new Tracer;
  return *tracer;
}

#if LITMUS_OBS_ENABLED

ScopedSpan::ScopedSpan(const char* name, Tracer& tracer) {
  metrics_ = enabled();
  tracing_ = tracer.collecting() && tracer.sample();
  if (!metrics_ && !tracing_) return;
  name_ = name;
  tracer_ = &tracer;
  start_ns_ = now_ns();
  if (tracing_) {
    id_ = tracer.next_id();
    parent_ = tls_current_span;
    tls_current_span = id_;
  }
}

ScopedSpan::~ScopedSpan() {
  if (!metrics_ && !tracing_) return;
  const std::uint64_t end = now_ns();
  const std::uint64_t duration = end > start_ns_ ? end - start_ns_ : 0;
  if (tracing_) {
    tls_current_span = parent_;
    SpanRecord rec;
    rec.id = id_;
    rec.parent = parent_;
    rec.name = name_;
    const std::uint64_t epoch = tracer_->epoch_ns();
    rec.start_ns = start_ns_ > epoch ? start_ns_ - epoch : 0;
    rec.duration_ns = duration;
    rec.thread = thread_index();
    tracer_->add(rec);
  }
  if (metrics_) {
    stage_histogram(name_).record(static_cast<double>(duration) /
                                  1000.0);  // microseconds
  }
}

#endif  // LITMUS_OBS_ENABLED

}  // namespace litmus::obs
