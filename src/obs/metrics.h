// Thread-safe metrics for the Litmus pipeline: atomic counters, gauges and
// lock-striped latency/value histograms with quantile snapshots, collected
// in a named Registry and exported through the sinks in obs/sink.h.
//
// Overhead policy (two gates, both default to "pay nothing"):
//   * Compile time: building with -DLITMUS_OBS_ENABLED=0 turns enabled()
//     into `constexpr false`, so every `if (obs::enabled()) {...}`
//     instrumentation block is dead code the optimizer removes.
//   * Run time: even when compiled in, collection is off until
//     set_enabled(true); a disabled check is one relaxed atomic load.
// Instrumented code must therefore guard recording with obs::enabled()
// (ScopedSpan in obs/trace.h performs that check itself).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef LITMUS_OBS_ENABLED
#define LITMUS_OBS_ENABLED 1
#endif

namespace litmus::obs {

#if LITMUS_OBS_ENABLED
/// Runtime master switch; off by default so an uninstrumented run pays one
/// relaxed load per call site and nothing else.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;
#else
constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#endif

/// Steady-clock nanoseconds (monotonic; only differences are meaningful).
std::uint64_t now_ns() noexcept;

/// Small sequential id for the calling thread (0 for the first thread that
/// asks, 1 for the next, ...). Stable for the thread's lifetime.
std::uint32_t thread_index() noexcept;

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (fit diagnostics, throughput readings).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Cumulative distribution point: `cumulative` observations fell at or
/// below `upper_bound` (Prometheus `le` semantics; the underlying raw
/// buckets are half-open, so a value exactly on an edge counts under the
/// next point's bound — cumulative counts stay monotone either way).
struct HistogramBucket {
  double upper_bound = 0.0;
  std::uint64_t cumulative = 0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact; 0 when empty
  double max = 0.0;  ///< exact; 0 when empty
  /// Quantiles estimated from log-linear buckets (<~7% relative error).
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Cumulative counts at the non-empty raw buckets' upper bounds,
  /// ascending and monotone, coalesced to at most kMaxExportBuckets
  /// points. The implicit final point is (+Inf, count); it is not stored.
  std::vector<HistogramBucket> buckets;

  double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Signed log-linear histogram: per power-of-two magnitude decade, 8 linear
/// sub-buckets, mirrored for negative values, one center bucket for zero.
/// Updates are lock-striped by thread index so concurrent workers rarely
/// contend; snapshot() merges the stripes.
class Histogram {
 public:
  static constexpr std::size_t kStripes = 4;
  static constexpr int kSubBuckets = 8;
  static constexpr int kExpMin = -64;
  static constexpr int kExpMax = 63;
  static constexpr std::size_t kMagBuckets =
      static_cast<std::size_t>(kExpMax - kExpMin + 1) * kSubBuckets;
  static constexpr std::size_t kBuckets = 2 * kMagBuckets + 1;
  /// Cap on the cumulative-distribution points a snapshot exports; more
  /// non-empty raw buckets than this coalesce into their neighbors
  /// (dropping an intermediate cumulative point loses resolution, never
  /// correctness).
  static constexpr std::size_t kMaxExportBuckets = 64;

  Histogram();

  void record(double v) noexcept;
  HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket index for a value and the representative (geometric-midpoint)
  /// value of a bucket; exposed for tests.
  static std::size_t bucket_of(double v) noexcept;
  static double bucket_value(std::size_t bucket) noexcept;
  /// Upper edge of a bucket's value range (the `le` bound its
  /// observations fall under); exposed for tests.
  static double bucket_upper(std::size_t bucket) noexcept;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::array<Stripe, kStripes> stripes_;
};

/// One consistent read of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Named metric registry. Lookup registers on first use; returned
/// references stay valid for the registry's lifetime (reset() zeroes
/// values but never removes metrics, so call sites may cache them).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  void reset();

  /// The process-wide registry the pipeline instrumentation records into.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace litmus::obs
