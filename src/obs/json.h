// Minimal JSON support (no external dependency).
//
//   * JsonWriter: streaming writer — nested objects/arrays with automatic
//     comma placement, string escaping, and NaN/Inf mapped to null so the
//     output is always valid JSON.
//   * JsonValue / parse_json: recursive-descent reader for the audit
//     tooling (run manifests, event streams, diff-runs). Order-preserving
//     objects, doubles for all numbers; rejects trailing garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace litmus::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + scalar value.
  template <typename T>
  JsonWriter& member(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();
  void write_escaped(std::string_view s);

  std::ostream* out_;
  std::vector<bool> first_;  ///< per nesting level: no member emitted yet
  bool after_key_ = false;
};

/// Parsed JSON document. Objects preserve member order (and keep
/// duplicates, should a producer emit them; find() returns the first).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_object() const noexcept { return kind == Kind::kObject; }
  bool is_array() const noexcept { return kind == Kind::kArray; }

  /// First member with this key; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;

  /// Loose accessors: the fallback when the value is missing or has a
  /// different kind, so consumers of foreign JSON stay short.
  double number_or(double fallback) const noexcept;
  std::string string_or(std::string fallback) const;
  double member_number(std::string_view key, double fallback) const noexcept;
  std::string member_string(std::string_view key,
                            std::string fallback) const;
};

/// Parses a complete JSON document. On failure returns nullopt and, when
/// `error` is non-null, stores a message with the byte offset.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace litmus::obs
