// Minimal streaming JSON writer (no external dependency): nested
// objects/arrays with automatic comma placement, string escaping, and
// NaN/Inf mapped to null so the output is always valid JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace litmus::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or container open.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Shorthand: key + scalar value.
  template <typename T>
  JsonWriter& member(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void separate();
  void write_escaped(std::string_view s);

  std::ostream* out_;
  std::vector<bool> first_;  ///< per nesting level: no member emitted yet
  bool after_key_ = false;
};

}  // namespace litmus::obs
