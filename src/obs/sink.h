// Export sinks for the obs metrics registry and trace tree.
//
//   * JSON: machine-readable; the shapes litmus_cli's --metrics-json and
//     --trace-json flags write and the CI perf artifact consumes.
//   * CSV: flat rows for spreadsheet/pandas ingestion.
//   * Summary: aligned human-readable text for terminal reports.
//
// Histogram quantiles are reported in the units they were recorded in
// (stage.* histograms from ScopedSpan are microseconds).
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::obs {

struct RunManifest;

/// {"manifest":{...},"counters":{...},"gauges":{...},
///  "histograms":{name:{count,sum,min,max,mean,p50,p90,p95,p99}}}
/// The manifest member is present when `manifest` is non-null, so every
/// metrics artifact carries its own provenance (obs/manifest.h).
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot,
                        const RunManifest* manifest = nullptr);

/// One row per metric:
///   counter,<name>,<value>
///   gauge,<name>,<value>
///   histogram,<name>,<count>,<sum>,<min>,<max>,<p50>,<p90>,<p95>,<p99>
void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot);

/// Aligned, name-sorted text block.
std::string format_metrics_summary(const MetricsSnapshot& snapshot);

/// {"manifest":{...}?,"epoch_ns":...,
///  "spans":[{id,parent,name,thread,start_us,duration_us}]}
void write_trace_json(std::ostream& out, std::span<const SpanRecord> spans,
                      std::uint64_t epoch_ns = 0,
                      const RunManifest* manifest = nullptr);

}  // namespace litmus::obs
