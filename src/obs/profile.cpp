#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.h"

namespace litmus::obs {

// ---------------------------------------------------------------------------
// SpanRingSet

SpanRingSet::SpanRingSet(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {}

SpanRingSet::~SpanRingSet() {
  for (auto& slot : rings_) delete slot.load(std::memory_order_acquire);
}

void SpanRingSet::append(const SpanRecord& rec) noexcept {
  const std::uint32_t tid = thread_index();
  if (tid >= kMaxThreads) {
    overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Ring* ring = rings_[tid].load(std::memory_order_acquire);
  if (ring == nullptr) {
    auto* fresh = new Ring(capacity_);
    Ring* expected = nullptr;
    if (rings_[tid].compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel)) {
      ring = fresh;
    } else {
      // thread_index() is unique per live thread, so two writers racing on
      // one slot means an index was recycled across thread lifetimes; the
      // loser adopts the winner's ring.
      delete fresh;
      ring = expected;
    }
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % ring->slots.size()];
  const std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq + 1, std::memory_order_release);  // odd: write in flight
  slot.rec = rec;
  slot.seq.store(seq + 2, std::memory_order_release);  // even: stable
  ring->head.store(head + 1, std::memory_order_release);
}

SpanRingSet::Drain SpanRingSet::collect() const {
  Drain out;
  out.dropped = overflow_dropped_.load(std::memory_order_relaxed);
  for (const auto& entry : rings_) {
    const Ring* ring = entry.load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->slots.size();
    const std::uint64_t live = std::min<std::uint64_t>(head, cap);
    out.dropped += head - live;
    for (std::uint64_t i = head - live; i < head; ++i) {
      const Slot& slot = ring->slots[i % cap];
      // Seqlock read: retry a torn slot a few times, then skip it — the
      // writer is mid-append and the span will surface next collect.
      for (int attempt = 0; attempt < 4; ++attempt) {
        const std::uint32_t s1 = slot.seq.load(std::memory_order_acquire);
        if (s1 & 1u) continue;
        const SpanRecord rec = slot.rec;
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) == s1) {
          out.spans.push_back(rec);
          break;
        }
      }
    }
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  return out;
}

void SpanRingSet::clear() {
  overflow_dropped_.store(0, std::memory_order_relaxed);
  for (auto& entry : rings_) {
    Ring* ring = entry.load(std::memory_order_acquire);
    if (ring != nullptr) ring->head.store(0, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// Thread names

namespace {

struct ThreadNameRegistry {
  std::mutex mu;
  std::vector<std::pair<std::uint32_t, std::string>> names;
};

ThreadNameRegistry& thread_name_registry() {
  // Intentionally immortal (never destroyed): a pool worker can still be
  // executing set_thread_name while the main thread has already entered
  // static destruction on a short run, and this registry — first touched
  // from a worker — would be torn down before the pool joins its threads.
  static ThreadNameRegistry* reg = new ThreadNameRegistry;
  return *reg;
}

}  // namespace

void set_thread_name(std::string name) {
  const std::uint32_t tid = thread_index();
  ThreadNameRegistry& reg = thread_name_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [index, existing] : reg.names) {
    if (index == tid) {
      existing = std::move(name);
      return;
    }
  }
  reg.names.emplace_back(tid, std::move(name));
}

std::vector<std::pair<std::uint32_t, std::string>> thread_names() {
  ThreadNameRegistry& reg = thread_name_registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto out = reg.names;
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// ---------------------------------------------------------------------------
// Trace summarization

namespace {

double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  // Nearest-rank: the smallest value with at least q of the mass below it.
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[rank - 1];
}

std::string fmt_us(double us) {
  char buf[48];
  if (us < 1000.0)
    std::snprintf(buf, sizeof(buf), "%.1f us", us);
  else if (us < 1e6)
    std::snprintf(buf, sizeof(buf), "%.2f ms", us / 1000.0);
  else
    std::snprintf(buf, sizeof(buf), "%.3f s", us / 1e6);
  return buf;
}

}  // namespace

ProfileReport summarize_trace(const std::vector<TraceEvent>& events,
                              std::size_t top_n) {
  ProfileReport report;
  report.span_count = events.size();
  if (events.empty()) return report;

  double min_start = events.front().start_us;
  double max_end = min_start;
  std::unordered_map<std::string, std::vector<double>> durations;
  for (const TraceEvent& e : events) {
    min_start = std::min(min_start, e.start_us);
    max_end = std::max(max_end, e.start_us + e.duration_us);
    durations[e.name].push_back(e.duration_us);
  }
  report.wall_us = max_end - min_start;

  report.stages.reserve(durations.size());
  for (auto& [name, values] : durations) {
    std::sort(values.begin(), values.end());
    StageRow row;
    row.name = name;
    row.count = values.size();
    for (double v : values) row.total_us += v;
    row.p50_us = exact_quantile(values, 0.50);
    row.p99_us = exact_quantile(values, 0.99);
    row.max_us = values.back();
    row.pct_wall =
        report.wall_us > 0.0 ? 100.0 * row.total_us / report.wall_us : 0.0;
    report.stages.push_back(std::move(row));
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageRow& a, const StageRow& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });

  std::vector<TraceEvent> by_duration = events;
  std::sort(by_duration.begin(), by_duration.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.duration_us != b.duration_us)
                return a.duration_us > b.duration_us;
              return a.start_us < b.start_us;
            });
  if (by_duration.size() > top_n) by_duration.resize(top_n);
  report.slowest = std::move(by_duration);
  return report;
}

std::string format_profile_report(const ProfileReport& report) {
  std::ostringstream out;
  out << "trace: " << report.span_count << " span(s), wall "
      << fmt_us(report.wall_us) << "\n";
  if (report.stages.empty()) return out.str();

  std::size_t name_w = 5;
  for (const StageRow& row : report.stages)
    name_w = std::max(name_w, row.name.size());

  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %9s  %11s  %11s  %11s  %11s  %7s\n",
                static_cast<int>(name_w), "stage", "count", "total", "p50",
                "p99", "max", "% wall");
  out << line;
  for (const StageRow& row : report.stages) {
    std::snprintf(line, sizeof(line),
                  "%-*s  %9llu  %11s  %11s  %11s  %11s  %7.1f\n",
                  static_cast<int>(name_w), row.name.c_str(),
                  static_cast<unsigned long long>(row.count),
                  fmt_us(row.total_us).c_str(), fmt_us(row.p50_us).c_str(),
                  fmt_us(row.p99_us).c_str(), fmt_us(row.max_us).c_str(),
                  row.pct_wall);
    out << line;
  }

  if (!report.slowest.empty()) {
    out << "slowest spans:\n";
    for (const TraceEvent& e : report.slowest) {
      std::snprintf(line, sizeof(line), "  %11s  at %11s  thread %-3u  %s\n",
                    fmt_us(e.duration_us).c_str(), fmt_us(e.start_us).c_str(),
                    e.thread, e.name.c_str());
      out << line;
    }
  }
  return out.str();
}

}  // namespace litmus::obs
