#include "obs/promexport.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

namespace litmus::obs {
namespace {

// Shortest round-trip decimal for a sample value. Prometheus parses
// standard C float syntax; NaN should never reach the exposition (the
// registry never produces one), but map it to "NaN" defensively.
std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g rendering when it round-trips exactly.
  char shorter[40];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  if (std::sscanf(shorter, "%lf", &back) == 1 && back == v)
    return shorter;
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

bool prom_name_char(char c) noexcept {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Deterministic collision disambiguation: the first claimant of an
/// exposition name keeps it, later ones append _2, _3, ...
class NameTable {
 public:
  std::string claim(std::string name) {
    auto [it, fresh] = taken_.try_emplace(name, 1);
    if (fresh) return name;
    std::string suffixed;
    do {
      suffixed = name + "_" + std::to_string(++it->second);
    } while (!taken_.try_emplace(suffixed, 1).second);
    return suffixed;
  }

 private:
  std::map<std::string, int> taken_;
};

void help_and_type(std::ostream& out, const std::string& prom,
                   std::string_view original, const char* type) {
  // HELP text: the registry's dotted name, so a dashboard can map the
  // exposition family back to --metrics-json. Newlines/backslashes can't
  // occur in registry names; no escaping needed.
  out << "# HELP " << prom << " litmus metric " << original << "\n";
  out << "# TYPE " << prom << " " << type << "\n";
}

}  // namespace

std::string prom_sanitize(std::string_view name) {
  std::string out = "litmus_";
  out.reserve(name.size() + 7);
  for (const char c : name) out.push_back(prom_name_char(c) ? c : '_');
  return out;
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  NameTable names;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = names.claim(prom_sanitize(name) + "_total");
    help_and_type(out, prom, name, "counter");
    out << prom << " " << num(value) << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = names.claim(prom_sanitize(name));
    help_and_type(out, prom, name, "gauge");
    out << prom << " " << num(value) << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = names.claim(prom_sanitize(name));
    help_and_type(out, prom, name, "histogram");
    for (const HistogramBucket& b : h.buckets)
      out << prom << "_bucket{le=\"" << num(b.upper_bound) << "\"} "
          << num(b.cumulative) << "\n";
    out << prom << "_bucket{le=\"+Inf\"} " << num(h.count) << "\n";
    out << prom << "_sum " << num(h.sum) << "\n";
    out << prom << "_count " << num(h.count) << "\n";
  }
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  write_prometheus(out, snapshot);
  return out.str();
}

}  // namespace litmus::obs
