#include "obs/chrometrace.h"

#include <algorithm>
#include <map>

#include "obs/json.h"
#include "obs/manifest.h"

namespace litmus::obs {
namespace {

constexpr std::uint64_t kPid = 1;  ///< single-process tool; fixed pid

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_metadata_event(JsonWriter& w, const char* what, std::uint64_t tid,
                          std::string_view name) {
  w.begin_object();
  w.member("name", what);
  w.member("ph", "M");
  w.member("pid", kPid);
  w.member("tid", tid);
  w.key("args").begin_object();
  w.member("name", name);
  w.end_object();
  w.end_object();
}

void write_begin_event(JsonWriter& w, const SpanRecord& s) {
  w.begin_object();
  w.member("name", s.name);
  w.member("cat", "litmus");
  w.member("ph", "B");
  w.member("ts", to_us(s.start_ns));
  w.member("pid", kPid);
  w.member("tid", static_cast<std::uint64_t>(s.thread));
  w.key("args").begin_object();
  w.member("id", s.id);
  w.member("parent", s.parent);
  w.end_object();
  w.end_object();
}

void write_end_event(JsonWriter& w, const SpanRecord& s) {
  w.begin_object();
  w.member("name", s.name);
  w.member("ph", "E");
  w.member("ts", to_us(s.start_ns + s.duration_ns));
  w.member("pid", kPid);
  w.member("tid", static_cast<std::uint64_t>(s.thread));
  w.end_object();
}

}  // namespace

void write_chrome_trace(
    std::ostream& out, std::span<const SpanRecord> spans,
    std::uint64_t epoch_ns,
    std::span<const std::pair<std::uint32_t, std::string>> thread_names,
    std::uint64_t dropped_spans, const RunManifest* manifest) {
  JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents").begin_array();

  write_metadata_event(w, "process_name", 0, "litmus");
  for (const auto& [tid, name] : thread_names)
    write_metadata_event(w, "thread_name", tid, name);

  // Group spans per thread; RAII recording guarantees the spans of one
  // thread form a laminar family (nested or disjoint, never partially
  // overlapping), so sorting by (start asc, duration desc) and closing
  // everything that ends at-or-before the next start yields matched B/E
  // pairs in non-decreasing timestamp order per thread.
  std::map<std::uint32_t, std::vector<const SpanRecord*>> per_thread;
  for (const SpanRecord& s : spans) per_thread[s.thread].push_back(&s);

  for (auto& [tid, list] : per_thread) {
    std::sort(list.begin(), list.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                if (a->start_ns != b->start_ns)
                  return a->start_ns < b->start_ns;
                if (a->duration_ns != b->duration_ns)
                  return a->duration_ns > b->duration_ns;
                return a->id < b->id;
              });
    std::vector<const SpanRecord*> stack;
    for (const SpanRecord* s : list) {
      while (!stack.empty() &&
             stack.back()->start_ns + stack.back()->duration_ns <=
                 s->start_ns) {
        write_end_event(w, *stack.back());
        stack.pop_back();
      }
      write_begin_event(w, *s);
      stack.push_back(s);
    }
    while (!stack.empty()) {
      write_end_event(w, *stack.back());
      stack.pop_back();
    }
  }

  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("otherData").begin_object();
  w.member("epoch_ns", epoch_ns);
  w.member("span_count", static_cast<std::uint64_t>(spans.size()));
  w.member("dropped_spans", dropped_spans);
  if (manifest) {
    w.key("manifest");
    manifest->write(w);
  }
  w.end_object();
  w.end_object();
  out << "\n";
}

namespace {

// One partially-matched B event while scanning a thread's event stream.
struct OpenSpan {
  TraceEvent event;
};

bool parse_chrome_events(const JsonValue& events, ParsedTrace& out,
                         std::string* error) {
  std::map<std::uint64_t, std::vector<OpenSpan>> stacks;
  for (const JsonValue& e : events.array) {
    if (!e.is_object()) continue;
    const std::string ph = e.member_string("ph", "");
    const auto tid = static_cast<std::uint64_t>(e.member_number("tid", 0));
    if (ph == "M") {
      if (e.member_string("name", "") == "thread_name") {
        if (const JsonValue* args = e.find("args"))
          out.thread_names.emplace_back(static_cast<std::uint32_t>(tid),
                                        args->member_string("name", ""));
      }
      continue;
    }
    if (ph == "X") {
      TraceEvent ev;
      ev.name = e.member_string("name", "");
      ev.thread = static_cast<std::uint32_t>(tid);
      ev.start_us = e.member_number("ts", 0.0);
      ev.duration_us = e.member_number("dur", 0.0);
      out.events.push_back(std::move(ev));
      continue;
    }
    if (ph == "B") {
      OpenSpan open;
      open.event.name = e.member_string("name", "");
      open.event.thread = static_cast<std::uint32_t>(tid);
      open.event.start_us = e.member_number("ts", 0.0);
      if (const JsonValue* args = e.find("args")) {
        open.event.id =
            static_cast<std::uint64_t>(args->member_number("id", 0));
        open.event.parent =
            static_cast<std::uint64_t>(args->member_number("parent", 0));
      }
      stacks[tid].push_back(std::move(open));
      continue;
    }
    if (ph == "E") {
      auto& stack = stacks[tid];
      if (stack.empty()) {
        if (error)
          *error = "unmatched E event for tid " + std::to_string(tid);
        return false;
      }
      TraceEvent ev = std::move(stack.back().event);
      stack.pop_back();
      const double end = e.member_number("ts", ev.start_us);
      ev.duration_us = end > ev.start_us ? end - ev.start_us : 0.0;
      out.events.push_back(std::move(ev));
      continue;
    }
    // Other phases (counters, flows, instants) are not summarizable
    // duration data; skip them.
  }
  // Tolerate a truncated trace: close dangling B events with zero duration
  // rather than rejecting the whole file.
  for (auto& [tid, stack] : stacks)
    for (OpenSpan& open : stack) out.events.push_back(std::move(open.event));
  return true;
}

bool parse_span_list(const JsonValue& spans, ParsedTrace& out) {
  for (const JsonValue& s : spans.array) {
    if (!s.is_object()) continue;
    TraceEvent ev;
    ev.name = s.member_string("name", "");
    ev.thread = static_cast<std::uint32_t>(s.member_number("thread", 0));
    ev.start_us = s.member_number("start_us", 0.0);
    ev.duration_us = s.member_number("duration_us", 0.0);
    ev.id = static_cast<std::uint64_t>(s.member_number("id", 0));
    ev.parent = static_cast<std::uint64_t>(s.member_number("parent", 0));
    out.events.push_back(std::move(ev));
  }
  return true;
}

}  // namespace

std::optional<ParsedTrace> parse_trace_events(const JsonValue& doc,
                                              std::string* error) {
  ParsedTrace out;
  // Chrome JSON Object Format: {"traceEvents":[...]} — or the bare JSON
  // Array Format some producers emit.
  const JsonValue* events =
      doc.is_array() ? &doc : doc.is_object() ? doc.find("traceEvents") : nullptr;
  if (events != nullptr && events->is_array()) {
    if (!parse_chrome_events(*events, out, error)) return std::nullopt;
    std::sort(out.events.begin(), out.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.duration_us > b.duration_us;
              });
    return out;
  }
  if (const JsonValue* spans = doc.is_object() ? doc.find("spans") : nullptr;
      spans != nullptr && spans->is_array()) {
    parse_span_list(*spans, out);
    return out;
  }
  if (error) *error = "document has neither traceEvents nor spans";
  return std::nullopt;
}

}  // namespace litmus::obs
