#include "obs/rundiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace litmus::obs {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

JsonValue parse_file(const std::string& path) {
  std::string error;
  auto v = parse_json(read_file(path), &error);
  if (!v) throw std::runtime_error(path + ": " + error);
  return std::move(*v);
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Integers render exactly (seeds, counts must never collide after
/// rounding); reals compactly.
std::string fmt_exact(double v) {
  if (v == std::floor(v) && std::fabs(v) < 9.2e18)
    return std::to_string(static_cast<long long>(v));
  return fmt(v);
}

std::string scalar_to_string(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kString: return v.string;
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return fmt_exact(v.number);
    default: return "<non-scalar>";
  }
}

std::string num_key(const JsonValue& event, const char* field) {
  const JsonValue* v = event.find(field);
  if (!v || v->kind != JsonValue::Kind::kNumber) return "?";
  return std::to_string(static_cast<long long>(v->number));
}

/// Stable identity of a verdict-bearing event across runs.
std::string verdict_key(const JsonValue& event, const std::string& type) {
  std::string key;
  if (type == "element_assessed") {
    key = "element " + event.member_string("kpi", "?") + " #" +
          num_key(event, "element") + " @" + num_key(event, "bin");
  } else {  // kpi_verdict
    key = "kpi " + event.member_string("kpi", "?") + " @" +
          num_key(event, "bin");
    // Monitor readings re-assess the same (kpi, bin) per element and
    // window; element id and data horizon keep each reading's verdict
    // separately comparable.
    if (event.find("element")) key += " #" + num_key(event, "element");
    if (event.find("up_to"))
      key += " up_to " + num_key(event, "up_to");
  }
  return key;
}

/// Metrics whose values depend on scheduling or machine speed, never on
/// what the run computed. They stay out of the drift gate. panel_cache.*
/// belongs here too: hit/miss/eviction counts depend on the cache budget
/// and on which worker got to a panel first, while the assessed results
/// are bit-identical either way (DESIGN.md §10).
/// serve.* belongs here too: scrape counts and latencies depend on who
/// polled the live observability plane, never on what the run computed.
/// store.* belongs here too: mmap timings, mapped bytes, and page-fault
/// deltas describe how the series were *served*, and a mapped snapshot is
/// bit-identical to the parsed store (DESIGN.md §15). shard.* records how
/// the batch was partitioned; any shard count produces the same verdicts.
bool scheduling_dependent(const std::string& name) {
  return name.starts_with("stage.") || name.starts_with("parallel.") ||
         name.starts_with("litmus.worker.") ||
         name.starts_with("panel_cache.") || name.starts_with("ingest.") ||
         name.starts_with("serve.") || name.starts_with("store.") ||
         name.starts_with("shard.");
}

double rel_delta(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) / scale;
}

std::string manifest_str(const JsonValue& m, const char* key) {
  const JsonValue* v = m.find(key);
  return v ? scalar_to_string(*v) : "<absent>";
}

void compare_scalar(std::vector<DiffLine>& out, const JsonValue& a,
                    const JsonValue& b, const char* key, bool gating) {
  const std::string va = manifest_str(a, key);
  const std::string vb = manifest_str(b, key);
  if (va == vb) return;
  out.push_back({std::string(key) + ": " + va + " -> " + vb +
                     (gating ? "" : " (informational)"),
                 gating});
}

std::map<std::string, std::string> object_as_map(const JsonValue* obj) {
  std::map<std::string, std::string> out;
  if (!obj || !obj->is_object()) return out;
  for (const auto& [k, v] : obj->object) out[k] = scalar_to_string(v);
  return out;
}

void compare_maps(std::vector<DiffLine>& out,
                  const std::map<std::string, std::string>& a,
                  const std::map<std::string, std::string>& b,
                  const std::string& what, bool gating) {
  std::set<std::string> keys;
  for (const auto& [k, _] : a) keys.insert(k);
  for (const auto& [k, _] : b) keys.insert(k);
  for (const std::string& k : keys) {
    const auto ia = a.find(k);
    const auto ib = b.find(k);
    if (ia == a.end()) {
      out.push_back({what + " " + k + ": only in B (" + ib->second + ")",
                     gating});
    } else if (ib == b.end()) {
      out.push_back({what + " " + k + ": only in A (" + ia->second + ")",
                     gating});
    } else if (ia->second != ib->second) {
      out.push_back({what + " " + k + ": " + ia->second + " -> " +
                         ib->second,
                     gating});
    }
  }
}

/// inputs array -> path -> "bytes=...,fnv1a64=...,ok=..."
std::map<std::string, std::string> inputs_as_map(const JsonValue& m) {
  std::map<std::string, std::string> out;
  const JsonValue* inputs = m.find("inputs");
  if (!inputs || !inputs->is_array()) return out;
  for (const JsonValue& fp : inputs->array) {
    // Keyed by basename: the same input copied to a different directory
    // is the same input; a changed fingerprint is the drift that matters.
    const std::string path = fp.member_string("path", "?");
    const std::string base =
        std::filesystem::path(path).filename().string();
    const JsonValue* bytes = fp.find("bytes");
    out[base] = "fnv1a64=" + fp.member_string("fnv1a64", "?") + " bytes=" +
                (bytes ? scalar_to_string(*bytes) : "?") +
                (fp.find("ok") && fp.find("ok")->boolean ? "" : " UNREAD");
  }
  return out;
}

/// Flattens one metrics.json section ("counters" -> value, "histograms"
/// -> chosen field) into name -> number.
std::map<std::string, double> metrics_section(const JsonValue& metrics,
                                              const char* section,
                                              const char* field) {
  std::map<std::string, double> out;
  const JsonValue* sec = metrics.find(section);
  if (!sec || !sec->is_object()) return out;
  for (const auto& [name, v] : sec->object) {
    if (field == nullptr) {
      if (v.kind == JsonValue::Kind::kNumber) out[name] = v.number;
    } else if (const JsonValue* f = v.find(field)) {
      if (f->kind == JsonValue::Kind::kNumber) out[name] = f->number;
    }
  }
  return out;
}

}  // namespace

namespace {

/// Scans one events.jsonl into `run`. Top-level streams own the
/// run_start..run_end bracket and the wall clock; shard sub-streams
/// (is_shard) only contribute their verdict events — their own bracket
/// describes the shard, not the run.
void scan_events(const std::string& events_path, RunData& run,
                 bool is_shard) {
  std::ifstream events(events_path);
  if (!events) throw std::runtime_error("cannot open " + events_path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(events, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    auto event = parse_json(line, &error);
    if (!event)
      throw std::runtime_error(events_path + " line " +
                               std::to_string(line_no) + ": " + error);
    ++run.event_count;
    const std::string type = event->member_string("type", "");
    if (type == "run_start") {
      if (!is_shard) run.has_run_start = true;
    } else if (type == "run_end") {
      if (!is_shard) {
        run.has_run_end = true;
        run.wall_seconds = event->member_number("wall_s", -1.0);
      }
    } else if (type == "element_assessed" || type == "kpi_verdict") {
      run.verdicts[verdict_key(*event, type)] =
          event->member_string("verdict", "?");
    }
  }
}

}  // namespace

RunData load_run_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  RunData run;
  run.dir = dir;
  run.manifest = parse_file((fs::path(dir) / "run_manifest.json").string());

  scan_events((fs::path(dir) / "events.jsonl").string(), run,
              /*is_shard=*/false);

  // A sharded run persists its assessment events per shard
  // (shard-NN/events.jsonl). Stitching them back in makes the loaded
  // verdict set identical to an unsharded run's, so diff-runs compares
  // sharded and unsharded runs directly.
  std::vector<std::string> shard_events;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_directory()) continue;
    if (entry.path().filename().string().rfind("shard-", 0) != 0) continue;
    const fs::path p = entry.path() / "events.jsonl";
    if (fs::exists(p)) shard_events.push_back(p.string());
  }
  std::sort(shard_events.begin(), shard_events.end());
  for (const std::string& path : shard_events)
    scan_events(path, run, /*is_shard=*/true);

  const std::string metrics_path = (fs::path(dir) / "metrics.json").string();
  if (fs::exists(metrics_path)) run.metrics = parse_file(metrics_path);
  return run;
}

RunDiffReport diff_runs(const RunData& a, const RunData& b,
                        const DiffThresholds& thresholds) {
  RunDiffReport report;
  const bool gate_manifest = !thresholds.ignore_manifest;
  // Set while comparing the manifests, consumed by the metric comparison:
  // when the two runs sampled under different adaptive configurations, the
  // volume-of-computation metrics (litmus.iterations, litmus.fit.*,
  // rank_test.*) differ by construction — the verdict set is the signal
  // there, so those metrics turn informational. The adaptive config flags
  // themselves stay GATING (an adaptive-on run is not interchangeable
  // with an adaptive-off run), and litmus.adaptive.* diagnostics never
  // gate: they describe how the budget was spent, not what was concluded.
  bool adaptive_cfg_differs = false;

  // --- manifest ---------------------------------------------------------
  compare_scalar(report.manifest, a.manifest, b.manifest, "tool",
                 gate_manifest);
  compare_scalar(report.manifest, a.manifest, b.manifest, "version",
                 gate_manifest);
  compare_scalar(report.manifest, a.manifest, b.manifest, "build_flags",
                 gate_manifest);
  compare_scalar(report.manifest, a.manifest, b.manifest, "seed",
                 gate_manifest);
  compare_scalar(report.manifest, a.manifest, b.manifest, "rng_scheme",
                 gate_manifest);
  compare_scalar(report.manifest, a.manifest, b.manifest, "threads",
                 /*gating=*/false);
  // Dispatch tier is like the thread count: the default kernels are
  // bit-identical across tiers (DESIGN.md §13), so a scalar run and an
  // AVX-512 run of the same inputs are equivalent. fast_math gates — the
  // reassociated kernels may round differently.
  compare_scalar(report.manifest, a.manifest, b.manifest, "simd_detected",
                 /*gating=*/false);
  compare_scalar(report.manifest, a.manifest, b.manifest, "simd_dispatch",
                 /*gating=*/false);
  compare_scalar(report.manifest, a.manifest, b.manifest, "fast_math",
                 gate_manifest);
  {
    // Flags that cannot change results are reported but never gate:
    // output destinations differ between any two runs by construction
    // (each run writes its own directory), the panel-cache budget only
    // trades rebuild time for memory (DESIGN.md §10), and the snapshot
    // cache plus the ingest.* source notes only change how the input was
    // *loaded* — a snapshot-loaded store is bit-identical to the parsed
    // one (DESIGN.md §11).
    auto cfg_a = object_as_map(a.manifest.find("config"));
    auto cfg_b = object_as_map(b.manifest.find("config"));
    // Adaptive-sampling signature, defaults filled in for absent flags so
    // an old run (no adaptive flags recorded) compares as adaptive-off.
    const auto adaptive_sig = [](const std::map<std::string, std::string>& c) {
      const auto get = [&](const char* k, const char* dflt) {
        const auto it = c.find(k);
        return it == c.end() ? std::string(dflt) : it->second;
      };
      return get("--adaptive-sampling", "off") + "/" +
             get("--min-iterations", "8") + "/" +
             get("--stability-rounds", "2");
    };
    adaptive_cfg_differs = adaptive_sig(cfg_a) != adaptive_sig(cfg_b);
    // The live observability plane is read-only: whether a run served
    // scrapes (and on which ephemeral port) cannot change its results,
    // so --serve and the recorded serve.addr never gate.
    // --shards / --store / --series-snap are informational for the same
    // reason as --threads: the mapped store serves bit-identical windows
    // and any shard count merges to the same verdicts (DESIGN.md §15).
    // Window/iteration flags (--before-bins, --after-bins, --iterations)
    // stay gating — they change what is computed.
    const auto informational = [](const std::string& k) {
      for (const char* name :
           {"--events-jsonl", "--metrics-json", "--trace-json",
            "--panel-cache-mb", "--snapshot-cache", "--simd", "--serve",
            "--ready-stale-ms", "--profile-json", "--profile-sample",
            "--shards", "--store", "--series-snap", "--series"})
        if (k == name) return true;
      return k.starts_with("ingest.") || k.starts_with("serve.") ||
             k.starts_with("shard.") || k.starts_with("store.");
    };
    std::map<std::string, std::string> sink_a, sink_b;
    for (auto it = cfg_a.begin(); it != cfg_a.end();) {
      if (informational(it->first)) {
        sink_a[it->first] = it->second;
        it = cfg_a.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = cfg_b.begin(); it != cfg_b.end();) {
      if (informational(it->first)) {
        sink_b[it->first] = it->second;
        it = cfg_b.erase(it);
      } else {
        ++it;
      }
    }
    compare_maps(report.manifest, cfg_a, cfg_b, "config", gate_manifest);
    compare_maps(report.manifest, sink_a, sink_b, "config",
                 /*gating=*/false);
  }
  compare_maps(report.manifest, inputs_as_map(a.manifest),
               inputs_as_map(b.manifest), "input", gate_manifest);

  // --- verdicts ---------------------------------------------------------
  const std::pair<const char*, const RunData*> sides[] = {{"A", &a},
                                                          {"B", &b}};
  for (const auto& [side, run] : sides) {
    if (!run->has_run_start || !run->has_run_end)
      report.verdicts.push_back(
          {std::string("run ") + side +
               ": event stream lacks the run_start..run_end bracket",
           false});
  }
  {
    std::set<std::string> keys;
    for (const auto& [k, _] : a.verdicts) keys.insert(k);
    for (const auto& [k, _] : b.verdicts) keys.insert(k);
    report.verdicts_compared = keys.size();
    for (const std::string& k : keys) {
      const auto ia = a.verdicts.find(k);
      const auto ib = b.verdicts.find(k);
      if (ia == a.verdicts.end()) {
        ++report.verdict_flips;
        report.verdicts.push_back(
            {k + ": only in B (" + ib->second + ")", true});
      } else if (ib == b.verdicts.end()) {
        ++report.verdict_flips;
        report.verdicts.push_back(
            {k + ": only in A (" + ia->second + ")", true});
      } else if (ia->second != ib->second) {
        ++report.verdict_flips;
        report.verdicts.push_back(
            {k + ": " + ia->second + " -> " + ib->second, true});
      }
    }
  }

  // --- metrics ----------------------------------------------------------
  // litmus.adaptive.* diagnostics describe how the sampling budget was
  // spent, not what was concluded — they never gate. The volume-of-
  // computation metrics (litmus.iterations, litmus.fit.*, and the
  // rank_test.* call counters/distributions, which also count the
  // stability checkpoints' diagnostic tests) gate only while the two runs
  // sampled under the same adaptive configuration; across configs they
  // differ by construction and the verdict set carries the signal.
  const auto metric_informational = [&](const std::string& n) {
    if (n.starts_with("litmus.adaptive.")) return true;
    return adaptive_cfg_differs &&
           (n == "litmus.iterations" || n.starts_with("litmus.fit.") ||
            n.starts_with("rank_test."));
  };
  if (a.metrics.is_object() && b.metrics.is_object()) {
    const auto ca = metrics_section(a.metrics, "counters", nullptr);
    const auto cb = metrics_section(b.metrics, "counters", nullptr);
    std::set<std::string> names;
    for (const auto& [n, _] : ca) names.insert(n);
    for (const auto& [n, _] : cb) names.insert(n);
    for (const std::string& n : names) {
      if (scheduling_dependent(n)) continue;
      const double va = ca.contains(n) ? ca.at(n) : -1.0;
      const double vb = cb.contains(n) ? cb.at(n) : -1.0;
      if (va != vb) {
        const bool gate = !metric_informational(n);
        report.metrics.push_back({"counter " + n + ": " + fmt_exact(va) +
                                      " -> " + fmt_exact(vb) +
                                      (gate ? "" : " (informational)"),
                                  gate});
      }
    }

    const auto ha = metrics_section(a.metrics, "histograms", "p50");
    const auto hb = metrics_section(b.metrics, "histograms", "p50");
    names.clear();
    for (const auto& [n, _] : ha) names.insert(n);
    for (const auto& [n, _] : hb) names.insert(n);
    for (const std::string& n : names) {
      if (scheduling_dependent(n)) continue;
      const bool gate = !metric_informational(n);
      if (!ha.contains(n) || !hb.contains(n)) {
        report.metrics.push_back(
            {"histogram " + n + ": only in " +
                 (ha.contains(n) ? "A" : "B") +
                 (gate ? "" : " (informational)"),
             gate});
        continue;
      }
      const double d = rel_delta(ha.at(n), hb.at(n));
      if (d > thresholds.metric_rel_tolerance)
        report.metrics.push_back(
            {"histogram " + n + " p50: " + fmt(ha.at(n)) + " -> " +
                 fmt(hb.at(n)) + " (" + fmt(d * 100.0) + "% > " +
                 fmt(thresholds.metric_rel_tolerance * 100.0) + "%" +
                 (gate ? "" : ", informational") + ")",
             gate});
    }
  }
  if (a.wall_seconds >= 0.0 && b.wall_seconds >= 0.0) {
    const double d = rel_delta(a.wall_seconds, b.wall_seconds);
    const bool gate = thresholds.wall_rel_tolerance > 0.0 &&
                      d > thresholds.wall_rel_tolerance;
    if (gate || d > 0.0)
      report.metrics.push_back(
          {"wall_s: " + fmt(a.wall_seconds) + " -> " +
               fmt(b.wall_seconds) + " (" + fmt(d * 100.0) + "%" +
               (gate ? "" : ", informational") + ")",
           gate});
  }

  const auto any_gating = [](const std::vector<DiffLine>& lines) {
    for (const DiffLine& l : lines)
      if (l.gating) return true;
    return false;
  };
  report.drift = any_gating(report.manifest) ||
                 any_gating(report.metrics) ||
                 report.verdict_flips > thresholds.max_verdict_flips;
  return report;
}

std::string format_run_diff(const RunDiffReport& report, const RunData& a,
                            const RunData& b) {
  std::ostringstream os;
  os << "=== diff-runs: " << a.dir << " vs " << b.dir << " ===\n";
  const auto section = [&](const char* name,
                           const std::vector<DiffLine>& lines) {
    os << name << ":";
    if (lines.empty()) {
      os << " identical\n";
      return;
    }
    os << '\n';
    for (const DiffLine& l : lines)
      os << "  " << (l.gating ? "[drift] " : "") << l.text << '\n';
  };
  section("manifest", report.manifest);
  section("verdicts", report.verdicts);
  os << "  (" << report.verdicts_compared << " verdict(s) compared, "
     << report.verdict_flips << " flip(s))\n";
  section("metrics", report.metrics);
  os << "result: "
     << (report.drift ? "DRIFT — runs are not equivalent"
                      : "no drift — runs are equivalent")
     << '\n';
  return os.str();
}

}  // namespace litmus::obs
