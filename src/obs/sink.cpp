#include "obs/sink.h"

#include <cstdio>
#include <sstream>

#include "obs/json.h"
#include "obs/manifest.h"

namespace litmus::obs {
namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void histogram_fields(JsonWriter& w, const HistogramSnapshot& h) {
  w.member("count", h.count)
      .member("sum", h.sum)
      .member("min", h.min)
      .member("max", h.max)
      .member("mean", h.mean())
      .member("p50", h.p50)
      .member("p90", h.p90)
      .member("p95", h.p95)
      .member("p99", h.p99);
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot,
                        const RunManifest* manifest) {
  JsonWriter w(out);
  w.begin_object();
  if (manifest) {
    w.key("manifest");
    manifest->write(w);
  }
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) w.member(name, value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) w.member(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : snapshot.histograms) {
    w.key(name).begin_object();
    histogram_fields(w, h);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  out << '\n';
}

void write_metrics_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "# kind, name, value... (histogram: count, sum, min, max, p50, "
         "p90, p95, p99)\n";
  for (const auto& [name, value] : snapshot.counters)
    out << "counter," << name << ',' << value << '\n';
  for (const auto& [name, value] : snapshot.gauges)
    out << "gauge," << name << ',' << fmt(value) << '\n';
  for (const auto& [name, h] : snapshot.histograms)
    out << "histogram," << name << ',' << h.count << ',' << fmt(h.sum) << ','
        << fmt(h.min) << ',' << fmt(h.max) << ',' << fmt(h.p50) << ','
        << fmt(h.p90) << ',' << fmt(h.p95) << ',' << fmt(h.p99) << '\n';
}

std::string format_metrics_summary(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  const auto pad = [](std::string s, std::size_t width) {
    if (s.size() < width) s.resize(width, ' ');
    return s;
  };
  if (!snapshot.counters.empty()) {
    os << "counters:\n";
    for (const auto& [name, value] : snapshot.counters)
      os << "  " << pad(name, 36) << ' ' << value << '\n';
  }
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges)
      os << "  " << pad(name, 36) << ' ' << fmt(value) << '\n';
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:                            count     mean      p50  "
          "    p95      p99\n";
    for (const auto& [name, h] : snapshot.histograms)
      os << "  " << pad(name, 36) << ' ' << pad(std::to_string(h.count), 9)
         << pad(fmt(h.mean()), 9) << pad(fmt(h.p50), 9) << pad(fmt(h.p95), 9)
         << fmt(h.p99) << '\n';
  }
  return os.str();
}

void write_trace_json(std::ostream& out, std::span<const SpanRecord> spans,
                      std::uint64_t epoch_ns, const RunManifest* manifest) {
  JsonWriter w(out);
  w.begin_object();
  if (manifest) {
    w.key("manifest");
    manifest->write(w);
  }
  w.member("epoch_ns", epoch_ns);
  w.member("span_count", static_cast<std::uint64_t>(spans.size()));
  w.key("spans").begin_array();
  for (const SpanRecord& s : spans) {
    w.begin_object()
        .member("id", s.id)
        .member("parent", s.parent)
        .member("name", std::string_view(s.name))
        .member("thread", static_cast<std::uint64_t>(s.thread))
        .member("start_us", static_cast<double>(s.start_ns) / 1000.0)
        .member("duration_us", static_cast<double>(s.duration_ns) / 1000.0)
        .end_object();
  }
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace litmus::obs
