// Cross-run drift comparison: loads two persisted runs (the directory
// --events-jsonl writes into: run_manifest.json + events.jsonl +
// metrics.json) and reports what changed between them —
//
//   * manifest deltas: version, build flags, seed, RNG scheme, resolved
//     config, input fingerprints. Thread count and wall-clock timestamp
//     are reported but never gate: results are bit-identical at any
//     thread count (DESIGN.md §8) and timestamps always differ.
//   * verdict flips: every element_assessed / kpi_verdict event keyed by
//     (kpi, element, bin); a changed verdict, or a verdict present on only
//     one side, is a flip.
//   * metric drift: deterministic counters compared exactly and value
//     histograms (fit R², rank-test statistic, ...) compared at p50 within
//     a relative tolerance; scheduling-dependent metrics (stage.*,
//     parallel.*, litmus.worker.*) and gauges are informational only.
//     Wall time is compared only when a wall tolerance is configured —
//     machine noise should not fail a reproducibility audit by default.
//
// litmus_cli `diff-runs A/ B/` maps a gating finding to a nonzero exit
// code, turning tools/check_bench_regression.py's idea into a first-class
// capability that covers correctness as well as speed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace litmus::obs {

/// One run's persisted artifacts, as diff-runs consumes them.
struct RunData {
  std::string dir;
  JsonValue manifest;  ///< run_manifest.json (required)
  JsonValue metrics;   ///< metrics.json (kind == kNull when absent)
  /// Verdict by stable key, extracted from the event stream.
  std::map<std::string, std::string> verdicts;
  std::uint64_t event_count = 0;
  bool has_run_start = false;
  bool has_run_end = false;
  double wall_seconds = -1.0;  ///< from run_end; -1 when absent
};

/// Loads dir/{run_manifest.json,events.jsonl,metrics.json}. The manifest
/// and event stream are required and every event line must parse; throws
/// std::runtime_error with a path-qualified message otherwise.
/// metrics.json is optional.
RunData load_run_dir(const std::string& dir);

struct DiffThresholds {
  std::size_t max_verdict_flips = 0;
  /// Relative tolerance on deterministic histogram quantiles.
  double metric_rel_tolerance = 0.25;
  /// Relative tolerance on run_end wall time; <= 0 disables the gate
  /// (wall time is then reported but never fails the diff).
  double wall_rel_tolerance = 0.0;
  /// Report manifest deltas without gating on them.
  bool ignore_manifest = false;
};

struct DiffLine {
  std::string text;
  bool gating = false;
};

struct RunDiffReport {
  std::vector<DiffLine> manifest;
  std::vector<DiffLine> verdicts;
  std::vector<DiffLine> metrics;
  std::size_t verdicts_compared = 0;
  std::size_t verdict_flips = 0;
  bool drift = false;  ///< any gating finding (incl. flips > max)
};

RunDiffReport diff_runs(const RunData& a, const RunData& b,
                        const DiffThresholds& thresholds = {});

std::string format_run_diff(const RunDiffReport& report, const RunData& a,
                            const RunData& b);

}  // namespace litmus::obs
