// Chrome/Perfetto trace_event export and import.
//
// write_chrome_trace emits the trace_event "JSON Object Format": a
// traceEvents array of duration events (ph "B"/"E" pairs with microsecond
// timestamps relative to the tracer epoch) plus process/thread metadata
// events (ph "M") naming every registered thread, loadable directly in
// chrome://tracing and ui.perfetto.dev. Events are emitted per thread in
// stack order (every span closes before anything that starts after it
// ends), so any conformant viewer reconstructs the nesting the RAII spans
// had at record time; the span id and parent-span id travel in each B
// event's args, which is how cross-thread parent edges survive the round
// trip through the file.
//
// parse_trace_events is the import half behind `litmus_cli profile`: it
// accepts this writer's B/E format, "X" (complete) events from other
// producers, and the in-house --trace-json span-list format.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/profile.h"

namespace litmus::obs {

struct JsonValue;
struct RunManifest;

/// Writes `spans` (time-sorted or not; the writer sorts per thread) as
/// {"traceEvents":[...],"displayTimeUnit":"ms","otherData":{...}}.
/// dropped_spans and the optional manifest are recorded in otherData so a
/// truncated or foreign trace is self-describing.
void write_chrome_trace(
    std::ostream& out, std::span<const SpanRecord> spans,
    std::uint64_t epoch_ns,
    std::span<const std::pair<std::uint32_t, std::string>> thread_names,
    std::uint64_t dropped_spans = 0, const RunManifest* manifest = nullptr);

struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::vector<std::pair<std::uint32_t, std::string>> thread_names;
};

/// Parses a trace document (chrome traceEvents object/array or the legacy
/// {"spans":[...]} shape) back into events. Returns nullopt on a document
/// that is not a recognizable trace, with a reason in `error`.
std::optional<ParsedTrace> parse_trace_events(const JsonValue& doc,
                                              std::string* error = nullptr);

}  // namespace litmus::obs
