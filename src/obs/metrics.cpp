#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace litmus::obs {
namespace {

#if LITMUS_OBS_ENABLED
std::atomic<bool> g_enabled{false};
#endif

std::atomic<std::uint32_t> g_next_thread{0};

}  // namespace

#if LITMUS_OBS_ENABLED
bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint32_t thread_index() noexcept {
  thread_local const std::uint32_t idx =
      g_next_thread.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

Histogram::Histogram() {
  for (auto& s : stripes_) s.buckets.assign(kBuckets, 0);
}

std::size_t Histogram::bucket_of(double v) noexcept {
  if (v == 0.0 || std::isnan(v)) return kMagBuckets;  // center bucket
  const double a = std::fabs(v);
  int e = 0;
  const double m = std::frexp(a, &e);  // a = m * 2^e, m in [0.5, 1)
  // Rebase to mantissa in [1, 2) with exponent e-1.
  int exp = std::clamp(e - 1, kExpMin, kExpMax);
  int sub = static_cast<int>((2.0 * m - 1.0) * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  if (e - 1 < kExpMin) sub = 0;                  // underflow: smallest bucket
  if (e - 1 > kExpMax) sub = kSubBuckets - 1;    // overflow: largest bucket
  const std::size_t mag =
      static_cast<std::size_t>(exp - kExpMin) * kSubBuckets +
      static_cast<std::size_t>(sub);
  return v > 0 ? kMagBuckets + 1 + mag : kMagBuckets - 1 - mag;
}

double Histogram::bucket_value(std::size_t bucket) noexcept {
  if (bucket == kMagBuckets) return 0.0;
  const bool positive = bucket > kMagBuckets;
  const std::size_t mag =
      positive ? bucket - kMagBuckets - 1 : kMagBuckets - 1 - bucket;
  const int exp = kExpMin + static_cast<int>(mag / kSubBuckets);
  const int sub = static_cast<int>(mag % kSubBuckets);
  const double lo =
      std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
  const double hi =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
  const double mid = 0.5 * (lo + hi);
  return positive ? mid : -mid;
}

double Histogram::bucket_upper(std::size_t bucket) noexcept {
  if (bucket == kMagBuckets) return 0.0;
  const bool positive = bucket > kMagBuckets;
  const std::size_t mag =
      positive ? bucket - kMagBuckets - 1 : kMagBuckets - 1 - bucket;
  const int exp = kExpMin + static_cast<int>(mag / kSubBuckets);
  const int sub = static_cast<int>(mag % kSubBuckets);
  const double lo =
      std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, exp);
  const double hi =
      std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, exp);
  // A positive bucket covers [lo, hi); its mirrored negative twin covers
  // (-hi, -lo], whose upper edge is -lo.
  return positive ? hi : -lo;
}

void Histogram::record(double v) noexcept {
  if (std::isnan(v)) return;
  Stripe& s = stripes_[thread_index() % kStripes];
  const std::size_t b = bucket_of(v);
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.buckets[b];
  if (s.count == 0) {
    s.min = s.max = v;
  } else {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  ++s.count;
  s.sum += v;
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<std::uint64_t> merged(kBuckets, 0);
  HistogramSnapshot out;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.count == 0) continue;
    if (out.count == 0) {
      out.min = s.min;
      out.max = s.max;
    } else {
      out.min = std::min(out.min, s.min);
      out.max = std::max(out.max, s.max);
    }
    out.count += s.count;
    out.sum += s.sum;
    for (std::size_t b = 0; b < kBuckets; ++b) merged[b] += s.buckets[b];
  }
  if (out.count == 0) return out;

  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(out.count)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      cum += merged[b];
      if (cum >= std::max<std::uint64_t>(rank, 1))
        return std::clamp(bucket_value(b), out.min, out.max);
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p90 = quantile(0.90);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);

  // Cumulative distribution at the non-empty buckets' upper edges, for
  // the Prometheus exporter. Dropping a point from a cumulative series
  // is lossless for monotonicity, so over-full histograms coalesce by
  // keeping every stride-th point (and always the last).
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (merged[b] == 0) continue;
    cum += merged[b];
    out.buckets.push_back({bucket_upper(b), cum});
  }
  if (out.buckets.size() > kMaxExportBuckets) {
    std::vector<HistogramBucket> kept;
    const std::size_t n = out.buckets.size();
    const std::size_t stride = (n + kMaxExportBuckets - 1) / kMaxExportBuckets;
    for (std::size_t i = stride - 1; i < n; i += stride)
      kept.push_back(out.buckets[i]);
    if (kept.empty() || kept.back().cumulative != out.count)
      kept.push_back(out.buckets.back());
    out.buckets = std::move(kept);
  }
  return out;
}

void Histogram::reset() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mu);
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
    s.count = 0;
    s.sum = s.min = s.max = 0.0;
  }
}

template <typename Map>
static auto& lookup(std::mutex& mu, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mu);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  using Metric = typename Map::mapped_type::element_type;
  return *map.emplace(std::string(name), std::make_unique<Metric>())
              .first->second;
}

Counter& Registry::counter(std::string_view name) {
  return lookup(mu_, counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  return lookup(mu_, gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  return lookup(mu_, histograms_, name);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_)
    out.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_)
    out.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_)
    out.histograms.emplace_back(name, h->snapshot());
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  // Intentionally immortal: pool workers record into the registry and can
  // outlive the start of static destruction on the main thread. See
  // thread_name_registry() in profile.cpp.
  static Registry* registry = new Registry;
  return *registry;
}

}  // namespace litmus::obs
