// Deterministic random utilities.
//
// Every stochastic component in this repository draws from an Rng carrying
// an explicit 64-bit seed so that simulations, tests and benches are
// reproducible run-to-run and machine-to-machine (we avoid
// std::*_distribution, whose output is implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace litmus::ts {

/// xoshiro256** with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mu, double sigma) noexcept;

  /// Bernoulli draw.
  bool chance(double p) noexcept;

  /// Derives an independent child stream; children with distinct tags do not
  /// collide even when drawn in different orders.
  Rng fork(std::uint64_t tag) const noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// k distinct indices drawn uniformly from [0, n), in ascending order.
/// Requires k <= n.
std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k);

/// As above, writing the sample into `out` and using `pool` as the index
/// pool — no allocation once both vectors' capacities are warm. Draws the
/// same sample as the allocating overload for the same Rng state.
void sample_without_replacement(Rng& rng, std::size_t n, std::size_t k,
                                std::vector<std::size_t>& pool,
                                std::vector<std::size_t>& out);

}  // namespace litmus::ts
