// Time-series container used throughout Litmus.
//
// A TimeSeries is a uniformly-binned sequence of KPI observations. Bins are
// identified by an integer index relative to an epoch; the bin width (in
// minutes) is carried alongside so daily and hourly series can coexist.
// Missing observations are represented as quiet NaNs and are skipped by all
// statistics in stats.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace litmus::ts {

/// Sentinel for a missing observation.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

/// Returns true when `v` denotes a missing observation.
bool is_missing(double v) noexcept;

/// Uniformly binned time-series.
///
/// Invariant: `start_bin()` addresses `values()[0]`; bin `start_bin()+i`
/// addresses `values()[i]`.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Constructs a series of `n` missing values starting at `start_bin`.
  TimeSeries(std::int64_t start_bin, std::size_t n, int bin_minutes = 60);

  /// Constructs a series from explicit values.
  TimeSeries(std::int64_t start_bin, std::vector<double> values,
             int bin_minutes = 60);

  std::int64_t start_bin() const noexcept { return start_bin_; }
  std::int64_t end_bin() const noexcept;  ///< one past the last bin
  int bin_minutes() const noexcept { return bin_minutes_; }
  std::size_t size() const noexcept { return values_.size(); }
  bool empty() const noexcept { return values_.empty(); }

  std::span<const double> values() const noexcept { return values_; }
  std::span<double> mutable_values() noexcept { return values_; }

  /// Value at absolute bin `bin`; kMissing when outside the series.
  double at_bin(std::int64_t bin) const noexcept;

  /// Sets the value at absolute bin `bin`; ignored when outside the series.
  void set_bin(std::int64_t bin, double v) noexcept;

  double operator[](std::size_t i) const noexcept { return values_[i]; }
  double& operator[](std::size_t i) noexcept { return values_[i]; }

  /// Number of non-missing observations.
  std::size_t observed_count() const noexcept;

  /// Sub-series covering absolute bins [from, to). Bins outside the series
  /// are clamped away; the result may be empty.
  TimeSeries slice_bins(std::int64_t from, std::int64_t to) const;

  /// Sub-series of the `n` bins ending just before `bin` (exclusive).
  TimeSeries window_before(std::int64_t bin, std::size_t n) const;

  /// Sub-series of the `n` bins starting at `bin` (inclusive).
  TimeSeries window_after(std::int64_t bin, std::size_t n) const;

  /// Non-missing values, in order, as a dense vector.
  std::vector<double> observed() const;

  /// Copies the values of absolute bins [from_bin, from_bin + out.size())
  /// into `out`: the overlap with this series is one contiguous memcpy,
  /// bins outside the series are filled with kMissing. The columnar
  /// counterpart of at_bin() for assembling design-matrix columns.
  void copy_range_into(std::int64_t from_bin,
                       std::span<double> out) const noexcept;

  /// Element-wise difference (this - other) over the overlapping bin range.
  /// Bins missing in either input are missing in the result.
  TimeSeries minus(const TimeSeries& other) const;

  /// Adds `delta` to every non-missing value in absolute bins [from, to).
  void add_level(std::int64_t from, std::int64_t to, double delta);

  /// Adds a linear ramp over [from, to): value at `from` gets 0, the last
  /// bin before `to` gets `delta` (linear in between).
  void add_ramp(std::int64_t from, std::int64_t to, double delta);

  /// Clamps every value into [lo, hi] (useful for ratio KPIs in [0,1]).
  void clamp(double lo, double hi) noexcept;

 private:
  std::int64_t start_bin_ = 0;
  int bin_minutes_ = 60;
  std::vector<double> values_;
};

/// Align several series onto their common overlapping bin range.
/// Returns the [from, to) range; empty range (from >= to) when disjoint.
struct BinRange {
  std::int64_t from = 0;
  std::int64_t to = 0;
  bool empty() const noexcept { return from >= to; }
  std::size_t size() const noexcept {
    return empty() ? 0 : static_cast<std::size_t>(to - from);
  }
};

BinRange common_range(std::span<const TimeSeries> series);

}  // namespace litmus::ts
