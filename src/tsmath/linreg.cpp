#include "tsmath/linreg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "tsmath/stats.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {

double LinearModel::predict_row(std::span<const double> row) const {
  if (row.size() != coefficients.size())
    throw std::invalid_argument("predict_row: size mismatch");
  double y = intercept;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (is_missing(row[i])) return kMissing;
    y += coefficients[i] * row[i];
  }
  return y;
}

std::vector<double> LinearModel::predict(const Matrix& design) const {
  if (design.cols() != coefficients.size())
    throw std::invalid_argument("predict: size mismatch");
  // Column-major accumulation in column order — the same per-row addition
  // sequence as predict_row, so results are bit-identical to it. A missing
  // regressor is NaN and propagates to the row's forecast on its own.
  std::vector<double> out(design.rows(), intercept);
  for (std::size_t c = 0; c < design.cols(); ++c) {
    const double coef = coefficients[c];
    const auto col = design.column(c);
    for (std::size_t r = 0; r < out.size(); ++r) out[r] += coef * col[r];
  }
  return out;
}

void LinearModel::predict_columns_into(const Matrix& design,
                                       std::span<const std::size_t> cols,
                                       std::vector<double>& out) const {
  if (cols.size() != coefficients.size())
    throw std::invalid_argument("predict_columns_into: size mismatch");
  out.assign(design.rows(), intercept);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    const double coef = coefficients[i];
    const auto col = design.column(cols[i]);
    for (std::size_t r = 0; r < out.size(); ++r) out[r] += coef * col[r];
  }
}

std::vector<double> qr_solve(const Matrix& a, std::span<const double> b,
                             double* condition) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (condition) *condition = 0.0;
  if (b.size() != m) throw std::invalid_argument("qr_solve: size mismatch");
  if (m < n) return {};

  // Working copies; R is built in place in `r`, b transformed in `rhs`.
  Matrix r(m, n);
  for (std::size_t c = 0; c < n; ++c) r.set_column(c, a.column(c));
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) return {};  // rank deficient
    if (r(k, k) > 0) norm = -norm;

    std::vector<double> v(m - k);
    v[0] = r(k, k) - norm;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0;
    for (double x : v) vtv += x * x;
    if (vtv == 0.0) return {};

    r(k, k) = norm;
    for (std::size_t i = k + 1; i < m; ++i) r(i, k) = 0.0;

    // Apply H = I - 2 v v^T / (v^T v) to remaining columns and rhs.
    for (std::size_t c = k + 1; c < n; ++c) {
      double dot = 0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, c);
      const double scale = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= scale * v[i - k];
    }
    double dot = 0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * rhs[i];
    const double scale = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back substitution on the upper-triangular system.
  // Guard against near-singular diagonals relative to the matrix scale.
  double max_diag = 0;
  double min_diag = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const double d = std::fabs(r(k, k));
    max_diag = std::max(max_diag, d);
    min_diag = std::min(min_diag, d);
  }
  if (max_diag == 0.0) return {};
  if (condition && min_diag > 0.0) *condition = max_diag / min_diag;

  std::vector<double> x(n, 0.0);
  for (std::size_t kk = n; kk-- > 0;) {
    if (std::fabs(r(kk, kk)) < 1e-12 * max_diag) return {};
    double s = rhs[kk];
    for (std::size_t c = kk + 1; c < n; ++c) s -= r(kk, c) * x[c];
    x[kk] = s / r(kk, kk);
  }
  return x;
}

LinearModel fit_ols(const Matrix& design, std::span<const double> y,
                    bool with_intercept) {
  LinearModel model;
  model.with_intercept = with_intercept;
  const std::size_t n_cols = design.cols();
  if (design.rows() != y.size())
    throw std::invalid_argument("fit_ols: row count mismatch");

  // Complete-case rows.
  std::vector<std::size_t> rows;
  rows.reserve(design.rows());
  for (std::size_t r = 0; r < design.rows(); ++r) {
    if (is_missing(y[r])) continue;
    bool complete = true;
    for (std::size_t c = 0; c < n_cols; ++c) {
      if (is_missing(design(r, c))) {
        complete = false;
        break;
      }
    }
    if (complete) rows.push_back(r);
  }

  const std::size_t aug = n_cols + (with_intercept ? 1 : 0);
  if (rows.size() < aug + 2) return model;  // not enough data

  Matrix a(rows.size(), aug);
  std::vector<double> b(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    std::size_t c_out = 0;
    if (with_intercept) a(i, c_out++) = 1.0;
    for (std::size_t c = 0; c < n_cols; ++c) a(i, c_out++) = design(r, c);
    b[i] = y[r];
  }

  const std::vector<double> sol = qr_solve(a, b, &model.condition);
  if (sol.empty()) return model;

  std::size_t c_in = 0;
  if (with_intercept) model.intercept = sol[c_in++];
  model.coefficients.assign(sol.begin() + static_cast<std::ptrdiff_t>(c_in),
                            sol.end());

  // Fit quality on the complete cases.
  double ss_res = 0;
  const double y_bar = mean(b);
  double ss_tot = 0;
  std::vector<double> row(n_cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    for (std::size_t c = 0; c < n_cols; ++c) row[c] = design(r, c);
    const double fit = model.predict_row(row);
    const double e = b[i] - fit;
    ss_res += e * e;
    ss_tot += (b[i] - y_bar) * (b[i] - y_bar);
  }
  model.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  const std::size_t dof = rows.size() - aug;
  model.residual_stddev =
      dof > 0 ? std::sqrt(ss_res / static_cast<double>(dof)) : 0.0;
  model.ok = true;
  return model;
}

}  // namespace litmus::ts
