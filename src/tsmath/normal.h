// Standard normal distribution helpers for the rank tests' large-sample
// approximations.
#pragma once

namespace litmus::ts {

/// Standard normal probability density.
double normal_pdf(double z);

/// Standard normal cumulative distribution function.
double normal_cdf(double z);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-9 over (0,1)).
double normal_quantile(double p);

/// Two-sided p-value for a standard-normal statistic.
double two_sided_p(double z);

}  // namespace litmus::ts
