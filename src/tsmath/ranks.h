// Ranking utilities shared by the rank-based tests in rank_tests.h.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace litmus::ts {

/// Mid-ranks (1-based): ties receive the average of the ranks they span.
/// Missing (NaN) inputs receive NaN ranks and do not consume rank mass.
std::vector<double> midranks(std::span<const double> xs);

/// Placement counts used by the Fligner-Policello robust rank-order test:
/// out[i] = #{ j : ys[j] < xs[i] } + 0.5 * #{ j : ys[j] == xs[i] }.
/// Missing values in either input are ignored (missing xs produce NaN).
std::vector<double> placements(std::span<const double> xs,
                               std::span<const double> ys);

/// Sum of t^3 - t over tie groups of size t; used in the Wilcoxon
/// tie-corrected variance.
double tie_correction_sum(std::span<const double> xs);

}  // namespace litmus::ts
