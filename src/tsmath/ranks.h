// Ranking utilities shared by the rank-based tests in rank_tests.h.
//
// The *_into variants are the hot-path entry points: they write into
// caller-sized output spans and route all internal scratch through the
// calling thread's par::Workspace (slots 16-17; see ranks.cpp), so the
// steady-state assessment loop performs no heap allocation. The
// allocating overloads remain as thin wrappers for callers off the hot
// path.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace litmus::ts {

/// Mid-ranks (1-based): ties receive the average of the ranks they span.
/// Missing (NaN) inputs receive NaN ranks and do not consume rank mass.
std::vector<double> midranks(std::span<const double> xs);

/// As midranks(), into `out` (size == xs.size()). When `tie_correction`
/// is non-null it additionally receives Σ (t³ - t) over the tie groups —
/// the same value tie_correction_sum(xs) returns — computed in the same
/// pass over the already-sorted data, saving the Wilcoxon test a second
/// sort of the pooled sample.
void midranks_into(std::span<const double> xs, std::span<double> out,
                   double* tie_correction = nullptr);

/// Placement counts used by the Fligner-Policello robust rank-order test:
/// out[i] = #{ j : ys[j] < xs[i] } + 0.5 * #{ j : ys[j] == xs[i] }.
/// Missing values in either input are ignored (missing xs produce NaN).
std::vector<double> placements(std::span<const double> xs,
                               std::span<const double> ys);

/// As placements(), into `out` (size == xs.size()). Picks between the
/// SIMD counting kernel and the sort+binary-search path on input sizes
/// alone (deterministic); both produce exact half-integer counts, so the
/// choice can never change a result bit.
void placements_into(std::span<const double> xs, std::span<const double> ys,
                     std::span<double> out);

/// The two placement paths, individually addressable so tests can pin
/// them against each other and against the brute-force oracle.
void placements_counting_into(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<double> out);
void placements_sorted_into(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<double> out);

/// Both placement directions of one sample pair: u_x[i] counts ys below
/// xs[i], u_y[j] counts xs below ys[j] (ties half). Equivalent to two
/// placements_into calls, but the sorted path sorts each sample exactly
/// once instead of re-sorting the control sample per direction.
void placement_pair_into(std::span<const double> xs,
                         std::span<const double> ys, std::span<double> u_x,
                         std::span<double> u_y);

/// Sum of t^3 - t over tie groups of size t; used in the Wilcoxon
/// tie-corrected variance.
double tie_correction_sum(std::span<const double> xs);

}  // namespace litmus::ts
