#include "tsmath/stats.h"

#include <algorithm>
#include <cmath>

#include "tsmath/ranks.h"

namespace litmus::ts {
namespace {

std::vector<double> observed_of(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double v : xs)
    if (!is_missing(v)) out.push_back(v);
  return out;
}

// Collects indices where both inputs are observed.
void pairwise_complete(std::span<const double> xs, std::span<const double> ys,
                       std::vector<double>& x_out, std::vector<double>& y_out) {
  const std::size_t n = std::min(xs.size(), ys.size());
  x_out.clear();
  y_out.clear();
  x_out.reserve(n);
  y_out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_missing(xs[i]) && !is_missing(ys[i])) {
      x_out.push_back(xs[i]);
      y_out.push_back(ys[i]);
    }
  }
}

}  // namespace

double mean(std::span<const double> xs) {
  double sum = 0;
  std::size_t n = 0;
  for (double v : xs) {
    if (is_missing(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? kMissing : sum / static_cast<double>(n);
}

double mean(const TimeSeries& s) { return mean(s.values()); }

double variance(std::span<const double> xs) {
  const double m = mean(xs);
  if (is_missing(m)) return kMissing;
  double ss = 0;
  std::size_t n = 0;
  for (double v : xs) {
    if (is_missing(v)) continue;
    const double d = v - m;
    ss += d * d;
    ++n;
  }
  return n < 2 ? kMissing : ss / static_cast<double>(n - 1);
}

double stddev(std::span<const double> xs) {
  const double v = variance(xs);
  return is_missing(v) ? kMissing : std::sqrt(v);
}

double min_value(std::span<const double> xs) {
  double best = kMissing;
  for (double v : xs) {
    if (is_missing(v)) continue;
    if (is_missing(best) || v < best) best = v;
  }
  return best;
}

double max_value(std::span<const double> xs) {
  double best = kMissing;
  for (double v : xs) {
    if (is_missing(v)) continue;
    if (is_missing(best) || v > best) best = v;
  }
  return best;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> v = observed_of(xs);
  if (v.empty()) return kMissing;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double h = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(h));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(h));
  if (lo == hi) return v[lo];
  const double frac = h - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }
double median(const TimeSeries& s) { return median(s.values()); }

double mad(std::span<const double> xs) {
  const double med = median(xs);
  if (is_missing(med)) return kMissing;
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double v : xs)
    if (!is_missing(v)) dev.push_back(std::fabs(v - med));
  // 1.4826 = 1/Phi^-1(3/4): consistency constant for the normal distribution.
  return 1.4826 * median(dev);
}

double iqr(std::span<const double> xs) {
  const double lo = quantile(xs, 0.25);
  const double hi = quantile(xs, 0.75);
  if (is_missing(lo) || is_missing(hi)) return kMissing;
  return hi - lo;
}

double covariance(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> x, y;
  pairwise_complete(xs, ys, x, y);
  if (x.size() < 2) return kMissing;
  const double mx = mean(x);
  const double my = mean(y);
  double s = 0;
  for (std::size_t i = 0; i < x.size(); ++i) s += (x[i] - mx) * (y[i] - my);
  return s / static_cast<double>(x.size() - 1);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> x, y;
  pairwise_complete(xs, ys, x, y);
  if (x.size() < 2) return kMissing;
  const double sx = stddev(x);
  const double sy = stddev(y);
  if (is_missing(sx) || is_missing(sy) || sx == 0.0 || sy == 0.0)
    return kMissing;
  return covariance(x, y) / (sx * sy);
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> x, y;
  pairwise_complete(xs, ys, x, y);
  if (x.size() < 2) return kMissing;
  return pearson(midranks(x), midranks(y));
}

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  if (lag == 0) return 1.0;
  if (xs.size() <= lag) return kMissing;
  return pearson(xs.subspan(0, xs.size() - lag), xs.subspan(lag));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  std::vector<double> v = observed_of(xs);
  s.n = v.size();
  if (v.empty()) return s;
  s.mean = mean(v);
  s.stddev = stddev(v);
  s.min = min_value(v);
  s.q25 = quantile(v, 0.25);
  s.median = quantile(v, 0.5);
  s.q75 = quantile(v, 0.75);
  s.max = max_value(v);
  return s;
}

Summary summarize(const TimeSeries& s) { return summarize(s.values()); }

std::vector<double> robust_zscores(std::span<const double> xs) {
  const double med = median(xs);
  const double scale = mad(xs);
  std::vector<double> out(xs.begin(), xs.end());
  if (is_missing(med) || is_missing(scale) || scale == 0.0) {
    std::fill(out.begin(), out.end(), kMissing);
    return out;
  }
  for (double& v : out)
    if (!is_missing(v)) v = (v - med) / scale;
  return out;
}

}  // namespace litmus::ts
