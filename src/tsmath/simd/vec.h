// Per-ISA 8-lane double "block" types behind the SIMD kernel layer.
//
// Every kernel in kernels_generic.h is written once against this
// interface and instantiated per tier; a block always models the SAME
// logical shape — 8 doubles, lane j holding row r+j of the current
// 8-row span — regardless of how many hardware registers back it
// (AVX-512: one, AVX2: two, SSE2/NEON: four, scalar: eight doubles).
// Because each lane performs the identical IEEE-754 operation sequence
// in every tier, instantiations are bit-identical to each other; only
// madd_fma (used by the --fast-math-kernels mode) fuses the rounding.
//
// Everything here lives in an ANONYMOUS namespace on purpose: each tier
// translation unit is compiled with different -m flags, so letting the
// linker merge instantiations across TUs (the default for inline/weak
// symbols) could hand the scalar table code compiled for AVX-512 —
// an illegal instruction on older hosts. Internal linkage keeps every
// TU's copy private to it. This header must only be included from the
// kernels_*.cpp tier files.
//
// Tier guards key off the compiler's own macros (__AVX2__ et al.), which
// the per-file -m options in src/tsmath/CMakeLists.txt define; a type is
// simply absent in builds that cannot emit its instructions.
#pragma once

#include <cmath>
#include <cstddef>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace litmus::ts::simd {
namespace {

// ---------------------------------------------------------------- scalar
// Eight plain doubles. The reference tier: every other block type must
// match it bit for bit through madd/store, mask for mask through the
// compare interface.
struct ScalarBlock {
  double l[8];

  static ScalarBlock zero() noexcept {
    return ScalarBlock{{0, 0, 0, 0, 0, 0, 0, 0}};
  }
  static ScalarBlock load(const double* p) noexcept {
    ScalarBlock b;
    for (int j = 0; j < 8; ++j) b.l[j] = p[j];
    return b;
  }
  static ScalarBlock broadcast(double x) noexcept {
    ScalarBlock b;
    for (int j = 0; j < 8; ++j) b.l[j] = x;
    return b;
  }
  void madd(const ScalarBlock& a, const ScalarBlock& b) noexcept {
    for (int j = 0; j < 8; ++j) l[j] += a.l[j] * b.l[j];
  }
  void madd_fma(const ScalarBlock& a, const ScalarBlock& b) noexcept {
    for (int j = 0; j < 8; ++j) l[j] = std::fma(a.l[j], b.l[j], l[j]);
  }
  void add(const ScalarBlock& o) noexcept {
    for (int j = 0; j < 8; ++j) l[j] += o.l[j];
  }
  void store(double* out) const noexcept {
    for (int j = 0; j < 8; ++j) out[j] = l[j];
  }
  unsigned lt_mask(const ScalarBlock& x) const noexcept {
    unsigned m = 0;
    for (int j = 0; j < 8; ++j) m |= (l[j] < x.l[j] ? 1u : 0u) << j;
    return m;
  }
  unsigned eq_mask(const ScalarBlock& x) const noexcept {
    unsigned m = 0;
    for (int j = 0; j < 8; ++j) m |= (l[j] == x.l[j] ? 1u : 0u) << j;
    return m;
  }
  unsigned nan_mask() const noexcept {
    unsigned m = 0;
    for (int j = 0; j < 8; ++j) m |= (l[j] != l[j] ? 1u : 0u) << j;
    return m;
  }
};

// ------------------------------------------------------------------ sse2
#if defined(__SSE2__)
struct Sse2Block {
  __m128d v[4];  // lanes {0,1}, {2,3}, {4,5}, {6,7}

  static Sse2Block zero() noexcept {
    Sse2Block b;
    for (int i = 0; i < 4; ++i) b.v[i] = _mm_setzero_pd();
    return b;
  }
  static Sse2Block load(const double* p) noexcept {
    Sse2Block b;
    for (int i = 0; i < 4; ++i) b.v[i] = _mm_loadu_pd(p + 2 * i);
    return b;
  }
  static Sse2Block broadcast(double x) noexcept {
    Sse2Block b;
    for (int i = 0; i < 4; ++i) b.v[i] = _mm_set1_pd(x);
    return b;
  }
  void madd(const Sse2Block& a, const Sse2Block& b) noexcept {
    for (int i = 0; i < 4; ++i)
      v[i] = _mm_add_pd(v[i], _mm_mul_pd(a.v[i], b.v[i]));
  }
  // SSE2 predates FMA; the fast-math mode degenerates to the exact one.
  void madd_fma(const Sse2Block& a, const Sse2Block& b) noexcept {
    madd(a, b);
  }
  void add(const Sse2Block& o) noexcept {
    for (int i = 0; i < 4; ++i) v[i] = _mm_add_pd(v[i], o.v[i]);
  }
  void store(double* out) const noexcept {
    for (int i = 0; i < 4; ++i) _mm_storeu_pd(out + 2 * i, v[i]);
  }
  unsigned lt_mask(const Sse2Block& x) const noexcept {
    unsigned m = 0;
    for (int i = 0; i < 4; ++i)
      m |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(v[i], x.v[i])))
           << (2 * i);
    return m;
  }
  unsigned eq_mask(const Sse2Block& x) const noexcept {
    unsigned m = 0;
    for (int i = 0; i < 4; ++i)
      m |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmpeq_pd(v[i], x.v[i])))
           << (2 * i);
    return m;
  }
  unsigned nan_mask() const noexcept {
    unsigned m = 0;
    for (int i = 0; i < 4; ++i)
      m |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmpunord_pd(v[i], v[i])))
           << (2 * i);
    return m;
  }
};
#endif  // __SSE2__

// ------------------------------------------------------------------ avx2
#if defined(__AVX2__)
struct Avx2Block {
  __m256d v[2];  // lanes {0..3}, {4..7}

  static Avx2Block zero() noexcept {
    return Avx2Block{{_mm256_setzero_pd(), _mm256_setzero_pd()}};
  }
  static Avx2Block load(const double* p) noexcept {
    return Avx2Block{{_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)}};
  }
  static Avx2Block broadcast(double x) noexcept {
    return Avx2Block{{_mm256_set1_pd(x), _mm256_set1_pd(x)}};
  }
  // Separate multiply and add: one rounding each, exactly like the scalar
  // reference. FMA is reserved for madd_fma (fast-math mode).
  void madd(const Avx2Block& a, const Avx2Block& b) noexcept {
    v[0] = _mm256_add_pd(v[0], _mm256_mul_pd(a.v[0], b.v[0]));
    v[1] = _mm256_add_pd(v[1], _mm256_mul_pd(a.v[1], b.v[1]));
  }
  void madd_fma(const Avx2Block& a, const Avx2Block& b) noexcept {
#if defined(__FMA__)
    v[0] = _mm256_fmadd_pd(a.v[0], b.v[0], v[0]);
    v[1] = _mm256_fmadd_pd(a.v[1], b.v[1], v[1]);
#else
    madd(a, b);
#endif
  }
  void add(const Avx2Block& o) noexcept {
    v[0] = _mm256_add_pd(v[0], o.v[0]);
    v[1] = _mm256_add_pd(v[1], o.v[1]);
  }
  void store(double* out) const noexcept {
    _mm256_storeu_pd(out, v[0]);
    _mm256_storeu_pd(out + 4, v[1]);
  }
  unsigned lt_mask(const Avx2Block& x) const noexcept {
    const unsigned lo = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[0], x.v[0], _CMP_LT_OQ)));
    const unsigned hi = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[1], x.v[1], _CMP_LT_OQ)));
    return lo | (hi << 4);
  }
  unsigned eq_mask(const Avx2Block& x) const noexcept {
    const unsigned lo = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[0], x.v[0], _CMP_EQ_OQ)));
    const unsigned hi = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[1], x.v[1], _CMP_EQ_OQ)));
    return lo | (hi << 4);
  }
  unsigned nan_mask() const noexcept {
    const unsigned lo = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[0], v[0], _CMP_UNORD_Q)));
    const unsigned hi = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(v[1], v[1], _CMP_UNORD_Q)));
    return lo | (hi << 4);
  }
};
#endif  // __AVX2__

// ---------------------------------------------------------------- avx512
#if defined(__AVX512F__)
struct Avx512Block {
  __m512d v;  // lanes 0..7 in one register

  static Avx512Block zero() noexcept {
    return Avx512Block{_mm512_setzero_pd()};
  }
  static Avx512Block load(const double* p) noexcept {
    return Avx512Block{_mm512_loadu_pd(p)};
  }
  static Avx512Block broadcast(double x) noexcept {
    return Avx512Block{_mm512_set1_pd(x)};
  }
  void madd(const Avx512Block& a, const Avx512Block& b) noexcept {
    v = _mm512_add_pd(v, _mm512_mul_pd(a.v, b.v));
  }
  void madd_fma(const Avx512Block& a, const Avx512Block& b) noexcept {
    v = _mm512_fmadd_pd(a.v, b.v, v);
  }
  void add(const Avx512Block& o) noexcept { v = _mm512_add_pd(v, o.v); }
  void store(double* out) const noexcept { _mm512_storeu_pd(out, v); }
  unsigned lt_mask(const Avx512Block& x) const noexcept {
    return _mm512_cmp_pd_mask(v, x.v, _CMP_LT_OQ);
  }
  unsigned eq_mask(const Avx512Block& x) const noexcept {
    return _mm512_cmp_pd_mask(v, x.v, _CMP_EQ_OQ);
  }
  unsigned nan_mask() const noexcept {
    return _mm512_cmp_pd_mask(v, v, _CMP_UNORD_Q);
  }
};
#endif  // __AVX512F__

// ------------------------------------------------------------------ neon
#if defined(__aarch64__)
struct NeonBlock {
  float64x2_t v[4];  // lanes {0,1}, {2,3}, {4,5}, {6,7}

  static NeonBlock zero() noexcept {
    NeonBlock b;
    for (int i = 0; i < 4; ++i) b.v[i] = vdupq_n_f64(0.0);
    return b;
  }
  static NeonBlock load(const double* p) noexcept {
    NeonBlock b;
    for (int i = 0; i < 4; ++i) b.v[i] = vld1q_f64(p + 2 * i);
    return b;
  }
  static NeonBlock broadcast(double x) noexcept {
    NeonBlock b;
    for (int i = 0; i < 4; ++i) b.v[i] = vdupq_n_f64(x);
    return b;
  }
  void madd(const NeonBlock& a, const NeonBlock& b) noexcept {
    for (int i = 0; i < 4; ++i)
      v[i] = vaddq_f64(v[i], vmulq_f64(a.v[i], b.v[i]));
  }
  void madd_fma(const NeonBlock& a, const NeonBlock& b) noexcept {
    for (int i = 0; i < 4; ++i) v[i] = vfmaq_f64(v[i], a.v[i], b.v[i]);
  }
  void add(const NeonBlock& o) noexcept {
    for (int i = 0; i < 4; ++i) v[i] = vaddq_f64(v[i], o.v[i]);
  }
  void store(double* out) const noexcept {
    for (int i = 0; i < 4; ++i) vst1q_f64(out + 2 * i, v[i]);
  }
  static unsigned mask2(uint64x2_t m, int shift) noexcept {
    return ((vgetq_lane_u64(m, 0) & 1u) | ((vgetq_lane_u64(m, 1) & 1u) << 1))
           << shift;
  }
  unsigned lt_mask(const NeonBlock& x) const noexcept {
    unsigned m = 0;
    for (int i = 0; i < 4; ++i) m |= mask2(vcltq_f64(v[i], x.v[i]), 2 * i);
    return m;
  }
  unsigned eq_mask(const NeonBlock& x) const noexcept {
    unsigned m = 0;
    for (int i = 0; i < 4; ++i) m |= mask2(vceqq_f64(v[i], x.v[i]), 2 * i);
    return m;
  }
  unsigned nan_mask() const noexcept {
    // NaN is the only value not ordered-equal to itself.
    unsigned m = 0;
    for (int i = 0; i < 4; ++i)
      m |= mask2(vceqq_f64(v[i], v[i]), 2 * i);
    return ~m & 0xffu;
  }
};
#endif  // __aarch64__

}  // namespace
}  // namespace litmus::ts::simd
