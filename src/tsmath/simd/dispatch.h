// Runtime-dispatched SIMD kernel layer for the assessment hot path.
//
// The batch sweep spends its time in a handful of dense inner loops —
// Gram accumulation, the X̃ᵀy GEMV bind, Fligner–Policello placement
// counting, and missing-bitmap scans. Each has one implementation per
// instruction-set *tier*:
//
//   scalar   portable C++, compiled at the build's baseline arch
//   sse2     x86-64 baseline (2-lane doubles)
//   avx2     4-lane doubles (no FMA in the default mode — see below)
//   avx512   8-lane doubles + mask registers
//   neon     aarch64 baseline (2-lane doubles)
//
// The tier is selected ONCE, lazily, from CPUID/auxval feature detection
// (GCC/Clang __builtin_cpu_supports on x86; NEON is the aarch64
// baseline), overridable for A/B testing with LITMUS_SIMD=scalar|sse2|
// avx2|avx512|neon or `litmus_cli --simd TIER`. Variant object files are
// compiled with the matching -m flags but only ever *called* after the
// runtime check, so one binary runs correctly on any host.
//
// Determinism contract (DESIGN.md §13): every floating-point reduction
// uses the same fixed 8-lane block order in every tier — lane j
// accumulates rows j, j+8, j+16, … of each 8-row block in ascending
// order, the ≤7-row tail folds into lanes 0..rem-1, and the 8 lanes are
// reduced strictly left-to-right. AVX-512 runs it as one 8-wide register,
// AVX2 as two 4-wide, SSE2/NEON as four 2-wide, scalar as eight doubles;
// IEEE-754 makes the per-lane operation sequences identical, so every
// tier produces bit-identical results and LITMUS_SIMD can never flip a
// verdict. Counting kernels (placements, missing scans) are exact
// integers and trivially order-independent.
//
// Fast-math mode (--fast-math-kernels) relaxes the contract where
// reassociation buys a wider win: FMA contraction plus a 16-lane unroll
// in the dot-product family. Results then drift within round-off of the
// exact mode; the mode is recorded in the RunManifest as a GATING field
// and verified by `diff-runs --metric-tolerance`, never silently on.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace litmus::ts::simd {

enum class Tier { kScalar = 0, kSse2, kAvx2, kAvx512, kNeon };
inline constexpr int kTierCount = 5;

/// Stable lowercase name ("scalar", "sse2", "avx2", "avx512", "neon");
/// the vocabulary of LITMUS_SIMD, --simd, and the manifest.
const char* tier_name(Tier t) noexcept;

/// Parses a tier_name back; nullopt on unknown text.
std::optional<Tier> parse_tier(std::string_view name) noexcept;

/// True when this build contains a real implementation of the tier (e.g.
/// the avx512 translation unit was compiled with AVX-512 support). A
/// compiled-out tier silently aliases the best lower tier, so selecting
/// it is refused rather than lied about.
bool tier_compiled(Tier t) noexcept;

/// True when the running CPU can execute the tier (and it is compiled
/// in). kScalar is always supported.
bool tier_supported(Tier t) noexcept;

/// Best tier the host supports, from CPUID/auxval feature detection.
/// Independent of any override; recorded in the manifest as
/// "simd.detected".
Tier detected_tier() noexcept;

/// The tier kernels actually dispatch through: detected_tier() unless
/// overridden by LITMUS_SIMD (read once, first call) or set_active_tier.
/// Recorded in the manifest as "simd.dispatch".
Tier active_tier() noexcept;

/// Forces the dispatch tier (the --simd flag). Returns false — leaving
/// the active tier unchanged — when the host cannot run `t`.
bool set_active_tier(Tier t) noexcept;

/// Whether the dot-product family may reassociate (FMA + wider unroll).
/// Off by default: the default mode is bit-identical across tiers.
bool fast_math() noexcept;
void set_fast_math(bool on) noexcept;

/// One-line arch report for --version / logs, e.g.
/// "detected=avx512 active=avx512 fast_math=off compiled=scalar,sse2,avx2,avx512".
std::string describe();

}  // namespace litmus::ts::simd
