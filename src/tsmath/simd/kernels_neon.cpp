// NEON tier (aarch64 baseline): four 2-lane registers per 8-lane block.
#include "tsmath/simd/kernels.h"

#if defined(__aarch64__)
#include "tsmath/simd/kernels_generic.h"
#include "tsmath/simd/vec.h"
#endif

namespace litmus::ts::simd {

#if defined(__aarch64__)
const KernelTable* table_neon() noexcept { return table_for<NeonBlock>(); }
#else
const KernelTable* table_neon() noexcept { return nullptr; }
#endif

}  // namespace litmus::ts::simd
