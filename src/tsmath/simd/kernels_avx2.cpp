// AVX2 tier: two 4-lane registers per 8-lane block. Compiled with
// -mavx2 -mfma -ffp-contract=off (src/tsmath/CMakeLists.txt): FMA must
// only ever appear through the explicit madd_fma intrinsics of the
// fast-math mode, never from compiler contraction of the exact path.
#include "tsmath/simd/kernels.h"

#if defined(__AVX2__)
#include "tsmath/simd/kernels_generic.h"
#include "tsmath/simd/vec.h"
#endif

namespace litmus::ts::simd {

#if defined(__AVX2__)
const KernelTable* table_avx2() noexcept { return table_for<Avx2Block>(); }
#else
const KernelTable* table_avx2() noexcept { return nullptr; }
#endif

}  // namespace litmus::ts::simd
