#include "tsmath/simd/dispatch.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "tsmath/simd/kernels.h"

namespace litmus::ts::simd {
namespace {

const KernelTable* table_of(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar: return table_scalar();
    case Tier::kSse2: return table_sse2();
    case Tier::kAvx2: return table_avx2();
    case Tier::kAvx512: return table_avx512();
    case Tier::kNeon: return table_neon();
  }
  return nullptr;
}

bool cpu_supports(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Tier::kSse2:
      return true;  // x86-64 baseline
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2");
    case Tier::kAvx512:
      // F for the arithmetic, DQ for the double-precision mask compares
      // being first-class; both ship together on every AVX-512 server
      // part this targets.
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
    case Tier::kNeon:
      return false;
#elif defined(__aarch64__)
    case Tier::kNeon:
      return true;  // aarch64 baseline
    default:
      return false;
#else
    default:
      return false;
#endif
  }
  return false;
}

Tier detect_best() noexcept {
  for (const Tier t :
       {Tier::kAvx512, Tier::kAvx2, Tier::kNeon, Tier::kSse2}) {
    if (tier_supported(t)) return t;
  }
  return Tier::kScalar;
}

struct DispatchState {
  Tier active;
  std::atomic<const KernelTable*> table;
};

// Initial selection: best detected tier, then the LITMUS_SIMD override
// (parsed once; a bad or unsupported value warns on stderr and keeps the
// detected tier, so a stale environment never silently slows or kills a
// run — the CLI flag is the loud path). Immortal for the same reason the
// obs singletons are: worker threads may race static destruction.
DispatchState& state() noexcept {
  static DispatchState* s = [] {
    auto* st = new DispatchState;
    Tier t = detect_best();
    if (const char* env = std::getenv("LITMUS_SIMD")) {
      if (const auto parsed = parse_tier(env); !parsed) {
        std::fprintf(stderr,
                     "warning: LITMUS_SIMD=%s is not a tier name "
                     "(scalar|sse2|avx2|avx512|neon); keeping %s\n",
                     env, tier_name(t));
      } else if (!tier_supported(*parsed)) {
        std::fprintf(stderr,
                     "warning: LITMUS_SIMD=%s is not supported on this "
                     "host/build; keeping %s\n",
                     env, tier_name(t));
      } else {
        t = *parsed;
      }
    }
    st->active = t;
    st->table.store(table_of(t), std::memory_order_relaxed);
    return st;
  }();
  return *s;
}

std::atomic<bool> g_fast_math{false};

}  // namespace

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
    case Tier::kNeon: return "neon";
  }
  return "?";
}

std::optional<Tier> parse_tier(std::string_view name) noexcept {
  for (int i = 0; i < kTierCount; ++i) {
    const Tier t = static_cast<Tier>(i);
    if (name == tier_name(t)) return t;
  }
  return std::nullopt;
}

bool tier_compiled(Tier t) noexcept { return table_of(t) != nullptr; }

bool tier_supported(Tier t) noexcept {
  return tier_compiled(t) && cpu_supports(t);
}

Tier detected_tier() noexcept {
  static const Tier t = detect_best();
  return t;
}

Tier active_tier() noexcept { return state().active; }

bool set_active_tier(Tier t) noexcept {
  if (!tier_supported(t)) return false;
  DispatchState& s = state();
  s.active = t;
  s.table.store(table_of(t), std::memory_order_relaxed);
  return true;
}

bool fast_math() noexcept {
  return g_fast_math.load(std::memory_order_relaxed);
}

void set_fast_math(bool on) noexcept {
  g_fast_math.store(on, std::memory_order_relaxed);
}

std::string describe() {
  std::string out = "detected=";
  out += tier_name(detected_tier());
  out += " active=";
  out += tier_name(active_tier());
  out += fast_math() ? " fast_math=on" : " fast_math=off";
  out += " compiled=";
  bool first = true;
  for (int i = 0; i < kTierCount; ++i) {
    const Tier t = static_cast<Tier>(i);
    if (!tier_compiled(t)) continue;
    if (!first) out += ",";
    out += tier_name(t);
    first = false;
  }
  return out;
}

const KernelTable& kernels() noexcept {
  return *state().table.load(std::memory_order_relaxed);
}

double sum(std::span<const double> p) noexcept {
  return kernels().sum(p.data(), p.size());
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  const KernelTable& k = kernels();
  return (fast_math() ? k.dot_fast : k.dot)(a.data(), b.data(), a.size());
}

void accumulate_gram(const double* packed, std::size_t n, std::size_t cols,
                     double* g) noexcept {
  const KernelTable& k = kernels();
  (fast_math() ? k.accumulate_gram_fast : k.accumulate_gram)(packed, n, cols,
                                                             g);
}

CmpCount count_cmp(std::span<const double> ys, double x) noexcept {
  return kernels().count_cmp(ys.data(), ys.size(), x);
}

void scan_missing_bits(std::span<const double> p,
                       std::uint64_t* bits) noexcept {
  kernels().scan_missing_bits(p.data(), p.size(), bits);
}

std::size_t count_missing(std::span<const double> p) noexcept {
  return kernels().count_missing(p.data(), p.size());
}

}  // namespace litmus::ts::simd
