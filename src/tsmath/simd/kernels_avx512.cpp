// AVX-512 tier: one 8-lane register per block, compares straight into
// mask registers. Compiled with -mavx512f -mavx512dq -mfma
// -ffp-contract=off (src/tsmath/CMakeLists.txt).
#include "tsmath/simd/kernels.h"

#if defined(__AVX512F__)
#include "tsmath/simd/kernels_generic.h"
#include "tsmath/simd/vec.h"
#endif

namespace litmus::ts::simd {

#if defined(__AVX512F__)
const KernelTable* table_avx512() noexcept {
  return table_for<Avx512Block>();
}
#else
const KernelTable* table_avx512() noexcept { return nullptr; }
#endif

}  // namespace litmus::ts::simd
