// Tier-independent kernel bodies, templated over a vec.h block type.
//
// Each kernels_<tier>.cpp instantiates these with its own block and
// packages the instantiations into a KernelTable. Like vec.h, everything
// lives in an anonymous namespace so instantiations can never be merged
// across translation units compiled with different -m flags (the linker
// would otherwise be free to hand every tier the one compiled with the
// widest instructions). Include only from kernels_*.cpp.
//
// The reduction pattern shared by sum/dot/accumulate_gram is the
// determinism contract of DESIGN.md §13:
//   * lane j of the 8-lane accumulator adds rows j, j+8, j+16, … of each
//     full block, in ascending order;
//   * the trailing n mod 8 rows fold into lanes 0..rem-1, one product
//     each, after the block loop;
//   * lanes reduce strictly left-to-right: ((…(l0+l1)+l2)…+l7).
// Every tier executes this exact operation sequence, so results are
// bit-identical under any LITMUS_SIMD setting.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "tsmath/simd/kernels.h"

namespace litmus::ts::simd {
namespace {

inline double reduce8(const double* lanes) noexcept {
  double s = lanes[0];
  for (int j = 1; j < 8; ++j) s += lanes[j];
  return s;
}

template <class B>
double sum_impl(const double* p, std::size_t n) {
  B acc = B::zero();
  const B one = B::broadcast(1.0);
  std::size_t r = 0;
  for (; r + 8 <= n; r += 8) acc.madd(B::load(p + r), one);
  alignas(64) double lanes[8];
  acc.store(lanes);
  for (std::size_t j = 0; r + j < n; ++j) lanes[j] += p[r + j] * 1.0;
  return reduce8(lanes);
}

template <class B>
double dot_impl(const double* a, const double* b, std::size_t n) {
  B acc = B::zero();
  std::size_t r = 0;
  for (; r + 8 <= n; r += 8) acc.madd(B::load(a + r), B::load(b + r));
  alignas(64) double lanes[8];
  acc.store(lanes);
  for (std::size_t j = 0; r + j < n; ++j) lanes[j] += a[r + j] * b[r + j];
  return reduce8(lanes);
}

// Fast-math dot: FMA plus a second 8-lane accumulator (16 rows in
// flight). Reassociates relative to the contract — only reachable
// through the --fast-math-kernels mode.
template <class B>
double dot_fast_impl(const double* a, const double* b, std::size_t n) {
  B acc0 = B::zero();
  B acc1 = B::zero();
  std::size_t r = 0;
  for (; r + 16 <= n; r += 16) {
    acc0.madd_fma(B::load(a + r), B::load(b + r));
    acc1.madd_fma(B::load(a + r + 8), B::load(b + r + 8));
  }
  if (r + 8 <= n) {
    acc0.madd_fma(B::load(a + r), B::load(b + r));
    r += 8;
  }
  acc0.add(acc1);
  alignas(64) double lanes[8];
  acc0.store(lanes);
  for (std::size_t j = 0; r + j < n; ++j) lanes[j] += a[r + j] * b[r + j];
  return reduce8(lanes);
}

// Augmented-Gram accumulation, the register-blocked port of the scalar
// kernel gram.cpp used before the SIMD layer: column pairs share the left
// column's loads, every dot keeps the contract's row order. `g` is a
// zero-initialized (cols+1)² row-major buffer.
template <class B, bool kFast>
void accumulate_gram_impl(const double* packed, std::size_t n,
                          std::size_t cols, double* g) {
  const std::size_t aug = cols + 1;
  g[0] = static_cast<double>(n);
  alignas(64) double lanes[8];
  for (std::size_t c = 0; c < cols; ++c) {
    const double* pc = packed + c * n;
    const double s = sum_impl<B>(pc, n);
    g[0 * aug + (c + 1)] = s;
    g[(c + 1) * aug + 0] = s;
    std::size_t d = c;
    for (; d + 1 < cols; d += 2) {
      const double* pd0 = packed + d * n;
      const double* pd1 = packed + (d + 1) * n;
      B acc0 = B::zero();
      B acc1 = B::zero();
      std::size_t r = 0;
      for (; r + 8 <= n; r += 8) {
        const B v = B::load(pc + r);
        if constexpr (kFast) {
          acc0.madd_fma(v, B::load(pd0 + r));
          acc1.madd_fma(v, B::load(pd1 + r));
        } else {
          acc0.madd(v, B::load(pd0 + r));
          acc1.madd(v, B::load(pd1 + r));
        }
      }
      acc0.store(lanes);
      for (std::size_t j = 0; r + j < n; ++j)
        lanes[j] += pc[r + j] * pd0[r + j];
      const double dot0 = reduce8(lanes);
      acc1.store(lanes);
      for (std::size_t j = 0; r + j < n; ++j)
        lanes[j] += pc[r + j] * pd1[r + j];
      const double dot1 = reduce8(lanes);
      g[(c + 1) * aug + (d + 1)] = dot0;
      g[(d + 1) * aug + (c + 1)] = dot0;
      g[(c + 1) * aug + (d + 2)] = dot1;
      g[(d + 2) * aug + (c + 1)] = dot1;
    }
    if (d < cols) {
      const double* pd = packed + d * n;
      const double dot = kFast ? dot_fast_impl<B>(pc, pd, n)
                               : dot_impl<B>(pc, pd, n);
      g[(c + 1) * aug + (d + 1)] = dot;
      g[(d + 1) * aug + (c + 1)] = dot;
    }
  }
}

// Exact integer counting — order-independent, so no lane contract needed.
// NaN compares false under both < and ==, which is precisely the
// "missing sample entries are ignored" rule of ranks.h.
template <class B>
CmpCount count_cmp_impl(const double* ys, std::size_t n, double x) {
  const B bx = B::broadcast(x);
  CmpCount out;
  std::size_t r = 0;
  for (; r + 8 <= n; r += 8) {
    const B v = B::load(ys + r);
    out.below += static_cast<unsigned>(std::popcount(v.lt_mask(bx)));
    out.equal += static_cast<unsigned>(std::popcount(v.eq_mask(bx)));
  }
  for (; r < n; ++r) {
    out.below += ys[r] < x ? 1u : 0u;
    out.equal += ys[r] == x ? 1u : 0u;
  }
  return out;
}

template <class B>
void scan_missing_bits_impl(const double* p, std::size_t n,
                            std::uint64_t* bits) {
  const std::size_t words = (n + 63) / 64;
  for (std::size_t w = 0; w < words; ++w) bits[w] = 0;
  std::size_t r = 0;
  // r stays a multiple of 8, so a block's 8-bit mask never straddles a
  // 64-bit word.
  for (; r + 8 <= n; r += 8) {
    const unsigned m = B::load(p + r).nan_mask();
    if (m != 0)
      bits[r >> 6] |= static_cast<std::uint64_t>(m) << (r & 63u);
  }
  for (; r < n; ++r)
    if (p[r] != p[r]) bits[r >> 6] |= std::uint64_t{1} << (r & 63u);
}

template <class B>
std::size_t count_missing_impl(const double* p, std::size_t n) {
  std::size_t count = 0;
  std::size_t r = 0;
  for (; r + 8 <= n; r += 8)
    count += static_cast<unsigned>(std::popcount(B::load(p + r).nan_mask()));
  for (; r < n; ++r) count += p[r] != p[r] ? 1u : 0u;
  return count;
}

/// The tier table over block type B, as a function-local static so each
/// translation unit owns exactly one internal-linkage copy.
template <class B>
const KernelTable* table_for() noexcept {
  static const KernelTable table = {
      &sum_impl<B>,
      &dot_impl<B>,
      &dot_fast_impl<B>,
      &accumulate_gram_impl<B, false>,
      &accumulate_gram_impl<B, true>,
      &count_cmp_impl<B>,
      &scan_missing_bits_impl<B>,
      &count_missing_impl<B>,
  };
  return &table;
}

}  // namespace
}  // namespace litmus::ts::simd
