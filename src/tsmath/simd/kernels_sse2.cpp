// SSE2 tier (x86-64 baseline): four 2-lane registers per 8-lane block.
#include "tsmath/simd/kernels.h"

#if defined(__SSE2__)
#include "tsmath/simd/kernels_generic.h"
#include "tsmath/simd/vec.h"
#endif

namespace litmus::ts::simd {

#if defined(__SSE2__)
const KernelTable* table_sse2() noexcept { return table_for<Sse2Block>(); }
#else
const KernelTable* table_sse2() noexcept { return nullptr; }
#endif

}  // namespace litmus::ts::simd
