// Dispatched hot-path kernels (see dispatch.h for the tier model and the
// determinism contract). Call the free functions; they route through the
// KernelTable of the active tier with one relaxed atomic load per call,
// which is noise against loops of hundreds of rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace litmus::ts::simd {

/// Exact comparison counts of one probe value against a sample.
struct CmpCount {
  std::uint64_t below = 0;  ///< #{ j : ys[j] <  x }
  std::uint64_t equal = 0;  ///< #{ j : ys[j] == x }
};

/// One tier's kernel implementations. The *_fast entries may reassociate
/// (FMA + wider unroll); everything else is bit-identical across tiers.
struct KernelTable {
  double (*sum)(const double* p, std::size_t n);
  double (*dot)(const double* a, const double* b, std::size_t n);
  double (*dot_fast)(const double* a, const double* b, std::size_t n);
  /// Augmented-Gram accumulation over `cols` packed column-major columns
  /// of `n` rows into `g`, a zero-initialized (cols+1)² row-major buffer.
  void (*accumulate_gram)(const double* packed, std::size_t n,
                          std::size_t cols, double* g);
  void (*accumulate_gram_fast)(const double* packed, std::size_t n,
                               std::size_t cols, double* g);
  /// NaN-safe: NaN sample entries count as neither below nor equal.
  CmpCount (*count_cmp)(const double* ys, std::size_t n, double x);
  /// Sets bit i of `bits` (⌈n/64⌉ words, fully overwritten) iff p[i] is
  /// NaN.
  void (*scan_missing_bits)(const double* p, std::size_t n,
                            std::uint64_t* bits);
  std::size_t (*count_missing)(const double* p, std::size_t n);
};

/// The active tier's table (after LITMUS_SIMD / --simd overrides).
const KernelTable& kernels() noexcept;

// ---- convenience wrappers over kernels() ------------------------------

/// Σ p[i], fixed 8-lane block order.
double sum(std::span<const double> p) noexcept;

/// Σ a[i]·b[i], fixed 8-lane block order; honors fast_math().
double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// Augmented Gram into `g` (pre-sized (cols+1)², will be overwritten);
/// honors fast_math(). g[0][0] is set to n, row/col 0 to the column sums.
void accumulate_gram(const double* packed, std::size_t n, std::size_t cols,
                     double* g) noexcept;

/// Comparison counts of `x` against `ys` (NaN entries of ys ignored).
CmpCount count_cmp(std::span<const double> ys, double x) noexcept;

/// Missing (NaN) bitmap of `p` into `bits` (⌈n/64⌉ words, overwritten).
void scan_missing_bits(std::span<const double> p,
                       std::uint64_t* bits) noexcept;

/// #NaN entries of `p`.
std::size_t count_missing(std::span<const double> p) noexcept;

// ---- per-tier tables (defined in kernels_<tier>.cpp) ------------------
// Null when the build could not compile the tier's instructions; the
// dispatcher then reports the tier as not compiled (dispatch.h).
const KernelTable* table_scalar() noexcept;
const KernelTable* table_sse2() noexcept;
const KernelTable* table_avx2() noexcept;
const KernelTable* table_avx512() noexcept;
const KernelTable* table_neon() noexcept;

}  // namespace litmus::ts::simd
