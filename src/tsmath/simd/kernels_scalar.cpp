// Scalar tier: the portable reference every other tier must match bit
// for bit. Compiled at the build's baseline arch (the compiler may still
// auto-vectorize — per-lane IEEE semantics make that harmless).
#include "tsmath/simd/kernels.h"

#include "tsmath/simd/kernels_generic.h"
#include "tsmath/simd/vec.h"

namespace litmus::ts::simd {

const KernelTable* table_scalar() noexcept { return table_for<ScalarBlock>(); }

}  // namespace litmus::ts::simd
