// Seasonal decomposition helpers.
//
// Used by the figure benches (e.g. Fig 3's two-year foliage pattern) and by
// the synthetic-injection evaluation to verify that generated series carry
// the intended seasonal structure. The Litmus algorithm itself does *not*
// deseasonalize — its whole point is that study/control comparison removes
// shared seasonal effects without modeling them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsmath/timeseries.h"

namespace litmus::ts {

/// Centered moving average of odd window `w` (missing-aware; a window with
/// fewer than w/2 observed points yields missing).
std::vector<double> moving_average(std::span<const double> xs, std::size_t w);

/// Per-phase means for a cycle of `period` bins (e.g. 24 for hourly
/// time-of-day, 7 for daily day-of-week). Entry p is the mean of
/// observations at phase p.
std::vector<double> seasonal_means(std::span<const double> xs,
                                   std::size_t period);

/// Classical additive decomposition: trend (moving average of one period),
/// seasonal (per-phase means of the detrended series, normalized to sum to
/// zero), remainder.
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;  ///< length == input length
  std::vector<double> remainder;
};

Decomposition decompose_additive(std::span<const double> xs,
                                 std::size_t period);

/// Strength of seasonality in [0,1]: 1 - Var(remainder)/Var(seasonal+rem).
/// Near 0 for unseasonal data, near 1 for strongly periodic data.
double seasonal_strength(std::span<const double> xs, std::size_t period);

/// Ordinary least squares slope of xs against bin index (missing-aware);
/// used to estimate long-run trends like Fig 3's carrier-improvement drift.
double linear_trend_slope(std::span<const double> xs);

/// Theil-Sen slope: the median of pairwise slopes. Robust to ~29% gross
/// outliers where the OLS slope is not (Lanzante '96, cited by the paper
/// for resistant climate-series analysis). O(n^2) pairs; inputs here are
/// assessment windows (hundreds of points), not years of raw feed.
double theil_sen_slope(std::span<const double> xs);

}  // namespace litmus::ts
