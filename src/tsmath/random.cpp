#include "tsmath/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace litmus::ts {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) noexcept {
  // Lemire's unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

bool Rng::chance(double p) noexcept { return next_double() < p; }

Rng Rng::fork(std::uint64_t tag) const noexcept {
  // Mix current state with the tag; do not advance this stream.
  std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^ (tag * 0x9E3779B97F4A7C15ULL);
  return Rng(splitmix64(mix));
}

std::vector<std::size_t> sample_without_replacement(Rng& rng, std::size_t n,
                                                    std::size_t k) {
  std::vector<std::size_t> pool;
  std::vector<std::size_t> out;
  sample_without_replacement(rng, n, k, pool, out);
  return out;
}

void sample_without_replacement(Rng& rng, std::size_t n, std::size_t k,
                                std::vector<std::size_t>& pool,
                                std::vector<std::size_t>& out) {
  if (k > n)
    throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index pool; O(n) setup, O(k) draws.
  pool.resize(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  out.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(out.begin(), out.end());
}

}  // namespace litmus::ts
