#include "tsmath/rank_tests.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "parallel/workspace.h"
#include "tsmath/normal.h"
#include "tsmath/ranks.h"
#include "tsmath/simd/kernels.h"
#include "tsmath/stats.h"

namespace litmus::ts {
namespace {

// Per-test metric handles, resolved once per process: the registry hands
// out stable references, so the per-call path neither builds
// "rank_test.<test>.<metric>" strings nor walks the registry map (both
// showed up as hot-path heap churn — one test call per assessment, tens of
// thousands per batch sweep).
struct TestMetrics {
  obs::Counter& calls;
  obs::Histogram& z;
  obs::Histogram& p_value;
  obs::Counter& significant;

  explicit TestMetrics(const char* test)
      : calls(obs::Registry::global().counter(std::string("rank_test.") +
                                              test + ".calls")),
        z(obs::Registry::global().histogram(std::string("rank_test.") + test +
                                            ".z")),
        p_value(obs::Registry::global().histogram(std::string("rank_test.") +
                                                  test + ".p_value")),
        significant(obs::Registry::global().counter(
            std::string("rank_test.") + test + ".significant")) {}
};

// Records one two-sample comparison into the metrics registry (z-score and
// p-value distributions plus a per-test call counter).
void observe_test(const TestMetrics& m, const TestResult& r) {
  m.calls.add();
  if (!is_missing(r.statistic) && std::isfinite(r.statistic))
    m.z.record(r.statistic);
  if (!is_missing(r.p_value)) m.p_value.record(r.p_value);
  if (r.shift != Shift::kNone) m.significant.add();
}

// par::Workspace slots 18-23 belong to this module (ranks.cpp owns 16-17,
// the spatial regression loop 0-15). Both tests are called once per
// assessment inside the batch sweep's parallel chunks; routing every
// gather and intermediate through the thread's workspace keeps the
// steady-state call allocation-free.
constexpr std::size_t kXSlot = 18;       // observed x values
constexpr std::size_t kYSlot = 19;       // observed y values
constexpr std::size_t kPooledSlot = 20;  // WMW pooled sample
constexpr std::size_t kRanksSlot = 21;   // WMW midranks
constexpr std::size_t kUxSlot = 20;      // FP placements (WMW slots free)
constexpr std::size_t kUySlot = 21;

// Gathers the observed (non-NaN) values of `xs` into the workspace buffer
// `out`, preserving order.
void observed_into(std::span<const double> xs, std::vector<double>& out) {
  out.clear();
  out.reserve(xs.size());
  for (double v : xs)
    if (!is_missing(v)) out.push_back(v);
}

Shift classify(double z, double p, double alpha) {
  if (is_missing(p) || p >= alpha) return Shift::kNone;
  return z > 0 ? Shift::kIncrease : Shift::kDecrease;
}

// True when every x strictly exceeds every y (or vice versa).
bool fully_separated(std::span<const double> x, std::span<const double> y,
                     bool x_above) {
  const double split_x =
      x_above ? min_value(x) : max_value(x);
  const double split_y =
      x_above ? max_value(y) : min_value(y);
  return x_above ? split_x > split_y : split_x < split_y;
}

}  // namespace

const char* to_string(Shift s) noexcept {
  switch (s) {
    case Shift::kNone: return "none";
    case Shift::kIncrease: return "increase";
    case Shift::kDecrease: return "decrease";
  }
  return "?";
}

namespace {

TestResult wilcoxon_mann_whitney_impl(std::span<const double> xs,
                                      std::span<const double> ys,
                                      double alpha) {
  auto& ws = par::this_thread_workspace();
  auto& x = ws.doubles(kXSlot);
  auto& y = ws.doubles(kYSlot);
  observed_into(xs, x);
  observed_into(ys, y);
  TestResult r;
  r.n_x = x.size();
  r.n_y = y.size();
  if (x.size() < 2 || y.size() < 2) return r;

  auto& pooled = ws.doubles(kPooledSlot);
  pooled.clear();
  pooled.reserve(x.size() + y.size());
  pooled.insert(pooled.end(), x.begin(), x.end());
  pooled.insert(pooled.end(), y.begin(), y.end());

  // One sort produces both the midranks and the tie correction (the old
  // tie_correction_sum call re-sorted the pooled sample from scratch).
  auto& ranks = ws.doubles(kRanksSlot);
  ranks.resize(pooled.size());
  double ties = 0.0;
  midranks_into(pooled, ranks, &ties);

  const double rank_sum_x = simd::sum({ranks.data(), x.size()});

  const double m = static_cast<double>(x.size());
  const double n = static_cast<double>(y.size());
  const double u = rank_sum_x - m * (m + 1.0) / 2.0;  // Mann-Whitney U for x
  if (obs::enabled()) {
    static obs::Histogram& u_hist =
        obs::Registry::global().histogram("rank_test.wmw.u_statistic");
    u_hist.record(u);
  }
  const double mu = m * n / 2.0;
  const double big_n = m + n;
  const double var =
      m * n / 12.0 *
      ((big_n + 1.0) - ties / (big_n * (big_n - 1.0)));
  if (var <= 0.0) {
    // All pooled values identical: no evidence of any shift.
    r.statistic = 0.0;
    r.p_value = 1.0;
    return r;
  }
  // Continuity correction toward the mean.
  const double cc = (u > mu) ? -0.5 : (u < mu ? 0.5 : 0.0);
  r.statistic = (u - mu + cc) / std::sqrt(var);
  r.p_value = two_sided_p(r.statistic);
  r.shift = classify(r.statistic, r.p_value, alpha);
  return r;
}

TestResult robust_rank_order_impl(std::span<const double> xs,
                                  std::span<const double> ys, double alpha) {
  auto& ws = par::this_thread_workspace();
  auto& x = ws.doubles(kXSlot);
  auto& y = ws.doubles(kYSlot);
  observed_into(xs, x);
  observed_into(ys, y);
  TestResult r;
  r.n_x = x.size();
  r.n_y = y.size();
  if (x.size() < 2 || y.size() < 2) return r;

  // Placements: u_x[i] = #(y < x_i), u_y[j] = #(x < y_j) (ties count half).
  // One fused call so the sorted path sorts each sample exactly once; the
  // counting path sweeps the SIMD comparison kernel instead.
  auto& u_x = ws.doubles(kUxSlot);
  auto& u_y = ws.doubles(kUySlot);
  u_x.resize(x.size());
  u_y.resize(y.size());
  placement_pair_into(x, y, u_x, u_y);

  const double m = static_cast<double>(x.size());
  const double n = static_cast<double>(y.size());
  const double mean_ux = mean(u_x);
  const double mean_uy = mean(u_y);

  double v_x = 0;
  for (double u : u_x) v_x += (u - mean_ux) * (u - mean_ux);
  double v_y = 0;
  for (double u : u_y) v_y += (u - mean_uy) * (u - mean_uy);

  const double num = m * mean_ux - n * mean_uy;
  const double denom_sq = v_x + v_y + mean_ux * mean_uy;

  if (denom_sq <= 0.0) {
    // Degenerate: either no overlap at all or identical constant samples.
    if (mean_ux == n && mean_uy == 0.0) {
      // Every x above every y.
      r.statistic = std::numeric_limits<double>::infinity();
      r.p_value = 0.0;
      r.shift = Shift::kIncrease;
    } else if (mean_ux == 0.0 && mean_uy == m) {
      r.statistic = -std::numeric_limits<double>::infinity();
      r.p_value = 0.0;
      r.shift = Shift::kDecrease;
    } else {
      r.statistic = 0.0;
      r.p_value = 1.0;
    }
    return r;
  }

  r.statistic = num / (2.0 * std::sqrt(denom_sq));
  r.p_value = two_sided_p(r.statistic);

  // Small samples: the normal approximation is anti-conservative. Follow the
  // usual practice (Feltovich 2003) and require full separation below a total
  // of 12 observations.
  if (x.size() + y.size() < 12) {
    const bool x_above = r.statistic > 0;
    if (!fully_separated(x, y, x_above)) {
      r.shift = Shift::kNone;
      return r;
    }
  }

  r.shift = classify(r.statistic, r.p_value, alpha);
  return r;
}

}  // namespace

TestResult wilcoxon_mann_whitney(std::span<const double> xs,
                                 std::span<const double> ys, double alpha) {
  const TestResult r = wilcoxon_mann_whitney_impl(xs, ys, alpha);
  if (obs::enabled()) {
    static TestMetrics metrics("wmw");
    observe_test(metrics, r);
  }
  return r;
}

TestResult robust_rank_order(std::span<const double> xs,
                             std::span<const double> ys, double alpha) {
  const TestResult r = robust_rank_order_impl(xs, ys, alpha);
  if (obs::enabled()) {
    static TestMetrics metrics("fp");
    observe_test(metrics, r);
  }
  return r;
}

TestResult robust_rank_order(const TimeSeries& x, const TimeSeries& y,
                             double alpha) {
  return robust_rank_order(x.values(), y.values(), alpha);
}

}  // namespace litmus::ts
