#include "tsmath/ranks.h"

#include <algorithm>
#include <cmath>

#include "parallel/workspace.h"
#include "tsmath/simd/kernels.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

// par::Workspace slot assignments. The workspace is shared by everything
// running on the thread, so slots are partitioned by module: the spatial
// regression chunk loop owns 0-15, the ranking kernels here own 16-17,
// and the rank tests (rank_tests.cpp) own 18-23.
constexpr std::size_t kIdxSlot = 16;       // midranks: sort permutation
constexpr std::size_t kSortedSlot = 16;    // placements/ties: sorted copy
constexpr std::size_t kSortedSlot2 = 17;   // placement_pair: second copy

// Counting beats sort+binary-search while m·n (SIMD-swept, ~8 compares
// per cycle) is below the (m+n)·log(n) sort cost plus its constant. Both
// paths yield exact half-integer counts, so this only moves time, never
// bits. Sizes are raw span lengths: deterministic for a given call.
constexpr std::size_t kCountingCrossover = 32768;

// Gathers the observed (non-NaN) values of `xs` into `out` (workspace
// buffer), preserving order.
void gather_observed(std::span<const double> xs, std::vector<double>& out) {
  out.clear();
  out.reserve(xs.size());
  for (const double v : xs)
    if (!is_missing(v)) out.push_back(v);
}

// Placement of every observed x against an ascending sorted sample.
void place_against_sorted(std::span<const double> xs,
                          const std::vector<double>& sorted,
                          std::span<double> out) {
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) {
      out[i] = kMissing;
      continue;
    }
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), xs[i]);
    const auto hi = std::upper_bound(lo, sorted.end(), xs[i]);
    const double below = static_cast<double>(lo - sorted.begin());
    const double equal = static_cast<double>(hi - lo);
    out[i] = below + 0.5 * equal;
  }
}

}  // namespace

void midranks_into(std::span<const double> xs, std::span<double> out,
                   double* tie_correction) {
  auto& idx = par::this_thread_workspace().indices(kIdxSlot);
  idx.clear();
  idx.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!is_missing(xs[i])) idx.push_back(i);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::fill(out.begin(), out.end(), kMissing);
  double ties = 0.0;
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Positions i..j (0-based) share the mid-rank of 1-based ranks i+1..j+1.
    const double r = 0.5 * (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) out[idx[k]] = r;
    const double t = static_cast<double>(j - i + 1);
    ties += t * t * t - t;
    i = j + 1;
  }
  if (tie_correction != nullptr) *tie_correction = ties;
}

std::vector<double> midranks(std::span<const double> xs) {
  std::vector<double> ranks(xs.size());
  midranks_into(xs, ranks);
  return ranks;
}

void placements_counting_into(std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<double> out) {
  // The comparison kernel is NaN-safe (missing ys count as neither below
  // nor equal), so the raw control sample needs no gathering pass.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) {
      out[i] = kMissing;
      continue;
    }
    const simd::CmpCount c = simd::count_cmp(ys, xs[i]);
    out[i] = static_cast<double>(c.below) +
             0.5 * static_cast<double>(c.equal);
  }
}

void placements_sorted_into(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<double> out) {
  auto& sorted_y = par::this_thread_workspace().doubles(kSortedSlot);
  gather_observed(ys, sorted_y);
  std::sort(sorted_y.begin(), sorted_y.end());
  place_against_sorted(xs, sorted_y, out);
}

void placements_into(std::span<const double> xs, std::span<const double> ys,
                     std::span<double> out) {
  if (xs.size() * ys.size() <= kCountingCrossover) {
    placements_counting_into(xs, ys, out);
  } else {
    placements_sorted_into(xs, ys, out);
  }
}

void placement_pair_into(std::span<const double> xs,
                         std::span<const double> ys, std::span<double> u_x,
                         std::span<double> u_y) {
  if (xs.size() * ys.size() <= kCountingCrossover) {
    placements_counting_into(xs, ys, u_x);
    placements_counting_into(ys, xs, u_y);
    return;
  }
  // One sort per sample covers both directions (the naive pair of
  // placements() calls would sort each control sample from scratch).
  auto& ws = par::this_thread_workspace();
  auto& sorted_y = ws.doubles(kSortedSlot);
  auto& sorted_x = ws.doubles(kSortedSlot2);
  gather_observed(ys, sorted_y);
  gather_observed(xs, sorted_x);
  std::sort(sorted_y.begin(), sorted_y.end());
  std::sort(sorted_x.begin(), sorted_x.end());
  place_against_sorted(xs, sorted_y, u_x);
  place_against_sorted(ys, sorted_x, u_y);
}

std::vector<double> placements(std::span<const double> xs,
                               std::span<const double> ys) {
  std::vector<double> out(xs.size());
  placements_into(xs, ys, out);
  return out;
}

double tie_correction_sum(std::span<const double> xs) {
  auto& v = par::this_thread_workspace().doubles(kSortedSlot);
  gather_observed(xs, v);
  std::sort(v.begin(), v.end());
  double sum = 0;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    sum += t * t * t - t;
    i = j + 1;
  }
  return sum;
}

}  // namespace litmus::ts
