#include "tsmath/ranks.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tsmath/timeseries.h"

namespace litmus::ts {

std::vector<double> midranks(std::span<const double> xs) {
  std::vector<std::size_t> idx;
  idx.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!is_missing(xs[i])) idx.push_back(i);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(xs.size(), kMissing);
  std::size_t i = 0;
  while (i < idx.size()) {
    std::size_t j = i;
    while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    // Positions i..j (0-based) share the mid-rank of 1-based ranks i+1..j+1.
    const double r = 0.5 * (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = r;
    i = j + 1;
  }
  return ranks;
}

std::vector<double> placements(std::span<const double> xs,
                               std::span<const double> ys) {
  std::vector<double> sorted_y;
  sorted_y.reserve(ys.size());
  for (double v : ys)
    if (!is_missing(v)) sorted_y.push_back(v);
  std::sort(sorted_y.begin(), sorted_y.end());

  std::vector<double> out(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    const auto lo = std::lower_bound(sorted_y.begin(), sorted_y.end(), xs[i]);
    const auto hi = std::upper_bound(lo, sorted_y.end(), xs[i]);
    const double below = static_cast<double>(lo - sorted_y.begin());
    const double equal = static_cast<double>(hi - lo);
    out[i] = below + 0.5 * equal;
  }
  return out;
}

double tie_correction_sum(std::span<const double> xs) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (double x : xs)
    if (!is_missing(x)) v.push_back(x);
  std::sort(v.begin(), v.end());
  double sum = 0;
  std::size_t i = 0;
  while (i < v.size()) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[i]) ++j;
    const double t = static_cast<double>(j - i + 1);
    sum += t * t * t - t;
    i = j + 1;
  }
  return sum;
}

}  // namespace litmus::ts
