// Minimal dense matrix used by the spatial regression. Column-major so the
// control-group design matrix (one column per control element) can be
// assembled column-by-column.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace litmus::ts {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[c * rows_ + r];
  }
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[c * rows_ + r];
  }

  std::span<const double> column(std::size_t c) const noexcept;
  std::span<double> column(std::size_t c) noexcept;

  /// Copies `values` into column `c`; sizes must match.
  void set_column(std::size_t c, std::span<const double> values);

  /// Matrix with the listed columns, in order.
  Matrix select_columns(std::span<const std::size_t> cols) const;

  /// y = A x (x.size() == cols()).
  std::vector<double> multiply(std::span<const double> x) const;

  /// A^T y (y.size() == rows()).
  std::vector<double> transpose_multiply(std::span<const double> y) const;

  /// True when any entry is NaN.
  bool has_missing() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace litmus::ts
