// Gram-matrix fast path for the Litmus sampling loop.
//
// The robust spatial regression fits the *same* before-window panel
// hundreds of times, each time on a different k-column subset of the
// design. Re-running Householder QR per subset costs O(m·k²) per
// iteration. A GramPanel instead precomputes, once per window,
//
//   G = X̃ᵀX̃   and   X̃ᵀy     with X̃ = [1 | X] over the *panel rows*
//
// (the rows where y and every control column are observed, tracked with
// per-column missing bitsets). Each iteration then extracts the k̃×k̃
// submatrix of G for its column subset and solves the normal equations by
// Cholesky — O(k³) per iteration, independent of the window length m.
//
// Exactness rule: ordinary fit_ols drops only the rows incomplete in the
// *selected* columns, while G is accumulated over rows complete in *all*
// columns. The Gram solve therefore reproduces the QR fit (up to
// round-off) exactly when the subset's complete-case row set equals the
// panel row set — subset_matches_panel(), a cheap bitset comparison. When
// it differs, or the Cholesky pivot/condition check fails (the normal
// equations square the condition number, so near-collinear subsets are
// left to QR), the caller falls back to fit_ols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsmath/linreg.h"
#include "tsmath/matrix.h"

namespace litmus::ts {

/// Reusable scratch for GramPanel::solve_subset; keep one per thread and
/// the solve allocates nothing once capacities are warm.
struct GramScratch {
  std::vector<double> g;    ///< packed k̃×k̃ sub-Gram / Cholesky factor
  std::vector<double> rhs;  ///< sub X̃ᵀy
  std::vector<double> sol;  ///< solution vector
};

class GramPanel {
 public:
  GramPanel() = default;

  /// Accumulates the Gram system over the complete-case rows of `design`
  /// (and `y`). O(m·N²), once per window.
  static GramPanel build(const Matrix& design, std::span<const double> y,
                         bool with_intercept);

  /// Whether precomputing the panel pays for itself. The build costs
  /// ~m·N²/2 multiply-adds over ALL N columns, while each iteration it
  /// replaces saves ~m·k² (the QR fit over only the k selected columns).
  /// Dividing out m, the crossover is n_iterations·k² vs N²/2; below it
  /// (large control group, few iterations, or k clamped far below N by a
  /// short window) the precompute costs more than the QR loop it removes,
  /// so callers should skip build() and fit with QR directly.
  static bool worthwhile(std::size_t n_iterations, std::size_t k,
                         std::size_t n_cols) noexcept {
    return n_iterations * k * k >= n_cols * n_cols / 2;
  }

  /// False when too few complete rows exist for any subset fit; callers
  /// should then use fit_ols unconditionally.
  bool ok() const noexcept { return ok_; }

  /// Rows complete in y and every design column.
  std::size_t panel_rows() const noexcept { return n_rows_; }

  /// True when restricting the design to `cols` keeps the complete-case
  /// row set identical to the panel's — the condition under which
  /// solve_subset is exact. O(k · m/64).
  bool subset_matches_panel(std::span<const std::size_t> cols) const noexcept;

  /// Cholesky-solves the normal equations for the given column subset and
  /// fills `out` (coefficients, intercept, R², residual stddev, condition,
  /// ok). Returns false — leaving `out` untouched except ok == false —
  /// when the submatrix is numerically non-positive-definite or too
  /// ill-conditioned for the normal equations; callers fall back to QR.
  bool solve_subset(std::span<const std::size_t> cols, GramScratch& scratch,
                    LinearModel& out) const;

 private:
  std::size_t n_cols_ = 0;   ///< design columns (controls)
  std::size_t n_rows_ = 0;   ///< panel (complete-case) rows
  bool with_intercept_ = true;
  bool ok_ = false;
  /// Full augmented Gram matrix, (N+1)×(N+1) row-major; index 0 is the
  /// intercept column, index j+1 is design column j.
  std::vector<double> g_;
  std::vector<double> xty_;  ///< augmented X̃ᵀy, size N+1
  double yty_ = 0.0;         ///< Σ y² over panel rows
  double sum_y_ = 0.0;       ///< Σ y over panel rows
  /// Missing-row bitsets: per design column, and the union over y and all
  /// columns (the complement of the panel row set).
  std::vector<std::vector<std::uint64_t>> col_missing_;
  std::vector<std::uint64_t> y_missing_;
  std::vector<std::uint64_t> all_missing_;
};

}  // namespace litmus::ts
