// Gram-matrix fast path for the Litmus sampling loop.
//
// The robust spatial regression fits the *same* before-window panel
// hundreds of times, each time on a different k-column subset of the
// design. Re-running Householder QR per subset costs O(m·k²) per
// iteration. The fast path instead precomputes, once per design,
//
//   G = X̃ᵀX̃        with X̃ = [1 | X] over the *panel rows*
//
// (the rows where every control column is observed, tracked with
// per-column missing bitsets), then binds a response y to form X̃ᵀy and
// the y moments, and solves each iteration's k̃×k̃ normal-equation
// subsystem by Cholesky — O(k³) per iteration, independent of the window
// length m.
//
// The precompute is split in two so the expensive design-only half can be
// shared (and cached — litmus/panel_cache.h) across study elements that
// regress onto the same control panel:
//
//   * GramPanel — design-only and immutable after build(): complete-case
//     row set, per-column validity bitsets, the packed (gathered,
//     contiguous) column data, and G accumulated over the panel rows with
//     a register-blocked columnar kernel. Safe to share across threads.
//   * GramSystem — one response bound to a panel: X̃ᵀy, Σy, Σy² and the
//     joint missing-row bitset. When y is missing on some panel rows the
//     bind re-accumulates a reduced G over the joint rows (same columnar
//     kernel, same row order — results do not depend on whether the panel
//     came from a cache).
//
// Exactness rule: ordinary fit_ols drops only the rows incomplete in the
// *selected* columns, while G is accumulated over rows complete in *all*
// columns (∩ y). The Gram solve therefore reproduces the QR fit (up to
// round-off) exactly when the subset's complete-case row set equals the
// panel row set — subset_matches_panel(), a cheap bitset comparison. When
// it differs, or the Cholesky pivot/condition check fails (the normal
// equations square the condition number, so near-collinear subsets are
// left to QR), the caller falls back to fit_ols.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsmath/linreg.h"
#include "tsmath/matrix.h"

namespace litmus::ts {

/// Reusable scratch for GramSystem::solve_subset; keep one per thread and
/// the solve allocates nothing once capacities are warm.
struct GramScratch {
  std::vector<double> g;    ///< packed k̃×k̃ sub-Gram / Cholesky factor
  std::vector<double> rhs;  ///< sub X̃ᵀy
  std::vector<double> sol;  ///< solution vector
};

class GramPanel {
 public:
  GramPanel() = default;

  /// Accumulates the design-only Gram system over the complete-case rows
  /// of `design` (rows observed in every column). O(m·N²), once per
  /// design; the result is immutable and safe to share across threads.
  static GramPanel build(const Matrix& design);

  /// Whether precomputing the panel pays for itself. The build costs
  /// ~m·N²/2 multiply-adds over ALL N columns, while each iteration it
  /// replaces saves ~m·k² (the QR fit over only the k selected columns).
  /// Dividing out m, the crossover is n_iterations·k² vs N²/2; below it
  /// (large control group, few iterations, or k clamped far below N by a
  /// short window) the precompute costs more than the QR loop it removes,
  /// so callers should skip build() and fit with QR directly. (A panel
  /// cache hit makes the build free, but the decision must not depend on
  /// cache state or cached and uncached runs could diverge.)
  static bool worthwhile(std::size_t n_iterations, std::size_t k,
                         std::size_t n_cols) noexcept {
    return n_iterations * k * k >= n_cols * n_cols / 2;
  }

  /// False when too few complete rows exist for any subset fit; callers
  /// should then use fit_ols unconditionally.
  bool ok() const noexcept { return ok_; }

  /// Rows complete in every design column.
  std::size_t panel_rows() const noexcept { return n_rows_; }
  std::size_t cols() const noexcept { return n_cols_; }
  /// Rows of the design the panel was built from.
  std::size_t design_rows() const noexcept { return m_; }

  /// Heap bytes held (cache budget accounting).
  std::size_t bytes() const noexcept;

 private:
  friend class GramSystem;

  std::size_t n_cols_ = 0;  ///< design columns (controls)
  std::size_t n_rows_ = 0;  ///< panel (complete-case) rows
  std::size_t m_ = 0;       ///< design rows
  std::size_t words_ = 0;   ///< bitset words per column (⌈m/64⌉)
  bool ok_ = false;
  /// Design-only augmented Gram, (N+1)×(N+1) row-major over the panel
  /// rows; index 0 is the intercept column, index j+1 is design column j.
  std::vector<double> g_;
  /// Panel rows gathered contiguous: column-major n_rows_×n_cols_, the
  /// complete-case rows of the design in ascending row order.
  std::vector<double> packed_;
  std::vector<std::uint32_t> rows_;  ///< panel row indices, ascending
  /// Missing-row bitsets: column c occupies words [c·words_, (c+1)·words_),
  /// plus the union over all columns (complement of the panel row set).
  std::vector<std::uint64_t> col_missing_;
  std::vector<std::uint64_t> x_missing_;
};

/// One response bound to a GramPanel: the per-study-element half of the
/// normal equations. Cheap to build — O(m·N) — against a shared panel;
/// falls back to an owned O(m·N²) re-accumulation only when y is missing
/// on some panel rows. Holds a pointer to the panel: the panel must
/// outlive the system.
class GramSystem {
 public:
  GramSystem() = default;

  /// Binds `y` (size == panel.design_rows()) to the panel. Returns false —
  /// leaving ok() false — when the panel is not ok, sizes mismatch, or
  /// fewer than 4 rows are complete in y and every column.
  bool bind(const GramPanel& panel, std::span<const double> y,
            bool with_intercept);

  bool ok() const noexcept { return ok_; }

  /// Rows complete in y and every design column.
  std::size_t rows() const noexcept { return n_rows_; }

  /// True when restricting the design to `cols` keeps the complete-case
  /// row set identical to this system's — the condition under which
  /// solve_subset is exact. O(k · m/64).
  bool subset_matches_panel(std::span<const std::size_t> cols) const noexcept;

  /// Cholesky-solves the normal equations for the given column subset and
  /// fills `out` (coefficients, intercept, R², residual stddev, condition,
  /// ok). Returns false — leaving `out` untouched except ok == false —
  /// when the submatrix is numerically non-positive-definite or too
  /// ill-conditioned for the normal equations; callers fall back to QR.
  bool solve_subset(std::span<const std::size_t> cols, GramScratch& scratch,
                    LinearModel& out) const;

 private:
  const GramPanel* panel_ = nullptr;
  bool ok_ = false;
  bool with_intercept_ = true;
  std::size_t n_rows_ = 0;   ///< joint complete-case rows
  std::vector<double> xty_;  ///< augmented X̃ᵀy, size N+1
  double yty_ = 0.0;         ///< Σ y² over joint rows
  double sum_y_ = 0.0;       ///< Σ y over joint rows
  /// Rows where y is missing, and x_missing ∪ y_missing — the complement
  /// of the joint row set. Both kept: subset_matches_panel needs y's own
  /// bits (a row missing in y *and* in an unselected column is dropped by
  /// the plain fit too, so such subsets still match).
  std::vector<std::uint64_t> y_missing_;
  std::vector<std::uint64_t> all_missing_;
  /// Reduced G when y is missing on panel rows; empty when the shared
  /// panel G applies verbatim.
  std::vector<double> g_reduced_;

  const double* gram() const noexcept {
    return g_reduced_.empty() ? panel_->g_.data() : g_reduced_.data();
  }
};

}  // namespace litmus::ts
