#include "tsmath/timeseries.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tsmath/simd/kernels.h"

namespace litmus::ts {

bool is_missing(double v) noexcept { return std::isnan(v); }

TimeSeries::TimeSeries(std::int64_t start_bin, std::size_t n, int bin_minutes)
    : start_bin_(start_bin),
      bin_minutes_(bin_minutes),
      values_(n, kMissing) {
  if (bin_minutes <= 0) throw std::invalid_argument("bin_minutes must be > 0");
}

TimeSeries::TimeSeries(std::int64_t start_bin, std::vector<double> values,
                       int bin_minutes)
    : start_bin_(start_bin),
      bin_minutes_(bin_minutes),
      values_(std::move(values)) {
  if (bin_minutes <= 0) throw std::invalid_argument("bin_minutes must be > 0");
}

std::int64_t TimeSeries::end_bin() const noexcept {
  return start_bin_ + static_cast<std::int64_t>(values_.size());
}

double TimeSeries::at_bin(std::int64_t bin) const noexcept {
  if (bin < start_bin_ || bin >= end_bin()) return kMissing;
  return values_[static_cast<std::size_t>(bin - start_bin_)];
}

void TimeSeries::set_bin(std::int64_t bin, double v) noexcept {
  if (bin < start_bin_ || bin >= end_bin()) return;
  values_[static_cast<std::size_t>(bin - start_bin_)] = v;
}

std::size_t TimeSeries::observed_count() const noexcept {
  return values_.size() - simd::count_missing(values_);
}

TimeSeries TimeSeries::slice_bins(std::int64_t from, std::int64_t to) const {
  from = std::max(from, start_bin_);
  to = std::min(to, end_bin());
  if (from >= to) return TimeSeries(from, std::vector<double>{}, bin_minutes_);
  auto first = values_.begin() + static_cast<std::ptrdiff_t>(from - start_bin_);
  auto last = values_.begin() + static_cast<std::ptrdiff_t>(to - start_bin_);
  return TimeSeries(from, std::vector<double>(first, last), bin_minutes_);
}

TimeSeries TimeSeries::window_before(std::int64_t bin, std::size_t n) const {
  return slice_bins(bin - static_cast<std::int64_t>(n), bin);
}

TimeSeries TimeSeries::window_after(std::int64_t bin, std::size_t n) const {
  return slice_bins(bin, bin + static_cast<std::int64_t>(n));
}

std::vector<double> TimeSeries::observed() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (double v : values_)
    if (!is_missing(v)) out.push_back(v);
  return out;
}

void TimeSeries::copy_range_into(std::int64_t from_bin,
                                 std::span<double> out) const noexcept {
  const std::int64_t to_bin = from_bin + static_cast<std::int64_t>(out.size());
  const std::int64_t lo = std::max(from_bin, start_bin_);
  const std::int64_t hi = std::min(to_bin, end_bin());
  if (lo >= hi) {
    std::fill(out.begin(), out.end(), kMissing);
    return;
  }
  const std::size_t head = static_cast<std::size_t>(lo - from_bin);
  const std::size_t n = static_cast<std::size_t>(hi - lo);
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(head),
            kMissing);
  std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(lo - start_bin_),
              n, out.begin() + static_cast<std::ptrdiff_t>(head));
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(head + n), out.end(),
            kMissing);
}

TimeSeries TimeSeries::minus(const TimeSeries& other) const {
  const std::int64_t from = std::max(start_bin_, other.start_bin_);
  const std::int64_t to = std::min(end_bin(), other.end_bin());
  if (from >= to) return TimeSeries(from, std::vector<double>{}, bin_minutes_);
  TimeSeries out(from, static_cast<std::size_t>(to - from), bin_minutes_);
  for (std::int64_t b = from; b < to; ++b) {
    const double a = at_bin(b);
    const double c = other.at_bin(b);
    if (!is_missing(a) && !is_missing(c)) out.set_bin(b, a - c);
  }
  return out;
}

void TimeSeries::add_level(std::int64_t from, std::int64_t to, double delta) {
  from = std::max(from, start_bin_);
  to = std::min(to, end_bin());
  for (std::int64_t b = from; b < to; ++b) {
    const double v = at_bin(b);
    if (!is_missing(v)) set_bin(b, v + delta);
  }
}

void TimeSeries::add_ramp(std::int64_t from, std::int64_t to, double delta) {
  if (to <= from + 1) {
    add_level(from, to, delta);
    return;
  }
  const double span = static_cast<double>(to - 1 - from);
  const std::int64_t lo = std::max(from, start_bin_);
  const std::int64_t hi = std::min(to, end_bin());
  for (std::int64_t b = lo; b < hi; ++b) {
    const double v = at_bin(b);
    if (is_missing(v)) continue;
    const double frac = static_cast<double>(b - from) / span;
    set_bin(b, v + delta * frac);
  }
}

void TimeSeries::clamp(double lo, double hi) noexcept {
  for (double& v : values_)
    if (!is_missing(v)) v = std::clamp(v, lo, hi);
}

BinRange common_range(std::span<const TimeSeries> series) {
  BinRange r;
  if (series.empty()) return r;
  r.from = series[0].start_bin();
  r.to = series[0].end_bin();
  for (const auto& s : series.subspan(1)) {
    r.from = std::max(r.from, s.start_bin());
    r.to = std::min(r.to, s.end_bin());
  }
  return r;
}

}  // namespace litmus::ts
