// Principal component analysis via covariance + orthogonal power iteration.
//
// Used by the unsupervised-baseline analyzer (litmus/unsupervised.h): the
// paper's related-work discussion (Section 2.4) contrasts Litmus with
// PCA/subspace network-wide anomaly detection (Lakhina et al., Huang et
// al.) and argues such detectors cannot attribute a *relative* change to
// the study group. We implement the detector so the claim is testable.
#pragma once

#include <cstddef>
#include <vector>

#include "tsmath/matrix.h"

namespace litmus::ts {

struct PcaModel {
  std::vector<double> mean;          ///< per-column mean
  /// Principal directions, one vector of length n_cols per component,
  /// ordered by decreasing eigenvalue.
  std::vector<std::vector<double>> components;
  std::vector<double> eigenvalues;   ///< variance captured per component
  double total_variance = 0.0;
  bool ok = false;

  std::size_t dimensions() const noexcept { return mean.size(); }

  /// Fraction of variance captured by the retained components.
  double explained_fraction() const noexcept;

  /// Projects a row onto the principal subspace and returns the residual
  /// (row - mean - projection). NaN entries invalidate the result (all-NaN
  /// residual).
  std::vector<double> residual(std::span<const double> row) const;

  /// Squared norm of the residual; NaN when the row has missing entries.
  double residual_energy(std::span<const double> row) const;
};

/// Fits PCA on the rows of `data` (rows = observations, columns =
/// variables), keeping `n_components` directions. Rows containing NaN are
/// dropped. Requires at least n_components + 2 complete rows.
PcaModel fit_pca(const Matrix& data, std::size_t n_components,
                 std::size_t max_iterations = 200, double tolerance = 1e-10);

}  // namespace litmus::ts
