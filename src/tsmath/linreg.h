// Ordinary least squares via Householder QR.
//
// The paper (Section 3.2) deliberately uses *unregularized* linear
// regression: ridge/lasso shrinkage would allow post-change shifts in a
// small number of control elements to bend the forecast, which is exactly
// what the sampling + median-aggregation machinery is designed to prevent.
// QR is used (rather than normal equations) for numerical robustness when
// control-group series are strongly collinear — which they are by design,
// since controls are chosen to be spatially correlated.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsmath/matrix.h"

namespace litmus::ts {

struct LinearModel {
  std::vector<double> coefficients;  ///< one per design column
  double intercept = 0.0;
  bool with_intercept = true;
  double r_squared = 0.0;            ///< in-sample fit quality
  double residual_stddev = 0.0;
  /// Conditioning diagnostic: max|R_kk| / min|R_kk| of the QR factor. A
  /// lower bound on the 2-norm condition number of the (augmented) design;
  /// large values flag near-collinear control groups.
  double condition = 0.0;
  bool ok = false;                   ///< false when the fit is degenerate

  /// Forecast for one design row.
  double predict_row(std::span<const double> row) const;

  /// Forecast for every row of `design`. Iterates the column-major storage
  /// directly (no per-row copy); rows with a missing regressor forecast
  /// kMissing.
  std::vector<double> predict(const Matrix& design) const;

  /// Forecast for every row of `design` restricted to columns `cols`
  /// (cols.size() must equal coefficients.size()), without materializing
  /// the column subset. `out` is resized to design.rows(); reuse it across
  /// calls to keep the hot loop allocation-free.
  void predict_columns_into(const Matrix& design,
                            std::span<const std::size_t> cols,
                            std::vector<double>& out) const;
};

/// Fits y ≈ X beta (+ intercept). Rows of X where y or any regressor is
/// missing are dropped. Requires at least cols+2 complete rows; otherwise
/// returns a model with ok == false.
LinearModel fit_ols(const Matrix& design, std::span<const double> y,
                    bool with_intercept = true);

/// Householder QR least-squares solve of A x = b (A.rows() >= A.cols()).
/// Returns empty vector when A is numerically rank-deficient. When
/// `condition` is non-null it receives the R-diagonal ratio described at
/// LinearModel::condition (even for rank-deficient solves, where it is 0).
std::vector<double> qr_solve(const Matrix& a, std::span<const double> b,
                             double* condition = nullptr);

}  // namespace litmus::ts
