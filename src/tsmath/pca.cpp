#include "tsmath/pca.h"

#include <algorithm>
#include <cmath>

#include "tsmath/random.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double norm(std::span<const double> v) { return std::sqrt(dot(v, v)); }

}  // namespace

double PcaModel::explained_fraction() const noexcept {
  if (!ok || total_variance <= 0.0) return 0.0;
  double captured = 0;
  for (double e : eigenvalues) captured += e;
  return std::min(1.0, captured / total_variance);
}

std::vector<double> PcaModel::residual(std::span<const double> row) const {
  std::vector<double> r(row.size(), kMissing);
  if (!ok || row.size() != mean.size()) return r;
  for (double v : row)
    if (is_missing(v)) return r;
  for (std::size_t i = 0; i < row.size(); ++i) r[i] = row[i] - mean[i];
  for (const auto& pc : components) {
    const double proj = dot(r, pc);
    axpy(-proj, pc, r);
  }
  return r;
}

double PcaModel::residual_energy(std::span<const double> row) const {
  const std::vector<double> r = residual(row);
  double s = 0;
  for (double v : r) {
    if (is_missing(v)) return kMissing;
    s += v * v;
  }
  return s;
}

PcaModel fit_pca(const Matrix& data, std::size_t n_components,
                 std::size_t max_iterations, double tolerance) {
  PcaModel model;
  const std::size_t dims = data.cols();
  if (dims == 0) return model;
  n_components = std::min(n_components, dims);

  // Complete-case rows.
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    bool complete = true;
    for (std::size_t c = 0; c < dims; ++c)
      if (is_missing(data(r, c))) {
        complete = false;
        break;
      }
    if (complete) rows.push_back(r);
  }
  if (rows.size() < n_components + 2) return model;

  model.mean.assign(dims, 0.0);
  for (const std::size_t r : rows)
    for (std::size_t c = 0; c < dims; ++c) model.mean[c] += data(r, c);
  for (double& m : model.mean) m /= static_cast<double>(rows.size());

  // Covariance matrix (dims x dims).
  Matrix cov(dims, dims, 0.0);
  for (const std::size_t r : rows)
    for (std::size_t i = 0; i < dims; ++i) {
      const double di = data(r, i) - model.mean[i];
      for (std::size_t j = i; j < dims; ++j)
        cov(i, j) += di * (data(r, j) - model.mean[j]);
    }
  const double denom = static_cast<double>(rows.size() - 1);
  for (std::size_t i = 0; i < dims; ++i)
    for (std::size_t j = i; j < dims; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  for (std::size_t i = 0; i < dims; ++i) model.total_variance += cov(i, i);

  // Orthogonal power iteration with deflation.
  Rng rng(0xA11CEDULL);
  for (std::size_t k = 0; k < n_components; ++k) {
    std::vector<double> v(dims);
    for (double& x : v) x = rng.normal();
    double lambda = 0.0;
    for (std::size_t it = 0; it < max_iterations; ++it) {
      // w = cov * v, then re-orthogonalize against found components.
      std::vector<double> w(dims, 0.0);
      for (std::size_t i = 0; i < dims; ++i) {
        double s = 0;
        for (std::size_t j = 0; j < dims; ++j) s += cov(i, j) * v[j];
        w[i] = s;
      }
      for (const auto& pc : model.components) {
        const double proj = dot(w, pc);
        axpy(-proj, pc, w);
      }
      const double n = norm(w);
      if (n < 1e-14) break;  // exhausted variance
      for (std::size_t i = 0; i < dims; ++i) w[i] /= n;
      double delta = 0;
      for (std::size_t i = 0; i < dims; ++i)
        delta = std::max(delta, std::fabs(w[i] - v[i]));
      // Sign flips count as converged too.
      double delta_neg = 0;
      for (std::size_t i = 0; i < dims; ++i)
        delta_neg = std::max(delta_neg, std::fabs(w[i] + v[i]));
      v = std::move(w);
      lambda = n;
      if (std::min(delta, delta_neg) < tolerance) break;
    }
    if (lambda < 1e-14) break;
    model.eigenvalues.push_back(lambda);
    model.components.push_back(std::move(v));
  }

  model.ok = !model.components.empty();
  return model;
}

}  // namespace litmus::ts
