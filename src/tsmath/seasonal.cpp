#include "tsmath/seasonal.h"

#include <algorithm>
#include <cmath>

#include "tsmath/stats.h"

namespace litmus::ts {

std::vector<double> moving_average(std::span<const double> xs, std::size_t w) {
  std::vector<double> out(xs.size(), kMissing);
  if (w == 0 || w % 2 == 0 || xs.size() < w) return out;
  const std::size_t half = w / 2;
  for (std::size_t i = half; i + half < xs.size(); ++i) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t j = i - half; j <= i + half; ++j) {
      if (is_missing(xs[j])) continue;
      sum += xs[j];
      ++n;
    }
    if (n >= (w + 1) / 2) out[i] = sum / static_cast<double>(n);
  }
  return out;
}

std::vector<double> seasonal_means(std::span<const double> xs,
                                   std::size_t period) {
  std::vector<double> sums(period, 0.0);
  std::vector<std::size_t> counts(period, 0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    sums[i % period] += xs[i];
    ++counts[i % period];
  }
  std::vector<double> out(period, kMissing);
  for (std::size_t p = 0; p < period; ++p)
    if (counts[p] > 0) out[p] = sums[p] / static_cast<double>(counts[p]);
  return out;
}

Decomposition decompose_additive(std::span<const double> xs,
                                 std::size_t period) {
  Decomposition d;
  const std::size_t w = period % 2 == 1 ? period : period + 1;
  d.trend = moving_average(xs, w);

  std::vector<double> detrended(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!is_missing(xs[i]) && !is_missing(d.trend[i]))
      detrended[i] = xs[i] - d.trend[i];

  std::vector<double> phase = seasonal_means(detrended, period);
  // Normalize the seasonal component to mean zero so trend owns the level.
  const double phase_mean = mean(phase);
  if (!is_missing(phase_mean))
    for (double& v : phase)
      if (!is_missing(v)) v -= phase_mean;

  d.seasonal.assign(xs.size(), kMissing);
  d.remainder.assign(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    d.seasonal[i] = phase[i % period];
    if (!is_missing(xs[i]) && !is_missing(d.trend[i]) &&
        !is_missing(d.seasonal[i]))
      d.remainder[i] = xs[i] - d.trend[i] - d.seasonal[i];
  }
  return d;
}

double seasonal_strength(std::span<const double> xs, std::size_t period) {
  const Decomposition d = decompose_additive(xs, period);
  std::vector<double> seas_plus_rem(xs.size(), kMissing);
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!is_missing(d.seasonal[i]) && !is_missing(d.remainder[i]))
      seas_plus_rem[i] = d.seasonal[i] + d.remainder[i];
  const double var_rem = variance(d.remainder);
  const double var_sum = variance(seas_plus_rem);
  if (is_missing(var_rem) || is_missing(var_sum) || var_sum <= 0.0) return 0.0;
  return std::clamp(1.0 - var_rem / var_sum, 0.0, 1.0);
}

double theil_sen_slope(std::span<const double> xs) {
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (!is_missing(xs[i])) pts.emplace_back(static_cast<double>(i), xs[i]);
  if (pts.size() < 2) return kMissing;
  std::vector<double> slopes;
  slopes.reserve(pts.size() * (pts.size() - 1) / 2);
  for (std::size_t i = 0; i < pts.size(); ++i)
    for (std::size_t j = i + 1; j < pts.size(); ++j)
      slopes.push_back((pts[j].second - pts[i].second) /
                       (pts[j].first - pts[i].first));
  return median(slopes);
}

double linear_trend_slope(std::span<const double> xs) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (is_missing(xs[i])) continue;
    const double x = static_cast<double>(i);
    sx += x;
    sy += xs[i];
    sxx += x * x;
    sxy += x * xs[i];
    ++n;
  }
  if (n < 2) return kMissing;
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (denom == 0.0) return kMissing;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

}  // namespace litmus::ts
