// Nonparametric two-sample location tests.
//
// Litmus compares the forecast-difference series before and after a change
// with the robust rank-order test (Fligner & Policello 1981; recommended for
// this setting by Feltovich 2003 and Lanzante 1996, both cited by the paper).
// The Wilcoxon-Mann-Whitney test is also provided: it is the classical
// alternative and is used in the ablation bench to show why the paper prefers
// the robust variant (WMW assumes equal dispersion under H0).
#pragma once

#include <cstddef>
#include <span>

#include "tsmath/timeseries.h"

namespace litmus::ts {

/// Direction of a detected two-sample location shift (x relative to y).
enum class Shift {
  kNone,      ///< no statistically significant shift
  kIncrease,  ///< x tends to be larger than y
  kDecrease,  ///< x tends to be smaller than y
};

const char* to_string(Shift s) noexcept;

struct TestResult {
  double statistic = kMissing;  ///< large-sample z statistic
  double p_value = kMissing;    ///< two-sided
  std::size_t n_x = 0;
  std::size_t n_y = 0;
  Shift shift = Shift::kNone;   ///< at the alpha passed to the test

  bool significant() const noexcept { return shift != Shift::kNone; }
};

/// Wilcoxon-Mann-Whitney with mid-ranks, tie-corrected variance and the
/// normal approximation. `xs`/`ys` may contain missing values.
TestResult wilcoxon_mann_whitney(std::span<const double> xs,
                                 std::span<const double> ys,
                                 double alpha = 0.05);

/// Fligner-Policello robust rank-order test. Unlike WMW it does not assume
/// the two samples share a dispersion under H0, which matters when a change
/// alters variability as well as level. Uses the large-sample normal
/// approximation; for tiny samples (< 12 total) the test conservatively
/// reports no shift unless the samples are fully separated.
TestResult robust_rank_order(std::span<const double> xs,
                             std::span<const double> ys,
                             double alpha = 0.05);

TestResult robust_rank_order(const TimeSeries& x, const TimeSeries& y,
                             double alpha = 0.05);

}  // namespace litmus::ts
