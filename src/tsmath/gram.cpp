#include "tsmath/gram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tsmath/simd/kernels.h"
#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

constexpr std::size_t kWordBits = 64;

/// Normal equations square the condition number, so refuse subsets whose
/// Cholesky diagonal ratio (≈ cond₂ of the design) exceeds this and let
/// the QR fallback handle them.
constexpr double kMaxConditionRatio = 1e7;

inline bool test_bit(std::span<const std::uint64_t> bits,
                     std::size_t i) noexcept {
  return (bits[i / kWordBits] >> (i % kWordBits)) & 1u;
}

// Accumulates the augmented Gram matrix over `cols` packed (contiguous,
// complete-case) columns of `n` rows each into `g`, a (cols+1)² row-major
// buffer. Routed through the dispatched SIMD kernel: all tiers follow the
// same fixed 8-lane block accumulation order (simd/dispatch.h), so the
// result is identical whichever tier runs it.
void accumulate_gram(const double* packed, std::size_t n, std::size_t cols,
                     std::vector<double>& g) {
  const std::size_t aug = cols + 1;
  g.assign(aug * aug, 0.0);
  simd::accumulate_gram(packed, n, cols, g.data());
}

}  // namespace

GramPanel GramPanel::build(const Matrix& design) {
  GramPanel p;
  p.n_cols_ = design.cols();
  p.m_ = design.rows();
  if (p.m_ == 0 || p.n_cols_ == 0) return p;

  p.words_ = (p.m_ + kWordBits - 1) / kWordBits;
  p.col_missing_.assign(p.n_cols_ * p.words_, 0);
  p.x_missing_.assign(p.words_, 0);

  for (std::size_t c = 0; c < p.n_cols_; ++c) {
    const auto col = design.column(c);
    std::uint64_t* bits = p.col_missing_.data() + c * p.words_;
    simd::scan_missing_bits(col, bits);
    for (std::size_t w = 0; w < p.words_; ++w) p.x_missing_[w] |= bits[w];
  }

  p.rows_.reserve(p.m_);
  for (std::size_t r = 0; r < p.m_; ++r)
    if (!test_bit(p.x_missing_, r))
      p.rows_.push_back(static_cast<std::uint32_t>(r));
  p.n_rows_ = p.rows_.size();
  // The tightest subset fit needs aug+2 rows; require at least the
  // smallest useful panel so degenerate windows skip straight to QR.
  if (p.n_rows_ < 4) return p;

  // Gather the complete-case rows contiguous (column-major), then run the
  // blocked columnar accumulation on stride-1 memory.
  p.packed_.resize(p.n_rows_ * p.n_cols_);
  for (std::size_t c = 0; c < p.n_cols_; ++c) {
    const auto col = design.column(c);
    double* out = p.packed_.data() + c * p.n_rows_;
    for (std::size_t i = 0; i < p.n_rows_; ++i) out[i] = col[p.rows_[i]];
  }
  accumulate_gram(p.packed_.data(), p.n_rows_, p.n_cols_, p.g_);
  p.ok_ = true;
  return p;
}

std::size_t GramPanel::bytes() const noexcept {
  return g_.capacity() * sizeof(double) + packed_.capacity() * sizeof(double) +
         rows_.capacity() * sizeof(std::uint32_t) +
         (col_missing_.capacity() + x_missing_.capacity()) *
             sizeof(std::uint64_t) +
         sizeof(GramPanel);
}

bool GramSystem::bind(const GramPanel& panel, std::span<const double> y,
                      bool with_intercept) {
  panel_ = &panel;
  ok_ = false;
  g_reduced_.clear();
  with_intercept_ = with_intercept;
  if (!panel.ok_ || y.size() != panel.m_) return false;

  y_missing_.resize(panel.words_);
  simd::scan_missing_bits(y, y_missing_.data());

  all_missing_.resize(panel.words_);
  bool reduced = false;
  for (std::size_t w = 0; w < panel.words_; ++w) {
    all_missing_[w] = panel.x_missing_[w] | y_missing_[w];
    reduced |= all_missing_[w] != panel.x_missing_[w];
  }

  // Gather y over the usable panel rows; positions index into the panel's
  // packed row order so the reduced re-accumulation can gather from the
  // already-packed columns.
  std::vector<std::uint32_t> positions;
  std::vector<double> y_packed;
  y_packed.reserve(panel.n_rows_);
  if (reduced) {
    positions.reserve(panel.n_rows_);
    for (std::size_t i = 0; i < panel.n_rows_; ++i)
      if (!is_missing(y[panel.rows_[i]])) {
        positions.push_back(static_cast<std::uint32_t>(i));
        y_packed.push_back(y[panel.rows_[i]]);
      }
    n_rows_ = positions.size();
  } else {
    for (std::size_t i = 0; i < panel.n_rows_; ++i)
      y_packed.push_back(y[panel.rows_[i]]);
    n_rows_ = panel.n_rows_;
  }
  if (n_rows_ < 4) return false;

  const double* cols_data = panel.packed_.data();
  std::vector<double> reduced_packed;
  if (reduced) {
    // y knocks rows out of the panel: re-gather the surviving rows and
    // re-accumulate an owned G over them with the same kernel (and the
    // same ascending row order) a fresh build over the joint rows would
    // use, so a shared/cached panel yields bit-identical results.
    reduced_packed.resize(n_rows_ * panel.n_cols_);
    for (std::size_t c = 0; c < panel.n_cols_; ++c) {
      const double* in = panel.packed_.data() + c * panel.n_rows_;
      double* out = reduced_packed.data() + c * n_rows_;
      for (std::size_t i = 0; i < n_rows_; ++i) out[i] = in[positions[i]];
    }
    cols_data = reduced_packed.data();
    accumulate_gram(cols_data, n_rows_, panel.n_cols_, g_reduced_);
  }

  // X̃ᵀy GEMV through the dispatched kernels: Σy, yᵀy, then one packed
  // column·y dot per predictor.
  const std::span<const double> yp{y_packed.data(), n_rows_};
  sum_y_ = simd::sum(yp);
  yty_ = simd::dot(yp, yp);
  xty_.assign(panel.n_cols_ + 1, 0.0);
  xty_[0] = sum_y_;
  for (std::size_t c = 0; c < panel.n_cols_; ++c) {
    const double* pc = cols_data + c * n_rows_;
    xty_[c + 1] = simd::dot({pc, n_rows_}, yp);
  }
  ok_ = true;
  return true;
}

bool GramSystem::subset_matches_panel(
    std::span<const std::size_t> cols) const noexcept {
  if (!ok_) return false;
  const std::size_t words = panel_->words_;
  for (std::size_t w = 0; w < words; ++w) {
    // The plain fit drops rows missing in y or in a *selected* column; the
    // solve is exact iff that union reproduces the joint complement the
    // Gram quantities were accumulated over.
    std::uint64_t u = y_missing_[w];
    for (const auto c : cols) u |= panel_->col_missing_[c * words + w];
    if (u != all_missing_[w]) return false;
  }
  return true;
}

bool GramSystem::solve_subset(std::span<const std::size_t> cols,
                              GramScratch& scratch, LinearModel& out) const {
  out = LinearModel{};
  out.with_intercept = with_intercept_;
  const std::size_t k = cols.size();
  const std::size_t ka = k + (with_intercept_ ? 1 : 0);
  if (!ok_ || k == 0 || n_rows_ < ka + 2) return false;

  // Extract the subset's normal system into the scratch arena. Augmented
  // index i maps to full-Gram index 0 (intercept) or cols[...]+1.
  const std::size_t aug = panel_->n_cols_ + 1;
  const double* g_full = gram();
  const auto full_index = [&](std::size_t i) -> std::size_t {
    if (with_intercept_) return i == 0 ? 0 : cols[i - 1] + 1;
    return cols[i] + 1;
  };
  scratch.g.resize(ka * ka);
  scratch.rhs.resize(ka);
  scratch.sol.resize(ka);
  for (std::size_t i = 0; i < ka; ++i) {
    const std::size_t fi = full_index(i);
    scratch.rhs[i] = xty_[fi];
    for (std::size_t j = 0; j <= i; ++j)
      scratch.g[i * ka + j] = g_full[fi * aug + full_index(j)];
  }

  // In-place lower Cholesky with a relative pivot guard (mirrors the
  // QR solver's near-singular diagonal check).
  double max_diag = 0.0;
  for (std::size_t i = 0; i < ka; ++i)
    max_diag = std::max(max_diag, scratch.g[i * ka + i]);
  if (!(max_diag > 0.0)) return false;
  const double pivot_floor = 1e-12 * max_diag;

  double min_l = std::numeric_limits<double>::infinity();
  double max_l = 0.0;
  for (std::size_t j = 0; j < ka; ++j) {
    double d = scratch.g[j * ka + j];
    for (std::size_t t = 0; t < j; ++t)
      d -= scratch.g[j * ka + t] * scratch.g[j * ka + t];
    if (!(d > pivot_floor)) return false;
    const double l = std::sqrt(d);
    scratch.g[j * ka + j] = l;
    min_l = std::min(min_l, l);
    max_l = std::max(max_l, l);
    for (std::size_t i = j + 1; i < ka; ++i) {
      double s = scratch.g[i * ka + j];
      for (std::size_t t = 0; t < j; ++t)
        s -= scratch.g[i * ka + t] * scratch.g[j * ka + t];
      scratch.g[i * ka + j] = s / l;
    }
  }
  const double condition = max_l / min_l;
  if (condition > kMaxConditionRatio) return false;

  // Forward then back substitution: L z = rhs, Lᵀ β = z.
  for (std::size_t i = 0; i < ka; ++i) {
    double s = scratch.rhs[i];
    for (std::size_t t = 0; t < i; ++t)
      s -= scratch.g[i * ka + t] * scratch.sol[t];
    scratch.sol[i] = s / scratch.g[i * ka + i];
  }
  for (std::size_t ii = ka; ii-- > 0;) {
    double s = scratch.sol[ii];
    for (std::size_t t = ii + 1; t < ka; ++t)
      s -= scratch.g[t * ka + ii] * scratch.sol[t];
    scratch.sol[ii] = s / scratch.g[ii * ka + ii];
  }

  std::size_t c_in = 0;
  if (with_intercept_) out.intercept = scratch.sol[c_in++];
  out.coefficients.assign(
      scratch.sol.begin() + static_cast<std::ptrdiff_t>(c_in),
      scratch.sol.end());

  // Fit quality from the Gram quantities: for the normal-equation solution
  // βᵀGβ = βᵀX̃ᵀy, so SS_res = yᵀy − βᵀX̃ᵀy (clamped against round-off).
  double fitted = 0.0;
  for (std::size_t i = 0; i < ka; ++i) fitted += scratch.sol[i] * scratch.rhs[i];
  const double ss_res = std::max(0.0, yty_ - fitted);
  const double n = static_cast<double>(n_rows_);
  const double y_bar = sum_y_ / n;
  const double ss_tot = std::max(0.0, yty_ - n * y_bar * y_bar);
  out.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  const std::size_t dof = n_rows_ - ka;
  out.residual_stddev =
      dof > 0 ? std::sqrt(ss_res / static_cast<double>(dof)) : 0.0;
  out.condition = condition;
  out.ok = true;
  return true;
}

}  // namespace litmus::ts
