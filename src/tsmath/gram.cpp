#include "tsmath/gram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tsmath/timeseries.h"

namespace litmus::ts {
namespace {

constexpr std::size_t kWordBits = 64;

/// Normal equations square the condition number, so refuse subsets whose
/// Cholesky diagonal ratio (≈ cond₂ of the design) exceeds this and let
/// the QR fallback handle them.
constexpr double kMaxConditionRatio = 1e7;

inline bool test_bit(const std::vector<std::uint64_t>& bits,
                     std::size_t i) noexcept {
  return (bits[i / kWordBits] >> (i % kWordBits)) & 1u;
}

inline void set_bit(std::vector<std::uint64_t>& bits, std::size_t i) noexcept {
  bits[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

}  // namespace

GramPanel GramPanel::build(const Matrix& design, std::span<const double> y,
                           bool with_intercept) {
  GramPanel p;
  p.n_cols_ = design.cols();
  p.with_intercept_ = with_intercept;
  const std::size_t m = design.rows();
  if (m == 0 || y.size() != m || p.n_cols_ == 0) return p;

  const std::size_t words = (m + kWordBits - 1) / kWordBits;
  p.y_missing_.assign(words, 0);
  p.all_missing_.assign(words, 0);
  p.col_missing_.assign(p.n_cols_, std::vector<std::uint64_t>(words, 0));

  for (std::size_t r = 0; r < m; ++r)
    if (is_missing(y[r])) set_bit(p.y_missing_, r);
  for (std::size_t c = 0; c < p.n_cols_; ++c) {
    const auto col = design.column(c);
    for (std::size_t r = 0; r < m; ++r)
      if (is_missing(col[r])) set_bit(p.col_missing_[c], r);
  }
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t u = p.y_missing_[w];
    for (std::size_t c = 0; c < p.n_cols_; ++c) u |= p.col_missing_[c][w];
    p.all_missing_[w] = u;
  }

  std::vector<std::uint32_t> rows;
  rows.reserve(m);
  for (std::size_t r = 0; r < m; ++r)
    if (!test_bit(p.all_missing_, r))
      rows.push_back(static_cast<std::uint32_t>(r));
  p.n_rows_ = rows.size();
  // The tightest subset fit needs aug+2 rows; require at least the
  // smallest useful panel so degenerate windows skip straight to QR.
  if (p.n_rows_ < 4) return p;

  const std::size_t aug = p.n_cols_ + 1;
  p.g_.assign(aug * aug, 0.0);
  p.xty_.assign(aug, 0.0);

  // Intercept block and y moments.
  p.g_[0] = static_cast<double>(p.n_rows_);
  for (const auto r : rows) {
    p.sum_y_ += y[r];
    p.yty_ += y[r] * y[r];
  }
  p.xty_[0] = p.sum_y_;

  for (std::size_t c = 0; c < p.n_cols_; ++c) {
    const auto col = design.column(c);
    double s = 0.0, sy = 0.0;
    for (const auto r : rows) {
      s += col[r];
      sy += col[r] * y[r];
    }
    p.g_[0 * aug + (c + 1)] = s;
    p.g_[(c + 1) * aug + 0] = s;
    p.xty_[c + 1] = sy;
    for (std::size_t d = c; d < p.n_cols_; ++d) {
      const auto col2 = design.column(d);
      double dot = 0.0;
      for (const auto r : rows) dot += col[r] * col2[r];
      p.g_[(c + 1) * aug + (d + 1)] = dot;
      p.g_[(d + 1) * aug + (c + 1)] = dot;
    }
  }
  p.ok_ = true;
  return p;
}

bool GramPanel::subset_matches_panel(
    std::span<const std::size_t> cols) const noexcept {
  if (!ok_) return false;
  for (std::size_t w = 0; w < all_missing_.size(); ++w) {
    std::uint64_t u = y_missing_[w];
    for (const auto c : cols) u |= col_missing_[c][w];
    if (u != all_missing_[w]) return false;
  }
  return true;
}

bool GramPanel::solve_subset(std::span<const std::size_t> cols,
                             GramScratch& scratch, LinearModel& out) const {
  out = LinearModel{};
  out.with_intercept = with_intercept_;
  const std::size_t k = cols.size();
  const std::size_t ka = k + (with_intercept_ ? 1 : 0);
  if (!ok_ || k == 0 || n_rows_ < ka + 2) return false;

  // Extract the subset's normal system into the scratch arena. Augmented
  // index i maps to full-Gram index 0 (intercept) or cols[...]+1.
  const std::size_t aug = n_cols_ + 1;
  const auto full_index = [&](std::size_t i) -> std::size_t {
    if (with_intercept_) return i == 0 ? 0 : cols[i - 1] + 1;
    return cols[i] + 1;
  };
  scratch.g.resize(ka * ka);
  scratch.rhs.resize(ka);
  scratch.sol.resize(ka);
  for (std::size_t i = 0; i < ka; ++i) {
    const std::size_t fi = full_index(i);
    scratch.rhs[i] = xty_[fi];
    for (std::size_t j = 0; j <= i; ++j)
      scratch.g[i * ka + j] = g_[fi * aug + full_index(j)];
  }

  // In-place lower Cholesky with a relative pivot guard (mirrors the
  // QR solver's near-singular diagonal check).
  double max_diag = 0.0;
  for (std::size_t i = 0; i < ka; ++i)
    max_diag = std::max(max_diag, scratch.g[i * ka + i]);
  if (!(max_diag > 0.0)) return false;
  const double pivot_floor = 1e-12 * max_diag;

  double min_l = std::numeric_limits<double>::infinity();
  double max_l = 0.0;
  for (std::size_t j = 0; j < ka; ++j) {
    double d = scratch.g[j * ka + j];
    for (std::size_t t = 0; t < j; ++t)
      d -= scratch.g[j * ka + t] * scratch.g[j * ka + t];
    if (!(d > pivot_floor)) return false;
    const double l = std::sqrt(d);
    scratch.g[j * ka + j] = l;
    min_l = std::min(min_l, l);
    max_l = std::max(max_l, l);
    for (std::size_t i = j + 1; i < ka; ++i) {
      double s = scratch.g[i * ka + j];
      for (std::size_t t = 0; t < j; ++t)
        s -= scratch.g[i * ka + t] * scratch.g[j * ka + t];
      scratch.g[i * ka + j] = s / l;
    }
  }
  const double condition = max_l / min_l;
  if (condition > kMaxConditionRatio) return false;

  // Forward then back substitution: L z = rhs, Lᵀ β = z.
  for (std::size_t i = 0; i < ka; ++i) {
    double s = scratch.rhs[i];
    for (std::size_t t = 0; t < i; ++t)
      s -= scratch.g[i * ka + t] * scratch.sol[t];
    scratch.sol[i] = s / scratch.g[i * ka + i];
  }
  for (std::size_t ii = ka; ii-- > 0;) {
    double s = scratch.sol[ii];
    for (std::size_t t = ii + 1; t < ka; ++t)
      s -= scratch.g[t * ka + ii] * scratch.sol[t];
    scratch.sol[ii] = s / scratch.g[ii * ka + ii];
  }

  std::size_t c_in = 0;
  if (with_intercept_) out.intercept = scratch.sol[c_in++];
  out.coefficients.assign(
      scratch.sol.begin() + static_cast<std::ptrdiff_t>(c_in),
      scratch.sol.end());

  // Fit quality from the Gram quantities: for the normal-equation solution
  // βᵀGβ = βᵀX̃ᵀy, so SS_res = yᵀy − βᵀX̃ᵀy (clamped against round-off).
  double fitted = 0.0;
  for (std::size_t i = 0; i < ka; ++i) fitted += scratch.sol[i] * scratch.rhs[i];
  const double ss_res = std::max(0.0, yty_ - fitted);
  const double n = static_cast<double>(n_rows_);
  const double y_bar = sum_y_ / n;
  const double ss_tot = std::max(0.0, yty_ - n * y_bar * y_bar);
  out.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 0.0;
  const std::size_t dof = n_rows_ - ka;
  out.residual_stddev =
      dof > 0 ? std::sqrt(ss_res / static_cast<double>(dof)) : 0.0;
  out.condition = condition;
  out.ok = true;
  return true;
}

}  // namespace litmus::ts
