// Descriptive statistics over raw samples and TimeSeries.
//
// All functions skip missing (NaN) observations. Functions that need at
// least one observation return kMissing on an effectively empty input
// rather than throwing: KPI feeds routinely contain gaps and the callers
// (regression, rank tests) are written to tolerate NaN propagation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tsmath/timeseries.h"

namespace litmus::ts {

double mean(std::span<const double> xs);
double mean(const TimeSeries& s);

/// Unbiased sample variance (n-1 denominator); kMissing when fewer than two
/// observations.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);

double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolation quantile (type 7), q in [0,1].
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);
double median(const TimeSeries& s);

/// Median absolute deviation, scaled by 1.4826 so it estimates sigma for
/// Gaussian data.
double mad(std::span<const double> xs);

/// Interquartile range (q75 - q25).
double iqr(std::span<const double> xs);

/// Sample covariance of the pairwise-complete observations.
double covariance(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation of the pairwise-complete observations.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation of the pairwise-complete observations.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Lag-k autocorrelation (pairwise complete).
double autocorrelation(std::span<const double> xs, std::size_t lag);

/// Five-number-style summary used in reports.
struct Summary {
  std::size_t n = 0;       ///< non-missing count
  double mean = kMissing;
  double stddev = kMissing;
  double min = kMissing;
  double q25 = kMissing;
  double median = kMissing;
  double q75 = kMissing;
  double max = kMissing;
};

Summary summarize(std::span<const double> xs);
Summary summarize(const TimeSeries& s);

/// (x - median) / mad robust z-scores; missing stays missing.
std::vector<double> robust_zscores(std::span<const double> xs);

}  // namespace litmus::ts
