#include "tsmath/matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace litmus::ts {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::span<const double> Matrix::column(std::size_t c) const noexcept {
  return std::span<const double>(data_.data() + c * rows_, rows_);
}

std::span<double> Matrix::column(std::size_t c) noexcept {
  return std::span<double>(data_.data() + c * rows_, rows_);
}

void Matrix::set_column(std::size_t c, std::span<const double> values) {
  if (values.size() != rows_)
    throw std::invalid_argument("set_column: size mismatch");
  std::copy(values.begin(), values.end(), data_.begin() +
            static_cast<std::ptrdiff_t>(c * rows_));
}

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i] >= cols_)
      throw std::out_of_range("select_columns: column index out of range");
    out.set_column(i, column(cols[i]));
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    const auto col = column(c);
    for (std::size_t r = 0; r < rows_; ++r) y[r] += col[r] * xc;
  }
  return y;
}

std::vector<double> Matrix::transpose_multiply(
    std::span<const double> y) const {
  if (y.size() != rows_)
    throw std::invalid_argument("transpose_multiply: size mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const auto col = column(c);
    double s = 0;
    for (std::size_t r = 0; r < rows_; ++r) s += col[r] * y[r];
    out[c] = s;
  }
  return out;
}

bool Matrix::has_missing() const noexcept {
  for (double v : data_)
    if (std::isnan(v)) return true;
  return false;
}

}  // namespace litmus::ts
