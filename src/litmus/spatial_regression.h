// The Litmus robust spatial regression algorithm (paper Section 3.2).
//
// 1. Uniformly sample (without replacement) k of the N control elements,
//    k > N/2, the same subset before and after the change.
// 2. Learn beta from the before window: Y_b = beta X_b^s   (equation 2).
// 3. Forecast the study series from the controls before and after:
//    Y'_b = beta X_b^s, Y'_a = beta X_a^s                  (equation 3).
// 4. Repeat for `n_iterations` samples and aggregate the forecasts by the
//    per-bin *median* across iterations — a small number of contaminated
//    control elements appears in only some samples and is voted out.
// 5. Form forecast differences (equations 4, 5):
//      fd_a = Y_a - median(Y'_a),   fd_b = Y_b - median(Y'_b)
//    and compare them with the robust rank-order test. A significant shift
//    of fd_a against fd_b is a relative change of the study group against
//    the control group; its sign plus KPI polarity yields the verdict.
//
// Deliberately *unregularized* regression (no ridge/lasso): see linreg.h.
//
// Execution: the sampling iterations are independent given the window, so
// forecast() fans them across the parallel pool (parallel/pool.h) in
// contiguous chunks. Each iteration draws from its own counter-based RNG
// substream — Rng(seed).fork(iteration) — and per-chunk accumulators are
// merged in chunk order, so the result is bit-identical to the sequential
// run at any thread count.
#pragma once

#include <cstdint>

#include "litmus/analysis.h"

namespace litmus::core {

/// Ablation knobs (bench_ablation sweeps these; production uses defaults).
enum class ForecastAggregation : std::uint8_t {
  kMedian,  ///< the paper's choice: robust to contaminated iterations
  kMean,    ///< ablation: shows why median matters under contamination
};

enum class ComparisonTest : std::uint8_t {
  kRobustRankOrder,  ///< the paper's choice (Fligner-Policello)
  kWilcoxon,         ///< ablation: classical WMW
};

struct SpatialRegressionParams {
  std::size_t n_iterations = 25;   ///< sampling iterations
  /// Sampled fraction of the control group; the paper requires k > N/2.
  /// The effective k is max(floor(N * sample_fraction), floor(N/2) + 1),
  /// clamped to N and to the regression's degrees-of-freedom budget.
  double sample_fraction = 0.7;
  bool with_intercept = true;
  double alpha = 0.05;             ///< rank-test significance level
  /// Practical-significance floor: a statistically significant shift of the
  /// forecast difference is only reported as an impact when its magnitude
  /// exceeds this multiple of the KPI's per-bin noise scale (operationally,
  /// "significant performance impacts" — microscopic shifts do not gate a
  /// rollout).
  double min_effect_sigma = 0.25;
  std::uint64_t seed = 7;          ///< sampling seed (deterministic runs)
  ForecastAggregation aggregation = ForecastAggregation::kMedian;
  ComparisonTest test = ComparisonTest::kRobustRankOrder;
  /// Solve each iteration's subset on the precomputed Gram matrix
  /// (tsmath/gram.h) instead of re-running QR; iterations whose subset is
  /// inexact on the panel, or numerically unsafe, still fall back to QR.
  /// The panel is only precomputed when enough iterations amortize its
  /// O(m·N²) cost (GramPanel::worthwhile); otherwise the run is pure QR
  /// even with this on. Off = always QR (ablation / numerical cross-check).
  bool use_gram_fast_path = true;
  /// Sequential early stopping: run the sampling iterations in
  /// counter-ordered rounds (geometric schedule starting at
  /// `min_iterations`) and stop once the downstream rank-test verdict has
  /// been insensitive to further rounds for `stability_rounds` consecutive
  /// checkpoints under a jackknife-style perturbation of the per-bin
  /// aggregate (see DESIGN.md §16). Off (the default) runs the full
  /// `n_iterations` budget in one round through the same code path, so the
  /// output is unchanged from pre-adaptive releases. Stopping decisions are
  /// a pure function of (seed, completed-round results) — never of thread
  /// scheduling — so results stay bit-identical at any thread/shard count.
  bool adaptive_sampling = false;
  /// First stability checkpoint; also the minimum iterations ever spent.
  std::size_t min_iterations = 8;
  /// Consecutive stable (and mutually consistent) checkpoints required
  /// before stopping.
  std::size_t stability_rounds = 2;
  /// A checkpoint counts as stable when the three jackknife forecast
  /// variants agree on the verdict AND the decision is not borderline:
  /// every variant's |z| must clear the alpha critical value by at least
  /// this margin (on whichever side), and the effect size must clear the
  /// materiality floor by 10%. Borderline elements therefore always spend
  /// the full budget. (The raw z is deliberately not required to be close
  /// across variants: the rank statistic saturates under near-separation,
  /// where its magnitude swings wildly while the decision is settled.)
  double stability_z_margin = 0.5;
};

/// Why the sampling loop ended (Forecast::stop_reason).
enum class StopReason : std::uint8_t {
  kBudgetExhausted,  ///< ran all n_iterations (always the case adaptive-off)
  kStableVerdict,    ///< adaptive early stop: verdict insensitive to more rounds
  kFitFailures,      ///< every attempted iteration failed to fit
};

const char* to_string(StopReason r) noexcept;

class RobustSpatialRegression final : public ChangeAnalyzer {
 public:
  explicit RobustSpatialRegression(SpatialRegressionParams params = {})
      : params_(params) {}

  AnalysisOutcome assess(const ElementWindows& windows,
                         kpi::KpiId kpi) const override;
  std::string_view name() const noexcept override {
    return "litmus_spatial_regression";
  }

  /// Intermediate artifacts, exposed for the case-study benches (Figs 8-11
  /// plot forecast vs observed) and for tests.
  struct Forecast {
    ts::TimeSeries median_forecast_before;
    ts::TimeSeries median_forecast_after;
    ts::TimeSeries forecast_diff_before;
    ts::TimeSeries forecast_diff_after;
    double median_r_squared = ts::kMissing;
    std::size_t effective_k = 0;
    std::size_t successful_iterations = 0;
    /// Iterations actually attempted (== n_iterations unless adaptive
    /// sampling stopped early; 0 when the input was degenerate before any
    /// sampling ran).
    std::size_t iterations_attempted = 0;
    StopReason stop_reason = StopReason::kBudgetExhausted;
  };

  /// Runs steps 1-5 and returns the artifacts; ok == false on degenerate
  /// inputs (no usable controls or too little data). The second overload
  /// supplies the materiality floor (min_effect_sigma * KPI noise) so the
  /// adaptive stability check can evaluate the *full* downstream verdict,
  /// materiality included, at every checkpoint.
  bool forecast(const ElementWindows& windows, Forecast& out) const;
  bool forecast(const ElementWindows& windows, Forecast& out,
                double effect_floor_kpi_units) const;

 private:
  SpatialRegressionParams params_;
};

}  // namespace litmus::core
