// Shared, content-keyed cache of Gram panels (tsmath/gram.h).
//
// The expensive half of the spatial-regression fast path is the design-only
// GramPanel: O(m·N²) over the before-window control panel. Litmus re-derives
// that panel far more often than its content changes — every study element
// of a multi-element assessment regresses onto the *same* control columns,
// a batch sweep revisits the same control group record after record, and
// the monitor loop keeps the before window fixed while it advances the
// after window. This cache lets all of them share one build.
//
// Keying. Entries are keyed purely by *content*: a 128-bit fingerprint of
// the packed design-matrix bytes plus its shape. Identity (which elements,
// which KPI, which window bins) never has to be threaded through the
// analyzer API, and invalidation is automatic — when any control value in
// the window changes, the key changes and the stale entry simply ages out
// of the LRU. Collisions need ~2⁶⁴ distinct panels (birthday bound) to
// become likely; a collision would return a panel for different data,
// which the exactness bitset check cannot catch, so the fingerprint width
// is part of the correctness budget, not just a tuning choice.
//
// Concurrency. The map is sharded by key; each shard has its own mutex and
// its own slice of the byte budget, so the parallel_chunks fan-out (and
// concurrent batch workers) never serialize on one lock. Panels are
// immutable after build and handed out as shared_ptr, so an entry evicted
// while another thread still computes on it stays alive until the last
// reader drops it. Misses build *outside* the shard lock; two threads
// racing on the same key may both build (identical bits — the build is
// deterministic) and the first insert wins.
//
// Determinism. A cache hit returns a panel bit-identical to a fresh
// build() of the same content, and the analyzer runs the same code either
// way, so verdicts and forecasts are unchanged by cache state, capacity,
// or eviction order (tests/litmus/panel_cache_test.cpp diffs cache-on vs
// cache-off runs). Capacity 0 disables storage entirely — get_or_build
// degenerates to calling the builder.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "tsmath/gram.h"
#include "tsmath/matrix.h"

namespace litmus::core {

/// 128-bit content fingerprint (see fingerprint_design()).
struct PanelKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const PanelKey&) const noexcept = default;
};

/// Fingerprints a design matrix: shape plus every value's bit pattern
/// (missing bins hash identically because kMissing is one canonical NaN).
/// O(m·N) — negligible next to the O(m·N²) panel build it may save.
PanelKey fingerprint_design(const ts::Matrix& design) noexcept;

class PanelCache {
 public:
  using PanelPtr = std::shared_ptr<const ts::GramPanel>;
  using Builder = std::function<ts::GramPanel()>;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< current resident panel bytes
    std::size_t entries = 0;  ///< current resident panel count
  };

  /// Cache with the given byte budget (0 = caching disabled).
  explicit PanelCache(std::size_t capacity_bytes = 0);

  /// Returns the cached panel for `key`, or invokes `build`, stores the
  /// result (evicting least-recently-used entries past the byte budget)
  /// and returns it. Thread-safe; `build` runs without any cache lock
  /// held. With capacity 0 the builder's result is returned unstored.
  PanelPtr get_or_build(const PanelKey& key, const Builder& build);

  /// Changes the byte budget; shrinking evicts immediately. Capacity 0
  /// also drops every resident entry.
  void set_capacity_bytes(std::size_t capacity_bytes);
  std::size_t capacity_bytes() const noexcept;

  /// Drops every entry (counters are kept).
  void clear();

  Stats stats() const;

  /// The process-wide cache the analyzers share. Initial capacity comes
  /// from LITMUS_PANEL_CACHE_MB (mebibytes; unset or unparsable => 64,
  /// "0" disables); litmus_cli --panel-cache-mb overrides it via
  /// set_capacity_bytes().
  static PanelCache& global();

  /// The cache analyzers should use right now: the installed override
  /// (ScopedPanelCacheOverride) when one is active, otherwise global().
  /// The sharded batch driver gives every shard its own cache so shard
  /// telemetry stays attributable; because a hit is bit-identical to a
  /// fresh build, which cache serves a request never changes results.
  static PanelCache& current() noexcept;

 private:
  static constexpr std::size_t kShards = 8;

  struct Entry {
    PanelKey key;
    PanelPtr panel;
    std::size_t bytes = 0;
  };
  struct KeyHash {
    std::size_t operator()(const PanelKey& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<PanelKey, std::list<Entry>::iterator, KeyHash> map;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(const PanelKey& key) noexcept {
    // hi mixes every input word (see fingerprint_design), so its low bits
    // spread keys evenly across shards.
    return shards_[static_cast<std::size_t>(key.hi) % kShards];
  }

  /// Evicts from the tail until the shard fits its budget slice. With
  /// `keep_front` the most-recently-used entry survives even over budget,
  /// so a panel larger than the shard slice is still cached until the
  /// next insert displaces it (otherwise a tight budget could never
  /// produce a single hit); explicit shrinks evict strictly. Caller holds
  /// the shard lock; evicted panels are released after unlock via the
  /// returned list to keep destructor work outside the lock.
  std::list<Entry> evict_over_budget(Shard& s, bool keep_front);

  /// Publishes gauges + eviction delta to the global obs registry.
  void observe(std::uint64_t hit_delta, std::uint64_t miss_delta,
               std::uint64_t evict_delta) const;

  std::atomic<std::size_t> capacity_bytes_;
  /// Resident totals across shards, maintained at insert/evict so the
  /// byte/entry gauges and stats() never need to sweep every shard lock.
  std::atomic<std::size_t> total_bytes_{0};
  std::atomic<std::size_t> total_entries_{0};
  Shard shards_[kShards];
};

/// RAII override of PanelCache::current(): installs `cache` for every
/// thread until destruction, then restores the previous override. The
/// process-global pointer is swapped with a single atomic store, so the
/// owner must not destroy `cache` while analyzer threads can still call
/// current() (the sharded batch driver installs an override only while
/// its workers are quiescent between shards or bound to the shard's
/// lifetime). Nesting restores in LIFO order.
class ScopedPanelCacheOverride {
 public:
  explicit ScopedPanelCacheOverride(PanelCache& cache) noexcept;
  ~ScopedPanelCacheOverride();

  ScopedPanelCacheOverride(const ScopedPanelCacheOverride&) = delete;
  ScopedPanelCacheOverride& operator=(const ScopedPanelCacheOverride&) =
      delete;

 private:
  PanelCache* previous_;
};

}  // namespace litmus::core
