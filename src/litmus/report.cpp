#include "litmus/report.h"

#include <cmath>
#include <sstream>

namespace litmus::core {
namespace {

std::string fmt_p(double p) {
  if (std::isnan(p)) return "n/a";
  if (p < 0.001) return "<0.001";
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << p;
  return os.str();
}

std::string fmt_effect(double e) {
  if (std::isnan(e)) return "n/a";
  std::ostringstream os;
  os.precision(5);
  os << std::showpos << std::fixed << e;
  return os.str();
}

}  // namespace

std::string one_line_summary(const ChangeAssessment& a) {
  std::ostringstream os;
  const auto& s = a.summary;
  std::size_t votes = s.improvements + s.degradations + s.no_impacts;
  std::size_t winning = 0;
  switch (s.verdict) {
    case Verdict::kImprovement: winning = s.improvements; break;
    case Verdict::kDegradation: winning = s.degradations; break;
    case Verdict::kNoImpact: winning = s.no_impacts; break;
  }
  os << kpi::to_string(a.kpi) << ": " << to_string(s.verdict) << " ("
     << winning << "/" << votes << " elements";
  if (s.degenerates > 0) os << ", " << s.degenerates << " abstained";
  os << ")";
  return os.str();
}

std::string format_assessment(const ChangeAssessment& a,
                              const net::Topology& topo) {
  std::ostringstream os;
  os << "=== Litmus assessment: " << kpi::to_string(a.kpi) << " ===\n";
  os << "change bin: " << a.change_bin << "; study group: "
     << a.study_group.size() << " element(s); control group: "
     << a.control_group.size() << " element(s)\n";
  os << "---------------------------------------------------------------\n";
  os << "element                        verdict       p-value  effect\n";
  for (const auto& e : a.per_element) {
    const auto& el = topo.get(e.element);
    std::string name = el.name;
    name.resize(30, ' ');
    std::string verdict =
        e.outcome.degenerate ? "(no data)" : to_string(e.outcome.verdict);
    verdict.resize(13, ' ');
    os << name << " " << verdict << " " << fmt_p(e.outcome.p_value) << "   "
       << fmt_effect(e.outcome.effect_kpi_units) << "\n";
  }
  os << "---------------------------------------------------------------\n";
  os << "vote: " << one_line_summary(a) << "\n";
  return os.str();
}

std::string format_ffa_decision(const FfaDecision& d,
                                const net::Topology& topo) {
  std::ostringstream os;
  os << "########## FFA go / no-go ##########\n";
  for (const auto& a : d.per_kpi) os << format_assessment(a, topo) << "\n";
  os << "DECISION: " << (d.go ? "GO" : "NO-GO") << " — " << d.rationale
     << "\n";
  return os.str();
}

}  // namespace litmus::core
