#include "litmus/report.h"

#include <cmath>
#include <sstream>

namespace litmus::core {
namespace {

std::string fmt_p(double p) {
  if (std::isnan(p)) return "n/a";
  if (p < 0.001) return "<0.001";
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << p;
  return os.str();
}

std::string fmt_effect(double e) {
  if (std::isnan(e)) return "n/a";
  std::ostringstream os;
  os.precision(5);
  os << std::showpos << std::fixed << e;
  return os.str();
}

}  // namespace

std::string one_line_summary(const ChangeAssessment& a) {
  std::ostringstream os;
  const auto& s = a.summary;
  std::size_t votes = s.improvements + s.degradations + s.no_impacts;
  std::size_t winning = 0;
  switch (s.verdict) {
    case Verdict::kImprovement: winning = s.improvements; break;
    case Verdict::kDegradation: winning = s.degradations; break;
    case Verdict::kNoImpact: winning = s.no_impacts; break;
  }
  os << kpi::to_string(a.kpi) << ": " << to_string(s.verdict) << " ("
     << winning << "/" << votes << " elements";
  if (s.degenerates > 0) os << ", " << s.degenerates << " abstained";
  os << ")";
  return os.str();
}

std::string format_explanation(const AnalysisOutcome& o,
                               const std::string& indent) {
  const VerdictExplanation& x = o.explanation;
  std::ostringstream os;
  os << indent << "analyzer: " << x.analyzer;
  if (x.test[0] != '\0') os << "; test: " << x.test;
  if (x.aggregation[0] != '\0') os << "; aggregation: " << x.aggregation;
  os << "\n";
  if (o.degenerate) {
    os << indent << "abstained: "
       << (x.note.empty() ? "insufficient data" : x.note) << "\n";
    if (x.iterations_used > 0 && x.stop_reason[0] != '\0')
      os << indent << "sampling: " << x.successful_iterations << "/"
         << x.iterations_used << " iteration(s) of budget "
         << x.iterations_requested << "; stop: " << x.stop_reason << "\n";
    return os.str();
  }
  if (x.n_controls > 0) {
    os << indent << "controls: " << x.n_controls;
    if (x.effective_k > 0) {
      os << "; sampled k=" << x.effective_k << " over "
         << x.successful_iterations << "/" << x.iterations_used
         << " iteration(s) of budget " << x.iterations_requested;
      if (x.stop_reason[0] != '\0') {
        os << "; stop: " << x.stop_reason;
        if (x.adaptive_sampling &&
            x.iterations_used < x.iterations_requested)
          os << " (saved " << x.iterations_requested - x.iterations_used
             << ")";
      }
    }
    os << "\n";
  }
  os << indent << "samples: " << x.n_after << " after vs " << x.n_before
     << " before; z=" << fmt_effect(o.statistic)
     << "; p=" << fmt_p(o.p_value) << " (alpha " << x.alpha << ")\n";
  os << indent << "effect: " << fmt_effect(o.effect_kpi_units)
     << " KPI units vs materiality floor "
     << fmt_effect(x.effect_floor_kpi_units) << " -> "
     << (x.material ? "material" : "immaterial");
  if (!std::isnan(o.fit_r_squared))
    os << "; median fit R^2 " << fmt_p(o.fit_r_squared);
  os << "\n";
  if (!x.note.empty()) os << indent << "note: " << x.note << "\n";
  return os.str();
}

std::string format_assessment(const ChangeAssessment& a,
                              const net::Topology& topo, bool explain) {
  std::ostringstream os;
  os << "=== Litmus assessment: " << kpi::to_string(a.kpi) << " ===\n";
  os << "change bin: " << a.change_bin << "; study group: "
     << a.study_group.size() << " element(s); control group: "
     << a.control_group.size() << " element(s)\n";
  os << "---------------------------------------------------------------\n";
  os << "element                        verdict       p-value  effect\n";
  for (const auto& e : a.per_element) {
    const auto& el = topo.get(e.element);
    std::string name = el.name;
    name.resize(30, ' ');
    std::string verdict =
        e.outcome.degenerate ? "(no data)" : to_string(e.outcome.verdict);
    verdict.resize(13, ' ');
    os << name << " " << verdict << " " << fmt_p(e.outcome.p_value) << "   "
       << fmt_effect(e.outcome.effect_kpi_units) << "\n";
    if (explain) os << format_explanation(e.outcome);
  }
  os << "---------------------------------------------------------------\n";
  os << "vote: " << one_line_summary(a) << "\n";
  if (explain) {
    const auto& s = a.summary;
    os << "vote breakdown: " << s.improvements << " improvement, "
       << s.degradations << " degradation, " << s.no_impacts
       << " no-impact, " << s.degenerates << " abstained; confidence "
       << fmt_p(s.confidence) << "\n";
  }
  return os.str();
}

std::string format_ffa_decision(const FfaDecision& d,
                                const net::Topology& topo) {
  std::ostringstream os;
  os << "########## FFA go / no-go ##########\n";
  for (const auto& a : d.per_kpi) os << format_assessment(a, topo) << "\n";
  os << "DECISION: " << (d.go ? "GO" : "NO-GO") << " — " << d.rationale
     << "\n";
  return os.str();
}

}  // namespace litmus::core
