// Baseline 1: study-group-only analysis (paper Section 4.1, in the spirit
// of Mercury [SIGCOMM'10] / PRISM [CoNEXT'11]): compare the study element's
// KPI before vs after the change with a rank test, ignoring the control
// group entirely. Fast and simple — and, as the paper demonstrates, badly
// confused by external factors that move the whole region.
#pragma once

#include "litmus/analysis.h"

namespace litmus::core {

struct StudyOnlyParams {
  double alpha = 0.05;  ///< two-sided significance level
  /// Practical-significance floor (same semantics as the Litmus analyzer's
  /// min_effect_sigma, applied for a fair comparison).
  double min_effect_sigma = 0.25;
};

class StudyOnlyAnalyzer final : public ChangeAnalyzer {
 public:
  explicit StudyOnlyAnalyzer(StudyOnlyParams params = {}) : params_(params) {}

  AnalysisOutcome assess(const ElementWindows& windows,
                         kpi::KpiId kpi) const override;
  std::string_view name() const noexcept override { return "study_only"; }

 private:
  StudyOnlyParams params_;
};

}  // namespace litmus::core
