// Human-readable assessment reports, in the spirit of the summaries the
// Engineering and Operations teams consume before a go / no-go call.
#pragma once

#include <string>

#include "litmus/assessor.h"

namespace litmus::core {

/// Multi-line report for one KPI assessment: per-element verdicts with
/// p-values/effects, the vote, and control-group metadata. With
/// `explain` set, each element row is followed by its verdict-explanation
/// block (see format_explanation) and the vote breakdown is itemized.
std::string format_assessment(const ChangeAssessment& assessment,
                              const net::Topology& topo,
                              bool explain = false);

/// The audit trail behind one outcome: analyzer, test, sampling
/// diagnostics, sample counts, thresholds, and the abstention reason when
/// degenerate. One "key: value" pair per line, indented by `indent`.
std::string format_explanation(const AnalysisOutcome& outcome,
                               const std::string& indent = "    ");

/// Multi-line report for an FFA decision across KPIs.
std::string format_ffa_decision(const FfaDecision& decision,
                                const net::Topology& topo);

/// One-line verdict summary ("improvement (7/9 elements, p<0.01)").
std::string one_line_summary(const ChangeAssessment& assessment);

}  // namespace litmus::core
