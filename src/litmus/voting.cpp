#include "litmus/voting.h"

namespace litmus::core {

VoteSummary vote(std::span<const AnalysisOutcome> outcomes) {
  VoteSummary s;
  for (const auto& o : outcomes) {
    if (o.degenerate) {
      ++s.degenerates;
      continue;
    }
    switch (o.verdict) {
      case Verdict::kImprovement: ++s.improvements; break;
      case Verdict::kDegradation: ++s.degradations; break;
      case Verdict::kNoImpact: ++s.no_impacts; break;
    }
  }
  const std::size_t votes = s.improvements + s.degradations + s.no_impacts;
  if (votes == 0) return s;

  std::size_t best = s.no_impacts;
  s.verdict = Verdict::kNoImpact;
  if (s.improvements >= best &&
      s.improvements > 0) {  // impact wins no-impact ties
    best = s.improvements;
    s.verdict = Verdict::kImprovement;
  }
  if (s.degradations >= best && s.degradations > 0) {
    if (s.verdict == Verdict::kImprovement && s.degradations == best) {
      // Improvement/degradation tie: contradictory evidence.
      s.verdict = Verdict::kNoImpact;
      best = s.no_impacts;
    } else {
      best = s.degradations;
      s.verdict = Verdict::kDegradation;
    }
  }
  std::size_t winning = 0;
  switch (s.verdict) {
    case Verdict::kImprovement: winning = s.improvements; break;
    case Verdict::kDegradation: winning = s.degradations; break;
    case Verdict::kNoImpact: winning = s.no_impacts; break;
  }
  s.confidence = static_cast<double>(winning) / static_cast<double>(votes);
  return s;
}

}  // namespace litmus::core
