#include "litmus/assessor.h"

#include <stdexcept>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::core {
namespace {

const char* verdict_metric(const AnalysisOutcome& o) noexcept {
  if (o.degenerate) return "verdict.degenerate";
  switch (o.verdict) {
    case Verdict::kImprovement: return "verdict.improvement";
    case Verdict::kDegradation: return "verdict.degradation";
    case Verdict::kNoImpact: return "verdict.no_impact";
  }
  return "verdict.no_impact";
}

}  // namespace

Assessor::Assessor(const net::Topology& topo, SeriesProvider provider,
                   AssessmentConfig config)
    : topo_(&topo),
      provider_(std::move(provider)),
      config_(config),
      algorithm_(config.regression) {
  if (!provider_) throw std::invalid_argument("Assessor: null provider");
  if (config_.before_bins < 8 || config_.after_bins < 8)
    throw std::invalid_argument("Assessor: windows too short");
}

ElementWindows Assessor::windows_for(net::ElementId study,
                                     std::span<const net::ElementId> control,
                                     kpi::KpiId kpi,
                                     std::int64_t change_bin) const {
  ElementWindows w;
  const std::int64_t before_start =
      change_bin - static_cast<std::int64_t>(config_.before_bins);
  const std::int64_t after_start =
      change_bin + static_cast<std::int64_t>(config_.guard_bins);
  w.study_before = provider_(study, kpi, before_start, config_.before_bins);
  w.study_after = provider_(study, kpi, after_start, config_.after_bins);
  w.control_before.reserve(control.size());
  w.control_after.reserve(control.size());
  for (const auto c : control) {
    w.control_before.push_back(
        provider_(c, kpi, before_start, config_.before_bins));
    w.control_after.push_back(
        provider_(c, kpi, after_start, config_.after_bins));
  }
  return w;
}

ChangeAssessment Assessor::assess(std::span<const net::ElementId> study,
                                  std::span<const net::ElementId> control,
                                  kpi::KpiId kpi,
                                  std::int64_t change_bin) const {
  // Window fetch stays on the calling thread: a SeriesProvider is a
  // user-supplied closure with no thread-safety contract.
  std::vector<ElementWindows> windows;
  windows.reserve(study.size());
  for (const auto s : study)
    windows.push_back(windows_for(s, control, kpi, change_bin));
  return assess_windows(study, control, windows, kpi, change_bin);
}

ChangeAssessment Assessor::assess_windows(
    std::span<const net::ElementId> study,
    std::span<const net::ElementId> control,
    std::span<const ElementWindows> windows, kpi::KpiId kpi,
    std::int64_t change_bin) const {
  if (windows.size() != study.size())
    throw std::invalid_argument("assess_windows: one window set per element");
  obs::ScopedSpan kpi_span("assess.kpi");
  ChangeAssessment a;
  a.kpi = kpi;
  a.change_bin = change_bin;
  a.study_group.assign(study.begin(), study.end());
  a.control_group.assign(control.begin(), control.end());

  std::vector<AnalysisOutcome> outcomes(windows.size());
  par::parallel_for(windows.size(), [&](std::size_t i) {
    obs::ScopedSpan element_span("assess.element");
    outcomes[i] = algorithm_.assess(windows[i], kpi);
  });
  a.per_element.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      reg.counter("assess.elements").add();
      reg.counter(verdict_metric(outcomes[i])).add();
    }
    if (auto* ev = obs::events()) {
      const AnalysisOutcome& o = outcomes[i];
      ev->emit(obs::EventType::kElementAssessed, [&](obs::JsonWriter& w) {
        w.member("kpi", kpi::to_string(kpi))
            .member("element", static_cast<std::uint64_t>(study[i].value))
            .member("bin", static_cast<std::int64_t>(change_bin))
            .member("verdict", to_string(o.verdict))
            .member("degenerate", o.degenerate)
            .member("p", o.p_value)
            .member("effect", o.effect_kpi_units);
      });
    }
    a.per_element.push_back({study[i], outcomes[i]});
  }
  {
    obs::ScopedSpan vote_span("vote");
    a.summary = vote(outcomes);
  }
  if (obs::enabled()) obs::Registry::global().counter("assess.votes").add();
  if (auto* ev = obs::events()) {
    ev->emit(obs::EventType::kKpiVerdict, [&](obs::JsonWriter& w) {
      w.member("kpi", kpi::to_string(kpi))
          .member("bin", static_cast<std::int64_t>(change_bin));
      // A single-element study (every batch record) names its element so
      // the verdict keys stay distinct across records sharing (kpi, bin)
      // — diff-runs relies on this when stitching sharded event streams.
      if (study.size() == 1)
        w.member("element", static_cast<std::uint64_t>(study[0].value));
      w.member("verdict", to_string(a.summary.verdict))
          .member("elements",
                  static_cast<std::uint64_t>(a.per_element.size()))
          .member("confidence", a.summary.confidence);
    });
  }
  return a;
}

ChangeAssessment Assessor::assess_with_selection(
    std::span<const net::ElementId> study, const ControlPredicate& predicate,
    kpi::KpiId kpi, std::int64_t change_bin,
    const SelectionPolicy& policy) const {
  const SelectionResult sel =
      select_control_group(*topo_, study, predicate, policy);
  return assess(study, sel.controls, kpi, change_bin);
}

FfaDecision Assessor::ffa_decision(std::span<const net::ElementId> study,
                                   std::span<const net::ElementId> control,
                                   std::span<const kpi::KpiId> kpis,
                                   std::int64_t change_bin) const {
  FfaDecision d;
  d.go = true;
  std::string why;
  for (const auto k : kpis) {
    ChangeAssessment a = assess(study, control, k, change_bin);
    if (a.summary.verdict == Verdict::kDegradation) {
      d.go = false;
      why += std::string(kpi::to_string(k)) + ": voted degradation. ";
    } else {
      std::size_t degraded = 0;
      for (const auto& e : a.per_element)
        if (!e.outcome.degenerate &&
            e.outcome.verdict == Verdict::kDegradation)
          ++degraded;
      if (degraded > 0) {
        d.go = false;
        why += std::string(kpi::to_string(k)) + ": " +
               std::to_string(degraded) + " element(s) degraded. ";
      }
    }
    d.per_kpi.push_back(std::move(a));
  }
  d.rationale = d.go ? "no degradation detected on any KPI at any study "
                       "element; change is safe to roll out"
                     : why + "hold the rollout and investigate";
  return d;
}

}  // namespace litmus::core
