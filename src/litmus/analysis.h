// Common types for the three change-impact analyzers (paper Section 4.1):
// study-group-only, Difference in Differences, and Litmus robust spatial
// regression.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kpi/kpi.h"
#include "tsmath/timeseries.h"

namespace litmus::core {

/// Direction of the detected relative change of the study element against
/// its control group (or against its own past, for study-only analysis).
enum class RelativeChange : std::uint8_t { kNoChange, kIncrease, kDecrease };

const char* to_string(RelativeChange c) noexcept;

/// Service-level conclusion after applying KPI polarity.
enum class Verdict : std::uint8_t { kNoImpact, kImprovement, kDegradation };

const char* to_string(Verdict v) noexcept;

/// Maps a relative KPI change to a service verdict: an increase in a
/// higher-is-better KPI is an improvement; an increase in a lower-is-better
/// KPI (dropped-call ratio) is a degradation.
Verdict verdict_from(RelativeChange change, kpi::Polarity polarity) noexcept;

/// The windows an analyzer sees for one study element. Control series are
/// positionally matched between before and after (control_before[i] and
/// control_after[i] belong to the same element).
struct ElementWindows {
  ts::TimeSeries study_before;
  ts::TimeSeries study_after;
  std::vector<ts::TimeSeries> control_before;
  std::vector<ts::TimeSeries> control_after;
};

/// Why a verdict came out the way it did: the inputs, intermediate
/// statistics and decision thresholds behind one AnalysisOutcome, so a
/// go / no-go review can audit a verdict instead of trusting it. Filled by
/// every analyzer; fields an analyzer has no notion of stay at their
/// defaults (e.g. sampling fields for the non-sampling baselines).
struct VerdictExplanation {
  const char* analyzer = "";     ///< ChangeAnalyzer::name() of the producer
  const char* test = "";         ///< two-sample test applied, "" if none
  const char* aggregation = "";  ///< forecast aggregation (Litmus only)
  std::size_t n_controls = 0;    ///< control series offered to the analyzer
  /// Sampling diagnostics (Litmus): controls per iteration, the configured
  /// iteration budget, the iterations actually *attempted* (fewer than the
  /// budget when adaptive sampling stopped early; 0 when the input was
  /// degenerate before any sampling ran), and the attempted iterations
  /// whose OLS fit succeeded.
  std::size_t effective_k = 0;
  std::size_t iterations_requested = 0;
  std::size_t iterations_used = 0;
  std::size_t successful_iterations = 0;
  /// Adaptive early stopping (Litmus): whether it was enabled, and why the
  /// sampling loop ended — "stable-verdict", "budget-exhausted" or
  /// "fit-failures" ("" when no sampling ran).
  bool adaptive_sampling = false;
  const char* stop_reason = "";
  /// Two-sample sizes entering the comparison test (after / before).
  std::size_t n_after = 0;
  std::size_t n_before = 0;
  double alpha = ts::kMissing;   ///< significance level of the test
  /// Practical-significance floor in KPI units and whether the observed
  /// effect cleared it (a significant-but-immaterial shift reads NoImpact).
  double effect_floor_kpi_units = ts::kMissing;
  bool material = false;
  /// Human-readable reason when the analyzer abstained (degenerate).
  std::string note;
};

/// One analyzer's conclusion for one study element.
struct AnalysisOutcome {
  RelativeChange relative = RelativeChange::kNoChange;
  Verdict verdict = Verdict::kNoImpact;
  double p_value = ts::kMissing;
  double statistic = ts::kMissing;
  /// Signed central shift in KPI units (after minus before), for reporting.
  double effect_kpi_units = ts::kMissing;
  /// Diagnostic: regression fit quality (Litmus only; NaN otherwise).
  double fit_r_squared = ts::kMissing;
  /// True when the analyzer could not run (insufficient data); verdict is
  /// then kNoImpact by construction but should be treated as "unknown".
  bool degenerate = false;
  /// Audit trail: how this outcome was produced (see VerdictExplanation).
  VerdictExplanation explanation;
};

/// Analyzer interface. Implementations are stateless given their parameters
/// and safe to reuse across assessments.
class ChangeAnalyzer {
 public:
  virtual ~ChangeAnalyzer() = default;

  virtual AnalysisOutcome assess(const ElementWindows& windows,
                                 kpi::KpiId kpi) const = 0;

  virtual std::string_view name() const noexcept = 0;
};

}  // namespace litmus::core
