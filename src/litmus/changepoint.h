// Change-onset localization.
//
// Litmus's rank test says *whether* the forecast difference shifted; the
// operations follow-up is *when* — did the shift line up with the change's
// execution time, or with something else (a storm two days later)? This
// rank-CUSUM locator finds the most likely level-shift point in a series
// and is robust to outliers for the same reason the rank-order test is.
#pragma once

#include <cstdint>

#include "litmus/spatial_regression.h"
#include "tsmath/timeseries.h"

namespace litmus::core {

struct ChangePoint {
  bool found = false;
  /// First bin of the new regime (the shift happened just before this bin).
  std::int64_t bin = 0;
  /// Normalized rank-CUSUM statistic in [0, 1]; ~0 for a stable series,
  /// approaching 1 for a clean mid-series level shift.
  double score = 0.0;
  /// Signed shift estimate: median(after bin) - median(before bin).
  double shift = ts::kMissing;
};

/// Locates the strongest level shift in `series` (missing-aware). `found`
/// is false when fewer than `min_segment` observations lie on either side
/// of every candidate split or the score stays below `min_score`.
ChangePoint locate_level_shift(const ts::TimeSeries& series,
                               std::size_t min_segment = 6,
                               double min_score = 0.25);

/// Convenience: concatenates the forecast differences from a Litmus run and
/// locates the onset of the relative change. Typically lands at (or just
/// after) the change bin when the change itself caused the shift.
ChangePoint locate_relative_change(
    const RobustSpatialRegression::Forecast& forecast,
    std::size_t min_segment = 6, double min_score = 0.25);

/// The paper's two change signatures (Section 3.2): an abrupt level change
/// vs a gradual ramp-up/down.
enum class ShiftShape : std::uint8_t { kLevel, kRamp };

const char* to_string(ShiftShape s) noexcept;

/// Classifies the regime after a located change point: if the post-onset
/// segment still carries a material robust (Theil-Sen) slope relative to
/// the total shift, the transition is a ramp; otherwise a step. Requires a
/// found ChangePoint; returns kLevel for degenerate inputs.
ShiftShape classify_shift(const ts::TimeSeries& series, const ChangePoint& cp);

}  // namespace litmus::core
