// Continuous post-change monitoring.
//
// The go / no-go decision is made once, but the paper's workflow keeps
// watching: "It is common operational practice to confirm performance
// impacts over multiple time-intervals before a decision is made"
// (Section 5). The monitor re-runs the robust spatial regression on a
// sliding after-window as new bins arrive and reports a state machine with
// hysteresis — an alarm requires `confirm_windows` consecutive significant
// reads, and clears the same way, so a single noisy window cannot flip the
// operational state.
#pragma once

#include <optional>
#include <vector>

#include "litmus/assessor.h"

namespace litmus::core {

enum class MonitorState : std::uint8_t {
  kWarmup,     ///< not enough post-change data yet
  kQuiet,      ///< no confirmed relative change
  kImproving,  ///< confirmed relative improvement
  kDegrading,  ///< confirmed relative degradation
};

const char* to_string(MonitorState s) noexcept;

struct MonitorConfig {
  std::size_t before_bins = 14 * 24;  ///< fixed pre-change training window
  std::size_t window_bins = 3 * 24;   ///< sliding after-window length
  std::size_t step_bins = 24;         ///< advance granularity
  std::size_t confirm_windows = 3;    ///< consecutive reads to switch state
  SpatialRegressionParams regression;
};

struct MonitorReading {
  std::int64_t up_to_bin = 0;  ///< data horizon of this reading
  AnalysisOutcome outcome;     ///< the window's raw verdict
  MonitorState state = MonitorState::kWarmup;  ///< confirmed state after it
};

class ChangeMonitor {
 public:
  /// Monitors `study` against `control` for `kpi`, for a change effective
  /// at `change_bin`. The provider is polled lazily on advance().
  ChangeMonitor(SeriesProvider provider, net::ElementId study,
                std::vector<net::ElementId> control, kpi::KpiId kpi,
                std::int64_t change_bin, MonitorConfig config = {});

  /// Consumes data up to `now_bin` (exclusive) and returns the readings for
  /// every complete window step reached since the last call (empty when
  /// nothing new completed).
  std::vector<MonitorReading> advance(std::int64_t now_bin);

  MonitorState state() const noexcept { return state_; }
  const std::vector<MonitorReading>& history() const noexcept {
    return history_;
  }

 private:
  MonitorReading evaluate_window(std::int64_t window_end);
  void update_state(const AnalysisOutcome& outcome);

  SeriesProvider provider_;
  net::ElementId study_;
  std::vector<net::ElementId> control_;
  kpi::KpiId kpi_;
  std::int64_t change_bin_;
  MonitorConfig config_;
  RobustSpatialRegression algorithm_;

  std::int64_t next_window_end_;
  MonitorState state_ = MonitorState::kWarmup;
  Verdict pending_ = Verdict::kNoImpact;
  std::size_t pending_count_ = 0;
  std::vector<MonitorReading> history_;
};

}  // namespace litmus::core
