// Batch assessment of an entire change log (the Mercury-style network-wide
// sweep the paper cites as related work, here with Litmus's study/control
// machinery): for every change record, check the window for conflicting
// changes, select a control group, run the robust spatial regression on the
// change's target KPI, and collect everything into one report the
// operations review can walk.
#pragma once

#include <string>
#include <vector>

#include "changelog/changelog.h"
#include "litmus/assessor.h"

namespace litmus::core {

struct BatchConfig {
  AssessmentConfig assessment;
  SelectionPolicy selection;
  /// Default predicate: same region + same technology (overridable).
  ControlPredicate predicate;
};

struct BatchItem {
  chg::ChangeRecord record;
  bool window_clean = false;  ///< no conflicting changes in scope
  std::vector<chg::ChangeRecord> conflicts;
  ChangeAssessment assessment;
  /// True when the change's outcome matched the recorded expectation.
  bool met_expectation = false;
};

struct BatchReport {
  std::vector<BatchItem> items;
  std::size_t improvements = 0;
  std::size_t degradations = 0;
  std::size_t no_impacts = 0;
  std::size_t dirty_windows = 0;
  std::size_t expectation_misses = 0;
};

/// Assesses every record in `log` against `topo` and `provider`.
BatchReport assess_change_log(const chg::ChangeLog& log,
                              const net::Topology& topo,
                              const SeriesProvider& provider,
                              BatchConfig config = {});

/// Multi-line, one row per change.
std::string format_batch_report(const BatchReport& report,
                                const net::Topology& topo);

}  // namespace litmus::core
