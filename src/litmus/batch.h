// Batch assessment of an entire change log (the Mercury-style network-wide
// sweep the paper cites as related work, here with Litmus's study/control
// machinery): for every change record, check the window for conflicting
// changes, select a control group, run the robust spatial regression on the
// change's target KPI, and collect everything into one report the
// operations review can walk.
//
// Scale machinery (DESIGN.md §15). Three properties keep a million-record
// sweep tractable without changing a single verdict:
//
//   * Indexed candidates — BatchConfig::group_key lets the driver enumerate
//     control candidates from a precomputed equivalence group instead of
//     scanning the whole topology per record. The full per-candidate rule
//     set still runs (select_control_group_among), so results are exact.
//   * Indexed conflicts — a chg::ChangeIndex answers the contamination
//     query per record in O(|scope| + hits) instead of a full-log scan.
//   * Blocked pipeline — records are prepared (windows fetched) and
//     assessed in fixed-size blocks, so peak memory holds one block of
//     windows, not the whole log's.
//
// Sharding. assess_change_log_sharded partitions records by
// shard_of(element) — a pure function of the element id — and runs the
// shards one after another, each with its own panel cache
// (ScopedPanelCacheOverride) and a per-shard trace span. Per-record
// assessment depends only on (record, topo, provider, config): the
// sampling RNG is a counter-forked pure function of (seed, iteration),
// cache state never changes produced bits, and tallies are recomputed in
// record order at the end — so the merged report is bit-identical to the
// unsharded assess_change_log, which tests/litmus/shard_test.cpp pins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "changelog/changelog.h"
#include "litmus/assessor.h"
#include "litmus/panel_cache.h"

namespace litmus::core {

struct BatchConfig {
  AssessmentConfig assessment;
  SelectionPolicy selection;
  /// Default predicate: same region + same technology (overridable).
  ControlPredicate predicate;
  /// Optional equivalence-group key for indexed control selection. When
  /// set, candidates for a study element are enumerated from the group of
  /// elements sharing its key instead of the whole topology. The key must
  /// be conservative: every element the predicate could accept for a study
  /// element must share that element's key (equivalence predicates — same
  /// zip + same technology, same upstream MSC — qualify; the predicate is
  /// still evaluated per candidate, so an over-wide group costs time, never
  /// correctness). Unset keeps the full scan.
  std::function<std::uint64_t(const net::Topology&, net::ElementId)>
      group_key;
};

struct BatchItem {
  chg::ChangeRecord record;
  bool window_clean = false;  ///< no conflicting changes in scope
  std::vector<chg::ChangeRecord> conflicts;
  ChangeAssessment assessment;
  /// True when the change's outcome matched the recorded expectation.
  bool met_expectation = false;
};

struct BatchReport {
  std::vector<BatchItem> items;
  std::size_t improvements = 0;
  std::size_t degradations = 0;
  std::size_t no_impacts = 0;
  std::size_t dirty_windows = 0;
  std::size_t expectation_misses = 0;
  /// Adaptive-sampling tallies over every (element, KPI) outcome whose
  /// sampling loop actually ran, recomputed in record order like the
  /// verdict tallies (all zero when adaptive sampling is off).
  bool adaptive_sampling = false;
  std::size_t adaptive_stopped_early = 0;
  std::uint64_t adaptive_iterations_used = 0;
  std::uint64_t adaptive_iterations_budget = 0;
};

/// Assesses every record in `log` against `topo` and `provider`.
BatchReport assess_change_log(const chg::ChangeLog& log,
                              const net::Topology& topo,
                              const SeriesProvider& provider,
                              BatchConfig config = {});

// ---- Sharded driver --------------------------------------------------------

/// Deterministic shard of an element: element.value % n_shards (0 when
/// n_shards <= 1). A pure function of the id, so the same topology always
/// partitions the same way on any machine.
std::size_t shard_of(net::ElementId element, std::size_t n_shards) noexcept;

/// Record indices per shard, ascending within each shard (log order).
/// Every record lands in exactly one shard.
std::vector<std::vector<std::size_t>> plan_shards(const chg::ChangeLog& log,
                                                  std::size_t n_shards);

struct ShardSummary {
  std::size_t shard = 0;
  std::size_t records = 0;
  double seconds = 0.0;
  PanelCache::Stats cache;  ///< the shard-local panel cache's final stats
  /// Adaptive-sampling stats for this shard's records (zero adaptive-off).
  /// Deterministic: re-running a shard reproduces the same iterations-used.
  std::size_t adaptive_stopped_early = 0;
  std::uint64_t adaptive_iterations_used = 0;
  std::uint64_t adaptive_iterations_budget = 0;
};

/// Driver-thread hooks around each shard, for per-shard run artifacts
/// (litmus_cli swaps in a shard event log in on_start and writes the
/// shard manifest in on_finish). Both run while no worker is in flight.
struct ShardCallbacks {
  std::function<void(std::size_t shard, std::size_t records)> on_start;
  std::function<void(const ShardSummary&)> on_finish;
};

struct ShardedBatchReport {
  /// Bit-identical to assess_change_log over the same inputs.
  BatchReport merged;
  std::vector<ShardSummary> shards;
};

/// Runs the batch shard by shard (deterministic element partition,
/// shard-local panel caches, per-shard spans + shard.* metrics), merging
/// verdicts back into record order. n_shards is clamped to >= 1.
ShardedBatchReport assess_change_log_sharded(const chg::ChangeLog& log,
                                             const net::Topology& topo,
                                             const SeriesProvider& provider,
                                             std::size_t n_shards,
                                             BatchConfig config = {},
                                             const ShardCallbacks& cb = {});

/// Multi-line, one row per change.
std::string format_batch_report(const BatchReport& report,
                                const net::Topology& topo);

}  // namespace litmus::core
