#include "litmus/panel_cache.h"

#include <bit>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::core {
namespace {

/// Two independent multiply-xorshift streams; 128 bits of fingerprint so a
/// colliding pair of distinct panels is out of reach (see header).
struct Fingerprinter {
  std::uint64_t a = 0x9ae16a3b2f90404full;
  std::uint64_t b = 0xc3a5c85c97cb3127ull;

  void add(std::uint64_t v) noexcept {
    a = (a ^ v) * 0x00000100000001b3ull;
    a ^= a >> 33;
    b = (b + v) * 0xff51afd7ed558ccdull;
    b ^= b >> 29;
  }
};

std::size_t capacity_from_env() noexcept {
  constexpr std::size_t kDefaultMb = 64;
  const char* env = std::getenv("LITMUS_PANEL_CACHE_MB");
  std::size_t mb = kDefaultMb;
  if (env != nullptr) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') mb = static_cast<std::size_t>(v);
  }
  return mb * std::size_t{1024} * std::size_t{1024};
}

}  // namespace

PanelKey fingerprint_design(const ts::Matrix& design) noexcept {
  Fingerprinter fp;
  fp.add(design.rows());
  fp.add(design.cols());
  for (std::size_t c = 0; c < design.cols(); ++c)
    for (const double v : design.column(c))
      fp.add(std::bit_cast<std::uint64_t>(v));
  return PanelKey{fp.a, fp.b};
}

PanelCache::PanelCache(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

PanelCache& PanelCache::global() {
  // Intentionally immortal: pool workers hit the cache and can outlive the
  // start of static destruction on the main thread. See
  // thread_name_registry() in profile.cpp.
  static PanelCache* cache = new PanelCache(capacity_from_env());
  return *cache;
}

namespace {
/// nullptr = no override (use global()). Relaxed is enough: the override
/// is installed while analyzer threads are quiescent, and any ordering a
/// reader needs comes from the synchronization that started its work.
std::atomic<PanelCache*> g_cache_override{nullptr};
}  // namespace

PanelCache& PanelCache::current() noexcept {
  PanelCache* o = g_cache_override.load(std::memory_order_acquire);
  return o ? *o : global();
}

ScopedPanelCacheOverride::ScopedPanelCacheOverride(
    PanelCache& cache) noexcept
    : previous_(g_cache_override.exchange(&cache,
                                          std::memory_order_acq_rel)) {}

ScopedPanelCacheOverride::~ScopedPanelCacheOverride() {
  g_cache_override.store(previous_, std::memory_order_release);
}

std::size_t PanelCache::capacity_bytes() const noexcept {
  return capacity_bytes_.load(std::memory_order_relaxed);
}

std::list<PanelCache::Entry> PanelCache::evict_over_budget(Shard& s,
                                                           bool keep_front) {
  const std::size_t budget =
      capacity_bytes_.load(std::memory_order_relaxed) / kShards;
  const std::size_t min_size = keep_front ? 1 : 0;
  std::list<Entry> evicted;
  while (s.bytes > budget && s.lru.size() > min_size) {
    auto last = std::prev(s.lru.end());
    s.bytes -= last->bytes;
    total_bytes_.fetch_sub(last->bytes, std::memory_order_relaxed);
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
    s.map.erase(last->key);
    ++s.evictions;
    evicted.splice(evicted.end(), s.lru, last);
  }
  return evicted;
}

void PanelCache::observe(std::uint64_t hit_delta, std::uint64_t miss_delta,
                         std::uint64_t evict_delta) const {
  if (!obs::enabled()) return;
  // The registry hands out stable references; resolve the names once so
  // the per-assessment path never rebuilds metric-name strings.
  struct Handles {
    obs::Counter& hits;
    obs::Counter& misses;
    obs::Counter& evictions;
    obs::Gauge& bytes;
    obs::Gauge& entries;
    obs::Gauge& pressure;
  };
  static Handles h{obs::Registry::global().counter("panel_cache.hits"),
                   obs::Registry::global().counter("panel_cache.misses"),
                   obs::Registry::global().counter("panel_cache.evictions"),
                   obs::Registry::global().gauge("panel_cache.bytes"),
                   obs::Registry::global().gauge("panel_cache.entries"),
                   obs::Registry::global().gauge("panel_cache.pressure")};
  if (hit_delta > 0) h.hits.add(hit_delta);
  if (miss_delta > 0) h.misses.add(miss_delta);
  if (evict_delta > 0) h.evictions.add(evict_delta);
  const auto bytes = total_bytes_.load(std::memory_order_relaxed);
  h.bytes.set(static_cast<double>(bytes));
  h.entries.set(
      static_cast<double>(total_entries_.load(std::memory_order_relaxed)));
  // Byte-budget pressure: occupancy as a fraction of capacity. Sitting at
  // 1.0 means the LRU is churning and eviction latency is in play.
  const std::size_t cap = capacity_bytes_.load(std::memory_order_relaxed);
  h.pressure.set(cap > 0 ? static_cast<double>(bytes) /
                               static_cast<double>(cap)
                         : 0.0);
}

namespace {

/// Hit-vs-build latency split (microseconds): a healthy cache shows two
/// well-separated modes; hit latency creeping toward build latency means
/// shard-lock contention.
obs::Histogram& hit_latency_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("panel_cache.hit_us");
  return h;
}

obs::Histogram& build_latency_histogram() {
  static obs::Histogram& h =
      obs::Registry::global().histogram("panel_cache.build_us");
  return h;
}

}  // namespace

PanelCache::PanelPtr PanelCache::get_or_build(const PanelKey& key,
                                              const Builder& build) {
  const bool obs_on = obs::enabled();
  const std::uint64_t lookup_start = obs_on ? obs::now_ns() : 0;
  const bool store = capacity_bytes_.load(std::memory_order_relaxed) > 0;
  if (store) {
    Shard& s = shard_of(key);
    std::unique_lock lock(s.mu);
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      PanelPtr panel = it->second->panel;
      lock.unlock();
      if (obs_on)
        hit_latency_histogram().record(
            static_cast<double>(obs::now_ns() - lookup_start) / 1000.0);
      observe(1, 0, 0);
      return panel;
    }
  }

  PanelPtr panel;
  {
    obs::ScopedSpan span("panel-cache.build");
    const std::uint64_t build_start = obs_on ? obs::now_ns() : 0;
    panel = std::make_shared<const ts::GramPanel>(build());
    if (obs_on)
      build_latency_histogram().record(
          static_cast<double>(obs::now_ns() - build_start) / 1000.0);
  }
  if (!store) {
    Shard& s = shard_of(key);
    {
      std::unique_lock lock(s.mu);
      ++s.misses;
    }
    observe(0, 1, 0);
    return panel;
  }

  Shard& s = shard_of(key);
  std::list<Entry> evicted;
  std::uint64_t evict_delta = 0;
  {
    std::unique_lock lock(s.mu);
    ++s.misses;
    const auto it = s.map.find(key);
    if (it != s.map.end()) {
      // Another thread built the same content while we did; its panel is
      // bit-identical, so adopt it and drop ours.
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      panel = it->second->panel;
    } else {
      const std::size_t bytes = panel->bytes();
      s.lru.push_front(Entry{key, panel, bytes});
      s.map.emplace(key, s.lru.begin());
      s.bytes += bytes;
      total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      total_entries_.fetch_add(1, std::memory_order_relaxed);
      evicted = evict_over_budget(s, /*keep_front=*/true);
      evict_delta = evicted.size();
    }
  }
  evicted.clear();  // release evicted panels outside the shard lock
  observe(0, 1, evict_delta);
  return panel;
}

void PanelCache::set_capacity_bytes(std::size_t capacity_bytes) {
  capacity_bytes_.store(capacity_bytes, std::memory_order_relaxed);
  std::uint64_t evict_delta = 0;
  for (Shard& s : shards_) {
    std::list<Entry> evicted;
    {
      std::unique_lock lock(s.mu);
      evicted = evict_over_budget(s, /*keep_front=*/false);
      evict_delta += evicted.size();
    }
  }
  observe(0, 0, evict_delta);
}

void PanelCache::clear() {
  for (Shard& s : shards_) {
    std::list<Entry> dropped;
    {
      std::unique_lock lock(s.mu);
      total_bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
      total_entries_.fetch_sub(s.lru.size(), std::memory_order_relaxed);
      s.bytes = 0;
      s.map.clear();
      dropped.swap(s.lru);
    }
  }
  observe(0, 0, 0);
}

PanelCache::Stats PanelCache::stats() const {
  Stats out;
  for (const Shard& s : shards_) {
    std::unique_lock lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.evictions += s.evictions;
    out.bytes += s.bytes;
    out.entries += s.lru.size();
  }
  return out;
}

}  // namespace litmus::core
