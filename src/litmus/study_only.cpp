#include "litmus/study_only.h"

#include <cmath>

#include "tsmath/rank_tests.h"
#include "tsmath/stats.h"

namespace litmus::core {

AnalysisOutcome StudyOnlyAnalyzer::assess(const ElementWindows& windows,
                                          kpi::KpiId kpi) const {
  AnalysisOutcome out;
  out.explanation.analyzer = name().data();
  out.explanation.test = "robust_rank_order";
  out.explanation.alpha = params_.alpha;
  const auto& before = windows.study_before;
  const auto& after = windows.study_after;
  if (before.observed_count() < 4 || after.observed_count() < 4) {
    out.degenerate = true;
    out.explanation.note = "fewer than 4 observed study bins on one side";
    return out;
  }
  const ts::TestResult t =
      ts::robust_rank_order(after.values(), before.values(), params_.alpha);
  out.p_value = t.p_value;
  out.statistic = t.statistic;
  out.effect_kpi_units = ts::median(after) - ts::median(before);
  const double floor_kpi =
      params_.min_effect_sigma * kpi::info(kpi).typical_noise;
  const bool material = std::fabs(out.effect_kpi_units) >= floor_kpi;
  out.explanation.n_after = t.n_x;
  out.explanation.n_before = t.n_y;
  out.explanation.effect_floor_kpi_units = floor_kpi;
  out.explanation.material = material;
  switch (t.shift) {
    case ts::Shift::kNone: out.relative = RelativeChange::kNoChange; break;
    case ts::Shift::kIncrease:
      out.relative =
          material ? RelativeChange::kIncrease : RelativeChange::kNoChange;
      break;
    case ts::Shift::kDecrease:
      out.relative =
          material ? RelativeChange::kDecrease : RelativeChange::kNoChange;
      break;
  }
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
