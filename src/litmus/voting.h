// Voting across study-group elements (paper Section 3.2: "We also use
// voting to summarize across multiple elements in the study group").
#pragma once

#include <span>

#include "litmus/analysis.h"

namespace litmus::core {

struct VoteSummary {
  Verdict verdict = Verdict::kNoImpact;
  std::size_t improvements = 0;
  std::size_t degradations = 0;
  std::size_t no_impacts = 0;
  std::size_t degenerates = 0;  ///< excluded from the vote
  /// Fraction of votes won by the winning verdict (0 when nothing voted).
  double confidence = 0.0;
};

/// Plurality vote over per-element verdicts. Degenerate outcomes abstain.
/// Ties between Improvement and Degradation resolve to NoImpact — a split
/// study group is not evidence for either direction; ties between an impact
/// verdict and NoImpact resolve to the impact verdict (a real impact rarely
/// reaches significance at every element).
VoteSummary vote(std::span<const AnalysisOutcome> outcomes);

}  // namespace litmus::core
