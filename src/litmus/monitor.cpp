#include "litmus/monitor.h"

#include <stdexcept>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::core {

const char* to_string(MonitorState s) noexcept {
  switch (s) {
    case MonitorState::kWarmup: return "warmup";
    case MonitorState::kQuiet: return "quiet";
    case MonitorState::kImproving: return "improving";
    case MonitorState::kDegrading: return "degrading";
  }
  return "?";
}

ChangeMonitor::ChangeMonitor(SeriesProvider provider, net::ElementId study,
                             std::vector<net::ElementId> control,
                             kpi::KpiId kpi, std::int64_t change_bin,
                             MonitorConfig config)
    : provider_(std::move(provider)),
      study_(study),
      control_(std::move(control)),
      kpi_(kpi),
      change_bin_(change_bin),
      config_(config),
      algorithm_(config.regression),
      next_window_end_(change_bin +
                       static_cast<std::int64_t>(config.window_bins)) {
  if (!provider_) throw std::invalid_argument("ChangeMonitor: null provider");
  if (config_.window_bins < 12 || config_.step_bins == 0 ||
      config_.confirm_windows == 0)
    throw std::invalid_argument("ChangeMonitor: bad window config");
}

MonitorReading ChangeMonitor::evaluate_window(std::int64_t window_end) {
  obs::ScopedSpan span("monitor.window");
  const std::int64_t before_start =
      change_bin_ - static_cast<std::int64_t>(config_.before_bins);
  const std::int64_t after_start =
      window_end - static_cast<std::int64_t>(config_.window_bins);

  ElementWindows w;
  w.study_before =
      provider_(study_, kpi_, before_start, config_.before_bins);
  w.study_after = provider_(study_, kpi_, after_start, config_.window_bins);
  for (const auto c : control_) {
    w.control_before.push_back(
        provider_(c, kpi_, before_start, config_.before_bins));
    w.control_after.push_back(
        provider_(c, kpi_, after_start, config_.window_bins));
  }

  MonitorReading reading;
  reading.up_to_bin = window_end;
  reading.outcome = algorithm_.assess(w, kpi_);
  update_state(reading.outcome);
  reading.state = state_;
  if (auto* ev = obs::events()) {
    ev->emit(obs::EventType::kKpiVerdict, [&](obs::JsonWriter& w2) {
      w2.member("source", "monitor")
          .member("kpi", kpi::to_string(kpi_))
          .member("element", static_cast<std::uint64_t>(study_.value))
          .member("bin", static_cast<std::int64_t>(change_bin_))
          .member("up_to", static_cast<std::int64_t>(window_end))
          .member("verdict", to_string(reading.outcome.verdict))
          .member("state", to_string(reading.state));
    });
  }
  return reading;
}

void ChangeMonitor::update_state(const AnalysisOutcome& outcome) {
  if (outcome.degenerate) return;  // no evidence either way
  if (outcome.verdict == pending_) {
    ++pending_count_;
  } else {
    pending_ = outcome.verdict;
    pending_count_ = 1;
  }
  if (pending_count_ < config_.confirm_windows) {
    if (state_ == MonitorState::kWarmup && pending_count_ > 0 &&
        pending_ == Verdict::kNoImpact) {
      // Quiet start needs no long confirmation: absence of evidence.
      state_ = MonitorState::kQuiet;
    }
    return;
  }
  switch (pending_) {
    case Verdict::kNoImpact: state_ = MonitorState::kQuiet; break;
    case Verdict::kImprovement: state_ = MonitorState::kImproving; break;
    case Verdict::kDegradation: state_ = MonitorState::kDegrading; break;
  }
}

std::vector<MonitorReading> ChangeMonitor::advance(std::int64_t now_bin) {
  // Every poll is a sign of life for the /readyz staleness watermark,
  // even when no window completed — an idle-but-polling monitor is
  // healthy, a wedged one is not.
  if (obs::enabled()) obs::touch_heartbeat();
  std::vector<MonitorReading> out;
  while (next_window_end_ <= now_bin) {
    out.push_back(evaluate_window(next_window_end_));
    history_.push_back(out.back());
    next_window_end_ += static_cast<std::int64_t>(config_.step_bins);
  }
  // Daemon-style liveness signal: one heartbeat per advance() sweep with
  // the worker pool's load, so a dashboard tailing the JSONL sees both
  // progress (windows evaluated) and saturation (queue depth).
  if (!out.empty()) {
    if (auto* ev = obs::events()) {
      const par::PoolStats pool = par::pool_stats();
      ev->emit(obs::EventType::kHeartbeat, [&](obs::JsonWriter& w) {
        w.member("stage", "monitor")
            .member("up_to", static_cast<std::int64_t>(out.back().up_to_bin))
            .member("windows",
                    static_cast<std::uint64_t>(history_.size()))
            .member("state", to_string(state_))
            .member("pool.queue_depth",
                    static_cast<std::uint64_t>(pool.queue_depth))
            .member("pool.tasks_completed", pool.tasks_completed);
      });
    }
  }
  return out;
}

}  // namespace litmus::core
