// Domain-knowledge-guided control-group selection (paper Section 3.3).
//
// The evaluator picks control candidates *outside the impact scope* of the
// change, subject to the same external factors as the study group and
// similar in attributes. Litmus exposes the paper's attribute families as
// composable predicates:
//
//   1. geographical distance (lat/long, zip code)
//   2. topological structure (same upstream controller / parent)
//   3. configuration (software version, equipment model, antenna, OS)
//   4. terrain
//   5. traffic patterns
//
// Predicates can be uni-variate ("cell towers within the same zip code") or
// multi-variate via all_of / any_of composition ("towers sharing the common
// upstream RNC *and* upstream RNC with the same OS").
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cellnet/topology.h"

namespace litmus::core {

/// A predicate deciding whether `candidate` is an acceptable control for
/// `study`, evaluated against a fixed topology.
using ControlPredicate = std::function<bool(
    const net::Topology& topo, net::ElementId study, net::ElementId candidate)>;

// ---- Attribute family 1: geography ----------------------------------------
ControlPredicate same_zip();
ControlPredicate within_km(double radius_km);
ControlPredicate same_region();

// ---- Attribute family 2: topology ------------------------------------------
ControlPredicate same_parent();
/// Candidate and study share the nearest ancestor of the given kind (e.g.
/// NodeBs under the same RNC).
ControlPredicate same_upstream(net::ElementKind kind);
ControlPredicate same_kind();
ControlPredicate same_technology();

// ---- Attribute family 3: configuration -------------------------------------
ControlPredicate same_software_version();
ControlPredicate same_equipment_model();
ControlPredicate same_os_version();
ControlPredicate son_state_matches();
/// Antenna parameters within the given tolerances.
ControlPredicate similar_antenna(double tilt_tolerance_deg,
                                 double power_tolerance_dbm);

// ---- Attribute families 4 and 5: terrain & traffic -------------------------
ControlPredicate same_terrain();
ControlPredicate same_traffic_profile();

// ---- Composition ------------------------------------------------------------
ControlPredicate all_of(std::vector<ControlPredicate> predicates);
ControlPredicate any_of(std::vector<ControlPredicate> predicates);
ControlPredicate negate(ControlPredicate predicate);

/// Selection policy. The paper deliberately keeps the control group at
/// 10s-100s elements: big enough for robust regression, small enough that
/// the shared external factors stay shared.
struct SelectionPolicy {
  std::size_t min_size = 4;
  std::size_t max_size = 60;
  /// When more candidates qualify than max_size, keep the geographically
  /// closest to the study group (they share external factors best).
  bool prefer_closest = true;
};

struct SelectionResult {
  std::vector<net::ElementId> controls;
  std::size_t candidates_considered = 0;
  std::size_t excluded_by_scope = 0;
  bool meets_min_size = false;
};

/// Selects the control group for a (possibly multi-element) study group:
/// every candidate must match the predicate against at least one study
/// element, be of the same kind as that element, and lie outside the impact
/// scope of *every* study element.
SelectionResult select_control_group(const net::Topology& topo,
                                     std::span<const net::ElementId> study,
                                     const ControlPredicate& predicate,
                                     const SelectionPolicy& policy = {});

/// As select_control_group, but drawing candidates from `candidates`
/// (insertion order, as topo.all() iterates) instead of the whole
/// topology. Every per-candidate rule — study exclusion, impact-scope
/// exclusion, kind match, the predicate, distance scoring, the policy cap
/// — still applies, so any candidate list that is a superset of the
/// predicate's matches (in topology order) selects the identical control
/// group; only the candidates_considered / excluded_by_scope tallies
/// reflect the narrowed pool. Batch sweeps pass a precomputed equivalence
/// group (BatchConfig::group_key) so per-record cost scales with the group
/// size, not the network size.
SelectionResult select_control_group_among(
    const net::Topology& topo, std::span<const net::ElementId> candidates,
    std::span<const net::ElementId> study, const ControlPredicate& predicate,
    const SelectionPolicy& policy = {});

}  // namespace litmus::core
