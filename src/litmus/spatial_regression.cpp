#include "litmus/spatial_regression.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

#include "litmus/panel_cache.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "parallel/workspace.h"
#include "tsmath/gram.h"
#include "tsmath/linreg.h"
#include "tsmath/matrix.h"
#include "tsmath/random.h"
#include "tsmath/rank_tests.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

// Packs aligned control windows into a design matrix over the study
// window's absolute bin range. Bins a control lacks become NaN rows (the
// OLS drops them; forecasts there are missing). Columnar: the matrix is
// column-major, so each control is one contiguous range copy.
ts::Matrix design_matrix(const ts::TimeSeries& study,
                         std::span<const ts::TimeSeries> controls) {
  ts::Matrix x(study.size(), controls.size());
  for (std::size_t c = 0; c < controls.size(); ++c)
    controls[c].copy_range_into(study.start_bin(), x.column(c));
  return x;
}

// Median of a complete (no missing values) sample, selecting in place.
// The per-bin aggregation calls this once per forecast bin, so it must
// not allocate or fully sort; nth_element finds the same order
// statistics ts::median would, and the even-count interpolation repeats
// ts::quantile's arithmetic (frac = 0.5) operand for operand, so the
// result is bit-identical to ts::median on the same values.
double median_complete(std::vector<double>& v) {
  const std::size_t n = v.size();
  const std::size_t hi = n / 2;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(hi), v.end());
  const double upper = v[hi];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(v.begin(),
                        v.begin() + static_cast<std::ptrdiff_t>(hi));
  return lower * 0.5 + upper * 0.5;
}

}  // namespace

bool RobustSpatialRegression::forecast(const ElementWindows& w,
                                       Forecast& out) const {
  const std::size_t n_controls = w.control_before.size();
  if (n_controls == 0 || w.control_after.size() != n_controls) return false;
  if (w.study_before.observed_count() < 8 ||
      w.study_after.observed_count() < 4)
    return false;

  const ts::Matrix x_before = design_matrix(w.study_before, w.control_before);
  const ts::Matrix x_after = design_matrix(w.study_after, w.control_after);

  // k > N/2 (paper), bounded by the regression's degrees of freedom.
  const std::size_t majority = n_controls / 2 + 1;
  std::size_t k = std::max(
      majority, static_cast<std::size_t>(std::floor(
                    params_.sample_fraction * static_cast<double>(n_controls))));
  k = std::min(k, n_controls);
  const std::size_t max_regressors =
      w.study_before.observed_count() > 6
          ? w.study_before.observed_count() - 5
          : 0;
  k = std::min(k, max_regressors);
  if (k == 0) return false;

  const std::span<const double> y = w.study_before.values();
  // The O(m·N²) panel precompute only pays off when enough iterations
  // amortize it (GramPanel::worthwhile); below the crossover every
  // iteration just runs QR, exactly as with the fast path disabled. The
  // decision deliberately ignores cache state (a hit would make the build
  // free) so cached and uncached runs take identical code paths.
  const bool use_gram =
      params_.use_gram_fast_path &&
      ts::GramPanel::worthwhile(params_.n_iterations, k, x_before.cols());
  PanelCache::PanelPtr panel;
  ts::GramSystem gram;
  if (use_gram) {
    // Content-keyed: every study element regressing onto the same control
    // columns over the same bins — across a multi-element assessment, a
    // batch sweep, or monitor steps — shares one panel build.
    panel = PanelCache::current().get_or_build(
        fingerprint_design(x_before),
        [&] { return ts::GramPanel::build(x_before); });
    gram.bind(*panel, y, params_.with_intercept);
  }

  // Iterations are independent: each draws from its own counter-based
  // substream (base.fork(it) is a pure function of seed and iteration
  // index), so chunks can run on any thread and still produce exactly the
  // sequential per-iteration results. Accumulation is per chunk; chunks
  // are contiguous and ascending, so merging them in chunk order below
  // reconstructs the sequential iteration order bit-for-bit.
  const ts::Rng base(params_.seed);
  struct ChunkAcc {
    std::vector<std::vector<double>> fc_before, fc_after;
    std::vector<double> r2s;
    std::size_t successes = 0;
    std::uint64_t iterations = 0, failures = 0, gram_fast = 0, qr_fallback = 0;
  };
  const std::size_t n_chunks = par::plan_chunks(params_.n_iterations);
  std::vector<ChunkAcc> acc(n_chunks);

  par::parallel_chunks(
      params_.n_iterations, n_chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ChunkAcc& a = acc[chunk];
        a.fc_before.resize(w.study_before.size());
        a.fc_after.resize(w.study_after.size());
        // Per-thread reusable scratch: the steady-state iteration performs
        // no heap allocation on the Gram path.
        par::Workspace& ws = par::this_thread_workspace();
        std::vector<std::size_t>& pool = ws.indices(0);
        std::vector<std::size_t>& cols = ws.indices(1);
        std::vector<double>& pred = ws.doubles(0);
        static thread_local ts::GramScratch scratch;

        for (std::size_t it = begin; it < end; ++it) {
          ts::Rng rng = base.fork(it);
          {
            obs::ScopedSpan span("sampling");
            ts::sample_without_replacement(rng, n_controls, k, pool, cols);
          }
          ts::LinearModel model;
          bool fast = false;
          {
            obs::ScopedSpan span("fit");
            if (gram.ok() && gram.subset_matches_panel(cols))
              fast = gram.solve_subset(cols, scratch, model);
            if (!fast)
              model = ts::fit_ols(x_before.select_columns(cols), y,
                                  params_.with_intercept);
          }
          ++a.iterations;
          if (use_gram) {
            if (fast)
              ++a.gram_fast;
            else
              ++a.qr_fallback;
          }
          if (obs::enabled() && model.ok) {
            auto& reg = obs::Registry::global();
            reg.histogram("litmus.fit.r_squared").record(model.r_squared);
            reg.histogram("litmus.fit.residual_stddev")
                .record(model.residual_stddev);
            reg.gauge("litmus.fit.condition_number").set(model.condition);
          }
          if (!model.ok) {
            ++a.failures;
            continue;
          }
          ++a.successes;
          a.r2s.push_back(model.r_squared);

          obs::ScopedSpan span("forecast");
          model.predict_columns_into(x_before, cols, pred);
          for (std::size_t r = 0; r < pred.size(); ++r)
            if (!ts::is_missing(pred[r])) a.fc_before[r].push_back(pred[r]);
          model.predict_columns_into(x_after, cols, pred);
          for (std::size_t r = 0; r < pred.size(); ++r)
            if (!ts::is_missing(pred[r])) a.fc_after[r].push_back(pred[r]);
        }
        if (obs::enabled()) {
          auto& reg = obs::Registry::global();
          reg.counter("litmus.iterations").add(a.iterations);
          if (a.failures > 0) reg.counter("litmus.fit.failures").add(a.failures);
          if (a.gram_fast > 0) reg.counter("litmus.fit.gram").add(a.gram_fast);
          if (a.qr_fallback > 0)
            reg.counter("litmus.fit.qr_fallback").add(a.qr_fallback);
          reg.counter("litmus.worker." +
                      std::to_string(obs::thread_index()) + ".iterations")
              .add(a.iterations);
        }
        // Chunk-granular events (never per iteration): failed fits and
        // Gram->QR fallbacks are the anomalies an auditor greps for.
        if (auto* ev = obs::events()) {
          if (a.failures > 0)
            ev->emit(obs::EventType::kIterationRetry,
                     [&](obs::JsonWriter& w2) {
                       w2.member("stage", "fit")
                           .member("failed", a.failures)
                           .member("of", a.iterations);
                     });
          if (a.qr_fallback > 0)
            ev->emit(obs::EventType::kFallbackQr, [&](obs::JsonWriter& w2) {
              w2.member("fallbacks", a.qr_fallback)
                  .member("of", a.iterations);
            });
        }
      });

  // Merge per-chunk accumulators in chunk (== iteration) order.
  std::vector<std::vector<double>> fc_before(w.study_before.size());
  std::vector<std::vector<double>> fc_after(w.study_after.size());
  std::vector<double> r2s;
  std::size_t successes = 0;
  for (const ChunkAcc& a : acc) {
    successes += a.successes;
    r2s.insert(r2s.end(), a.r2s.begin(), a.r2s.end());
    for (std::size_t r = 0; r < fc_before.size(); ++r)
      fc_before[r].insert(fc_before[r].end(), a.fc_before[r].begin(),
                          a.fc_before[r].end());
    for (std::size_t r = 0; r < fc_after.size(); ++r)
      fc_after[r].insert(fc_after[r].end(), a.fc_after[r].begin(),
                         a.fc_after[r].end());
  }
  if (successes == 0) return false;

  out.effective_k = k;
  out.successful_iterations = successes;
  out.median_r_squared = ts::median(r2s);

  const bool use_median =
      params_.aggregation == ForecastAggregation::kMedian;
  // fc vectors hold only non-missing predictions (filtered at push), so
  // the selection-based median applies; it may permute its input, which
  // is fine — the per-bin vectors are dead after aggregation.
  auto aggregate = [use_median](std::vector<double>& v) {
    return use_median ? median_complete(v) : ts::mean(v);
  };

  out.median_forecast_before =
      ts::TimeSeries(w.study_before.start_bin(), w.study_before.size(),
                     w.study_before.bin_minutes());
  for (std::size_t r = 0; r < fc_before.size(); ++r)
    if (!fc_before[r].empty())
      out.median_forecast_before[r] = aggregate(fc_before[r]);

  out.median_forecast_after =
      ts::TimeSeries(w.study_after.start_bin(), w.study_after.size(),
                     w.study_after.bin_minutes());
  for (std::size_t r = 0; r < fc_after.size(); ++r)
    if (!fc_after[r].empty())
      out.median_forecast_after[r] = aggregate(fc_after[r]);

  out.forecast_diff_before =
      w.study_before.minus(out.median_forecast_before);
  out.forecast_diff_after = w.study_after.minus(out.median_forecast_after);
  return true;
}

AnalysisOutcome RobustSpatialRegression::assess(const ElementWindows& w,
                                                kpi::KpiId kpi) const {
  AnalysisOutcome out;
  out.explanation.analyzer = name().data();
  out.explanation.aggregation =
      params_.aggregation == ForecastAggregation::kMedian ? "median" : "mean";
  out.explanation.test = params_.test == ComparisonTest::kRobustRankOrder
                             ? "robust_rank_order"
                             : "wilcoxon_mann_whitney";
  out.explanation.n_controls = w.control_before.size();
  out.explanation.iterations_requested = params_.n_iterations;
  out.explanation.alpha = params_.alpha;

  Forecast fc;
  if (!forecast(w, fc)) {
    out.degenerate = true;
    out.explanation.note =
        "no usable forecast: empty/mismatched control group, too few "
        "observed study bins, or every sampling iteration failed to fit";
    return out;
  }
  out.explanation.effective_k = fc.effective_k;
  out.explanation.successful_iterations = fc.successful_iterations;
  if (fc.forecast_diff_before.observed_count() < 4 ||
      fc.forecast_diff_after.observed_count() < 4) {
    out.degenerate = true;
    out.explanation.note =
        "fewer than 4 observed forecast-difference bins on one side";
    return out;
  }

  ts::TestResult t;
  {
    obs::ScopedSpan span("rank-test");
    t = params_.test == ComparisonTest::kRobustRankOrder
            ? ts::robust_rank_order(fc.forecast_diff_after.values(),
                                    fc.forecast_diff_before.values(),
                                    params_.alpha)
            : ts::wilcoxon_mann_whitney(fc.forecast_diff_after.values(),
                                        fc.forecast_diff_before.values(),
                                        params_.alpha);
  }
  out.p_value = t.p_value;
  out.statistic = t.statistic;
  out.fit_r_squared = fc.median_r_squared;
  out.effect_kpi_units =
      ts::median(fc.forecast_diff_after) - ts::median(fc.forecast_diff_before);
  const double floor_kpi =
      params_.min_effect_sigma * kpi::info(kpi).typical_noise;
  const bool material = std::fabs(out.effect_kpi_units) >= floor_kpi;
  out.explanation.n_after = t.n_x;
  out.explanation.n_before = t.n_y;
  out.explanation.effect_floor_kpi_units = floor_kpi;
  out.explanation.material = material;
  switch (t.shift) {
    case ts::Shift::kNone: out.relative = RelativeChange::kNoChange; break;
    case ts::Shift::kIncrease:
      out.relative =
          material ? RelativeChange::kIncrease : RelativeChange::kNoChange;
      break;
    case ts::Shift::kDecrease:
      out.relative =
          material ? RelativeChange::kDecrease : RelativeChange::kNoChange;
      break;
  }
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
