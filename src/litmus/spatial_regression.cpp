#include "litmus/spatial_regression.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <span>
#include <string>

#include "litmus/panel_cache.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "parallel/workspace.h"
#include "tsmath/gram.h"
#include "tsmath/linreg.h"
#include "tsmath/matrix.h"
#include "tsmath/normal.h"
#include "tsmath/random.h"
#include "tsmath/rank_tests.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

// Packs aligned control windows into a design matrix over the study
// window's absolute bin range. Bins a control lacks become NaN rows (the
// OLS drops them; forecasts there are missing). Columnar: the matrix is
// column-major, so each control is one contiguous range copy.
ts::Matrix design_matrix(const ts::TimeSeries& study,
                         std::span<const ts::TimeSeries> controls) {
  ts::Matrix x(study.size(), controls.size());
  for (std::size_t c = 0; c < controls.size(); ++c)
    controls[c].copy_range_into(study.start_bin(), x.column(c));
  return x;
}

// Median of a complete (no missing values) sample, selecting in place.
// The per-bin aggregation calls this once per forecast bin, so it must
// not allocate or fully sort; nth_element finds the same order
// statistics ts::median would, and the even-count interpolation repeats
// ts::quantile's arithmetic (frac = 0.5) operand for operand, so the
// result is bit-identical to ts::median on the same values.
double median_complete(std::vector<double>& v) {
  const std::size_t n = v.size();
  const std::size_t hi = n / 2;
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(hi), v.end());
  const double upper = v[hi];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(v.begin(),
                        v.begin() + static_cast<std::ptrdiff_t>(hi));
  return lower * 0.5 + upper * 0.5;
}

// Leave-one-out band of one bin's aggregate across the iterations seen so
// far: [lo, hi] brackets every value the aggregate can take after removing
// a single iteration's prediction (the jackknife perturbation the adaptive
// stop tests against), and `med` is the aggregate itself. For the median
// the even-count interpolation repeats median_complete's arithmetic
// operand for operand, so `med` at the final checkpoint is bit-identical
// to the emitted forecast bin.
struct BinBand {
  double lo = ts::kMissing;
  double med = ts::kMissing;
  double hi = ts::kMissing;
};

// Band of an ascending-sorted sample. For v of size n = 2h+1 the
// leave-one-out median ranges over [(v[h-1]+v[h])/2, (v[h]+v[h+1])/2];
// for n = 2h it ranges over [v[h-1], v[h]]. The checkpoints keep each
// per-bin forecast vector sorted incrementally (sort the new round's
// tail, one sequential merge pass), so reading the band is O(1) — the
// from-scratch per-checkpoint selection this replaces was cache-miss
// bound on big budgets. The even-count interpolation repeats
// median_complete's arithmetic operand for operand, so `med` stays
// bit-identical to the emitted forecast bin.
BinBand band_from_sorted(const std::vector<double>& v) {
  BinBand b;
  const std::size_t n = v.size();
  if (n == 0) return b;
  const std::size_t h = n / 2;
  if (n == 1) {
    b.lo = b.med = b.hi = v[0];
  } else if (n % 2 == 1) {
    b.med = v[h];
    b.lo = v[h - 1] * 0.5 + v[h] * 0.5;
    b.hi = v[h] * 0.5 + v[h + 1] * 0.5;
  } else {
    b.med = v[h - 1] * 0.5 + v[h] * 0.5;
    b.lo = v[h - 1];
    b.hi = v[h];
  }
  return b;
}

// Leave-one-out mean range: drop the max for the lowest mean, the min for
// the highest (ablation aggregation; same stopping rule applies).
BinBand band_mean(const std::vector<double>& v) {
  BinBand b;
  const std::size_t n = v.size();
  if (n == 0) return b;
  b.med = ts::mean(v);
  if (n == 1) {
    b.lo = b.hi = b.med;
    return b;
  }
  double sum = 0.0, mn = v[0], mx = v[0];
  for (double x : v) {
    sum += x;
    mn = std::min(mn, x);
    mx = std::max(mx, x);
  }
  b.lo = (sum - mx) / static_cast<double>(n - 1);
  b.hi = (sum - mn) / static_cast<double>(n - 1);
  return b;
}

// The downstream verdict evaluated on one forecast variant at a
// checkpoint: the same rank test + materiality floor assess() applies to
// the final aggregate.
struct VariantVerdict {
  RelativeChange relative = RelativeChange::kNoChange;
  double z = ts::kMissing;
  double abs_effect = 0.0;
  bool usable = false;  ///< >= 4 observed forecast-difference bins per side
};

RelativeChange relative_from(ts::Shift shift, bool material) {
  switch (shift) {
    case ts::Shift::kIncrease:
      return material ? RelativeChange::kIncrease : RelativeChange::kNoChange;
    case ts::Shift::kDecrease:
      return material ? RelativeChange::kDecrease : RelativeChange::kNoChange;
    case ts::Shift::kNone: break;
  }
  return RelativeChange::kNoChange;
}

}  // namespace

const char* to_string(StopReason r) noexcept {
  switch (r) {
    case StopReason::kStableVerdict: return "stable-verdict";
    case StopReason::kFitFailures: return "fit-failures";
    case StopReason::kBudgetExhausted: break;
  }
  return "budget-exhausted";
}

bool RobustSpatialRegression::forecast(const ElementWindows& w,
                                       Forecast& out) const {
  return forecast(w, out, 0.0);
}

bool RobustSpatialRegression::forecast(const ElementWindows& w, Forecast& out,
                                       double effect_floor_kpi_units) const {
  const std::size_t n_controls = w.control_before.size();
  if (n_controls == 0 || w.control_after.size() != n_controls) return false;
  if (w.study_before.observed_count() < 8 ||
      w.study_after.observed_count() < 4)
    return false;

  const ts::Matrix x_before = design_matrix(w.study_before, w.control_before);
  const ts::Matrix x_after = design_matrix(w.study_after, w.control_after);

  // k > N/2 (paper), bounded by the regression's degrees of freedom.
  const std::size_t majority = n_controls / 2 + 1;
  std::size_t k = std::max(
      majority, static_cast<std::size_t>(std::floor(
                    params_.sample_fraction * static_cast<double>(n_controls))));
  k = std::min(k, n_controls);
  const std::size_t max_regressors =
      w.study_before.observed_count() > 6
          ? w.study_before.observed_count() - 5
          : 0;
  k = std::min(k, max_regressors);
  if (k == 0) return false;

  const std::span<const double> y = w.study_before.values();
  // The O(m·N²) panel precompute only pays off when enough iterations
  // amortize it (GramPanel::worthwhile); below the crossover every
  // iteration just runs QR, exactly as with the fast path disabled. The
  // decision deliberately ignores cache state (a hit would make the build
  // free) so cached and uncached runs take identical code paths.
  const bool use_gram =
      params_.use_gram_fast_path &&
      ts::GramPanel::worthwhile(params_.n_iterations, k, x_before.cols());
  PanelCache::PanelPtr panel;
  ts::GramSystem gram;
  if (use_gram) {
    // Content-keyed: every study element regressing onto the same control
    // columns over the same bins — across a multi-element assessment, a
    // batch sweep, or monitor steps — shares one panel build.
    panel = PanelCache::current().get_or_build(
        fingerprint_design(x_before),
        [&] { return ts::GramPanel::build(x_before); });
    gram.bind(*panel, y, params_.with_intercept);
  }

  // Iterations run in counter-ordered rounds. Adaptive-off the schedule is
  // a single round covering the whole budget, which makes the loop below
  // structurally identical to the pre-adaptive code path; adaptive-on it
  // follows a geometric schedule (min_iterations, then ~1.5x per round:
  // 8, 12, 18, 27, ...) with a stability checkpoint between rounds.
  std::vector<std::size_t> round_ends;
  if (!params_.adaptive_sampling || params_.n_iterations == 0) {
    round_ends.push_back(params_.n_iterations);
  } else {
    round_ends.push_back(std::min(
        params_.n_iterations, std::max<std::size_t>(1, params_.min_iterations)));
    while (round_ends.back() < params_.n_iterations) {
      const std::size_t prev = round_ends.back();
      round_ends.push_back(
          std::min(params_.n_iterations, prev + (prev + 1) / 2));
    }
  }

  // Iterations are independent: each draws from its own counter-based
  // substream (base.fork(it) is a pure function of seed and iteration
  // index), so chunks can run on any thread and still produce exactly the
  // sequential per-iteration results. Accumulation is per chunk; chunks
  // are contiguous and ascending within a round and rounds are appended in
  // order, so the merge below reconstructs the sequential iteration order
  // bit-for-bit at any thread count. The stopping decision is evaluated on
  // that merged (scheduling-independent) state only.
  const ts::Rng base(params_.seed);
  struct ChunkAcc {
    std::vector<std::vector<double>> fc_before, fc_after;
    std::vector<double> r2s;
    std::size_t successes = 0;
    std::uint64_t iterations = 0, failures = 0, gram_fast = 0, qr_fallback = 0;
  };

  std::vector<std::vector<double>> fc_before(w.study_before.size());
  std::vector<std::vector<double>> fc_after(w.study_after.size());
  std::vector<double> r2s;
  std::size_t successes = 0;
  std::size_t attempted = 0;
  StopReason reason = StopReason::kBudgetExhausted;

  // Cross-checkpoint stability state (median-variant verdict seen at the
  // previous checkpoint, plus the current run of stable checkpoints).
  bool have_prev = false;
  RelativeChange prev_rel = RelativeChange::kNoChange;
  std::size_t streak = 0;
  const double z_crit = ts::normal_quantile(1.0 - params_.alpha / 2.0);
  // Checkpoint scratch, hoisted so repeated checkpoints reuse capacity:
  // the adaptive win is a handful of saved Gram-path iterations, cheap
  // enough that per-checkpoint allocation would eat it.
  std::vector<double> band_scratch;
  std::vector<BinBand> bands_before_buf, bands_after_buf;
  std::vector<double> diff_before_buf, diff_after_buf;
  // Length of each forecast bin's ascending-sorted prefix (everything up
  // to the previous checkpoint; the current round's appends form an
  // unsorted tail the next checkpoint merges in).
  std::vector<std::size_t> sorted_before_len(fc_before.size(), 0);
  std::vector<std::size_t> sorted_after_len(fc_after.size(), 0);
  std::vector<ChunkAcc> acc;  // reused across rounds, reset per chunk

  std::size_t round_begin = 0;
  for (std::size_t round = 0; round < round_ends.size(); ++round) {
  const std::size_t round_len = round_ends[round] - round_begin;
  const std::size_t n_chunks = par::plan_chunks(round_len);
  if (acc.size() < n_chunks) acc.resize(n_chunks);

  par::parallel_chunks(
      round_len, n_chunks,
      [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        ChunkAcc& a = acc[chunk];
        a.fc_before.resize(w.study_before.size());
        a.fc_after.resize(w.study_after.size());
        for (auto& v : a.fc_before) v.clear();
        for (auto& v : a.fc_after) v.clear();
        a.r2s.clear();
        a.successes = 0;
        a.iterations = a.failures = a.gram_fast = a.qr_fallback = 0;
        // Per-thread reusable scratch: the steady-state iteration performs
        // no heap allocation on the Gram path.
        par::Workspace& ws = par::this_thread_workspace();
        std::vector<std::size_t>& pool = ws.indices(0);
        std::vector<std::size_t>& cols = ws.indices(1);
        std::vector<double>& pred = ws.doubles(0);
        static thread_local ts::GramScratch scratch;

        for (std::size_t local = begin; local < end; ++local) {
          const std::size_t it = round_begin + local;
          ts::Rng rng = base.fork(it);
          {
            obs::ScopedSpan span("sampling");
            ts::sample_without_replacement(rng, n_controls, k, pool, cols);
          }
          ts::LinearModel model;
          bool fast = false;
          {
            obs::ScopedSpan span("fit");
            if (gram.ok() && gram.subset_matches_panel(cols))
              fast = gram.solve_subset(cols, scratch, model);
            if (!fast)
              model = ts::fit_ols(x_before.select_columns(cols), y,
                                  params_.with_intercept);
          }
          ++a.iterations;
          if (use_gram) {
            if (fast)
              ++a.gram_fast;
            else
              ++a.qr_fallback;
          }
          if (obs::enabled() && model.ok) {
            auto& reg = obs::Registry::global();
            reg.histogram("litmus.fit.r_squared").record(model.r_squared);
            reg.histogram("litmus.fit.residual_stddev")
                .record(model.residual_stddev);
            reg.gauge("litmus.fit.condition_number").set(model.condition);
          }
          if (!model.ok) {
            ++a.failures;
            continue;
          }
          ++a.successes;
          a.r2s.push_back(model.r_squared);

          obs::ScopedSpan span("forecast");
          model.predict_columns_into(x_before, cols, pred);
          for (std::size_t r = 0; r < pred.size(); ++r)
            if (!ts::is_missing(pred[r])) a.fc_before[r].push_back(pred[r]);
          model.predict_columns_into(x_after, cols, pred);
          for (std::size_t r = 0; r < pred.size(); ++r)
            if (!ts::is_missing(pred[r])) a.fc_after[r].push_back(pred[r]);
        }
        if (obs::enabled()) {
          auto& reg = obs::Registry::global();
          reg.counter("litmus.iterations").add(a.iterations);
          if (a.failures > 0) reg.counter("litmus.fit.failures").add(a.failures);
          if (a.gram_fast > 0) reg.counter("litmus.fit.gram").add(a.gram_fast);
          if (a.qr_fallback > 0)
            reg.counter("litmus.fit.qr_fallback").add(a.qr_fallback);
          reg.counter("litmus.worker." +
                      std::to_string(obs::thread_index()) + ".iterations")
              .add(a.iterations);
        }
        // Chunk-granular events (never per iteration): failed fits and
        // Gram->QR fallbacks are the anomalies an auditor greps for.
        if (auto* ev = obs::events()) {
          if (a.failures > 0)
            ev->emit(obs::EventType::kIterationRetry,
                     [&](obs::JsonWriter& w2) {
                       w2.member("stage", "fit")
                           .member("failed", a.failures)
                           .member("of", a.iterations);
                     });
          if (a.qr_fallback > 0)
            ev->emit(obs::EventType::kFallbackQr, [&](obs::JsonWriter& w2) {
              w2.member("fallbacks", a.qr_fallback)
                  .member("of", a.iterations);
            });
        }
      });

  // Merge per-chunk accumulators in chunk (== iteration) order, appending
  // after the previous rounds' results. Only this round's chunks: `acc`
  // may still hold a longer earlier round's tail.
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const ChunkAcc& a = acc[c];
    successes += a.successes;
    r2s.insert(r2s.end(), a.r2s.begin(), a.r2s.end());
    for (std::size_t r = 0; r < fc_before.size(); ++r)
      fc_before[r].insert(fc_before[r].end(), a.fc_before[r].begin(),
                          a.fc_before[r].end());
    for (std::size_t r = 0; r < fc_after.size(); ++r)
      fc_after[r].insert(fc_after[r].end(), a.fc_after[r].begin(),
                         a.fc_after[r].end());
  }
  attempted = round_ends[round];
  round_begin = round_ends[round];
  if (round + 1 == round_ends.size()) break;  // budget exhausted

  // --- Adaptive stability checkpoint (reached only with more rounds
  // pending, i.e. never adaptive-off). Evaluates the full downstream
  // verdict — rank test plus materiality floor — on three forecast
  // variants: the current aggregate and the two adversarial jackknife
  // extremes (every before-bin pushed one way, every after-bin the
  // other). Stable means all three agree decisively and match the
  // previous checkpoint; `stability_rounds` consecutive stable
  // checkpoints end the loop.
  if (successes == 0) {
    have_prev = false;
    streak = 0;
    continue;
  }
  {
    obs::ScopedSpan span("adaptive-check");
    const bool use_median_agg =
        params_.aggregation == ForecastAggregation::kMedian;
    auto bands_into = [&](std::vector<std::vector<double>>& bins,
                          std::vector<std::size_t>& sorted_len,
                          std::vector<BinBand>& bands) {
      bands.assign(bins.size(), BinBand{});
      for (std::size_t r = 0; r < bins.size(); ++r) {
        std::vector<double>& v = bins[r];
        if (v.empty()) continue;
        if (use_median_agg) {
          // Keeping the bin ascending is safe: the multiset is unchanged,
          // and the final aggregation's selection median is a pure
          // function of the multiset.
          const std::size_t m = sorted_len[r];
          if (m < v.size()) {
            std::sort(v.begin() + m, v.end());
            if (m > 0) {
              band_scratch.resize(v.size());
              std::merge(v.begin(), v.begin() + m, v.begin() + m, v.end(),
                         band_scratch.begin());
              v.swap(band_scratch);
            }
            sorted_len[r] = v.size();
          }
          bands[r] = band_from_sorted(v);
        } else {
          bands[r] = band_mean(v);
        }
      }
    };
    bands_into(fc_before, sorted_before_len, bands_before_buf);
    bands_into(fc_after, sorted_after_len, bands_after_buf);

    // diff = study - forecast, so pairing a *low* before-forecast with a
    // *high* after-forecast yields the minimal apparent shift and the
    // opposite pairing the maximal one — the two extremes that bracket
    // the verdict's sensitivity to dropping any single iteration. The
    // diffs are built straight into flat buffers (a bin is observed when
    // both the study value and the forecast band exist — exactly minus()'s
    // missing rule, without materializing the intermediate series).
    auto eval_variant = [&](double BinBand::*pick_before,
                            double BinBand::*pick_after) {
      VariantVerdict v;
      diff_before_buf.assign(w.study_before.size(), ts::kMissing);
      std::size_t observed_before = 0;
      for (std::size_t r = 0; r < bands_before_buf.size(); ++r) {
        if (ts::is_missing(bands_before_buf[r].med) ||
            ts::is_missing(w.study_before[r]))
          continue;
        diff_before_buf[r] = w.study_before[r] - bands_before_buf[r].*pick_before;
        ++observed_before;
      }
      diff_after_buf.assign(w.study_after.size(), ts::kMissing);
      std::size_t observed_after = 0;
      for (std::size_t r = 0; r < bands_after_buf.size(); ++r) {
        if (ts::is_missing(bands_after_buf[r].med) ||
            ts::is_missing(w.study_after[r]))
          continue;
        diff_after_buf[r] = w.study_after[r] - bands_after_buf[r].*pick_after;
        ++observed_after;
      }
      if (observed_before < 4 || observed_after < 4) return v;
      const ts::TestResult t =
          params_.test == ComparisonTest::kRobustRankOrder
              ? ts::robust_rank_order(diff_after_buf, diff_before_buf,
                                      params_.alpha)
              : ts::wilcoxon_mann_whitney(diff_after_buf, diff_before_buf,
                                          params_.alpha);
      v.z = t.statistic;
      v.abs_effect =
          std::fabs(ts::median(diff_after_buf) - ts::median(diff_before_buf));
      v.relative = relative_from(
          t.shift, v.abs_effect >= effect_floor_kpi_units);
      v.usable = true;
      return v;
    };
    const std::array<VariantVerdict, 3> variants = {
        eval_variant(&BinBand::med, &BinBand::med),
        eval_variant(&BinBand::lo, &BinBand::hi),   // minimal apparent shift
        eval_variant(&BinBand::hi, &BinBand::lo)};  // maximal apparent shift
    // The rank-order z is not the stability currency — near separation it
    // explodes (30 -> 47 from dropping one iteration) while the decision
    // is maximally settled, and for quiet nulls it wobbles by ~0.5 at any
    // small sample. What must be insensitive to the jackknife is the
    // *decision*: every variant agrees on the verdict AND clears both
    // thresholds (significance and materiality) with margin, jointly in
    // one regime. A z near the critical value or an effect near the floor
    // is borderline and keeps sampling until the budget runs out.
    bool stable = variants[0].usable && variants[1].usable &&
                  variants[2].usable &&
                  variants[1].relative == variants[0].relative &&
                  variants[2].relative == variants[0].relative;
    if (stable) {
      double min_absz = std::numeric_limits<double>::infinity();
      double max_absz = 0.0;
      double min_eff = std::numeric_limits<double>::infinity();
      double max_eff = 0.0;
      for (const VariantVerdict& v : variants) {
        if (ts::is_missing(v.z)) {
          stable = false;
          break;
        }
        min_absz = std::min(min_absz, std::fabs(v.z));
        max_absz = std::max(max_absz, std::fabs(v.z));
        min_eff = std::min(min_eff, v.abs_effect);
        max_eff = std::max(max_eff, v.abs_effect);
      }
      if (stable) {
        const bool decisively_null =
            max_absz <= z_crit - params_.stability_z_margin;
        const bool decisively_immaterial =
            effect_floor_kpi_units > 0.0 &&
            max_eff <= effect_floor_kpi_units * 0.9;
        const bool decisively_shifted =
            min_absz >= z_crit + params_.stability_z_margin &&
            (effect_floor_kpi_units <= 0.0 ||
             min_eff >= effect_floor_kpi_units * 1.1);
        stable = decisively_null || decisively_immaterial || decisively_shifted;
      }
    }
    // A stable checkpoint only extends the streak when the previous
    // checkpoint reached the same verdict; a verdict that moved between
    // checkpoints restarts the count even if each end looked decisive.
    const bool consistent = !have_prev || variants[0].relative == prev_rel;
    streak = stable ? (consistent ? streak + 1 : 1) : 0;
    have_prev = variants[0].usable;
    prev_rel = variants[0].relative;
  }
  if (streak >= params_.stability_rounds) {
    reason = StopReason::kStableVerdict;
    break;
  }
  }  // round loop

  out.iterations_attempted = attempted;
  if (successes == 0) reason = StopReason::kFitFailures;
  out.stop_reason = reason;

  if (params_.adaptive_sampling && obs::enabled()) {
    auto& reg = obs::Registry::global();
    reg.histogram("litmus.adaptive.iterations_used")
        .record(static_cast<double>(attempted));
    if (reason == StopReason::kStableVerdict) {
      reg.counter("litmus.adaptive.stopped_early").add();
      reg.counter("litmus.adaptive.iterations_saved")
          .add(params_.n_iterations - attempted);
    }
  }
  if (reason == StopReason::kStableVerdict) {
    if (auto* ev = obs::events())
      ev->emit(obs::EventType::kAdaptiveStop, [&](obs::JsonWriter& w2) {
        w2.member("used", static_cast<std::uint64_t>(attempted))
            .member("budget",
                    static_cast<std::uint64_t>(params_.n_iterations));
      });
  }
  if (successes == 0) return false;

  out.effective_k = k;
  out.successful_iterations = successes;
  out.median_r_squared = ts::median(r2s);

  const bool use_median =
      params_.aggregation == ForecastAggregation::kMedian;
  // fc vectors hold only non-missing predictions (filtered at push), so
  // the selection-based median applies; it may permute its input, which
  // is fine — the per-bin vectors are dead after aggregation.
  auto aggregate = [use_median](std::vector<double>& v) {
    return use_median ? median_complete(v) : ts::mean(v);
  };

  out.median_forecast_before =
      ts::TimeSeries(w.study_before.start_bin(), w.study_before.size(),
                     w.study_before.bin_minutes());
  for (std::size_t r = 0; r < fc_before.size(); ++r)
    if (!fc_before[r].empty())
      out.median_forecast_before[r] = aggregate(fc_before[r]);

  out.median_forecast_after =
      ts::TimeSeries(w.study_after.start_bin(), w.study_after.size(),
                     w.study_after.bin_minutes());
  for (std::size_t r = 0; r < fc_after.size(); ++r)
    if (!fc_after[r].empty())
      out.median_forecast_after[r] = aggregate(fc_after[r]);

  out.forecast_diff_before =
      w.study_before.minus(out.median_forecast_before);
  out.forecast_diff_after = w.study_after.minus(out.median_forecast_after);
  return true;
}

AnalysisOutcome RobustSpatialRegression::assess(const ElementWindows& w,
                                                kpi::KpiId kpi) const {
  AnalysisOutcome out;
  out.explanation.analyzer = name().data();
  out.explanation.aggregation =
      params_.aggregation == ForecastAggregation::kMedian ? "median" : "mean";
  out.explanation.test = params_.test == ComparisonTest::kRobustRankOrder
                             ? "robust_rank_order"
                             : "wilcoxon_mann_whitney";
  out.explanation.n_controls = w.control_before.size();
  out.explanation.iterations_requested = params_.n_iterations;
  out.explanation.alpha = params_.alpha;
  out.explanation.adaptive_sampling = params_.adaptive_sampling;

  // The materiality floor feeds the adaptive stability check, so it is
  // resolved before the sampling loop runs.
  const double floor_kpi =
      params_.min_effect_sigma * kpi::info(kpi).typical_noise;

  Forecast fc;
  const bool ok = forecast(w, fc, floor_kpi);
  out.explanation.iterations_used = fc.iterations_attempted;
  if (fc.iterations_attempted > 0)
    out.explanation.stop_reason = to_string(fc.stop_reason);
  if (!ok) {
    out.degenerate = true;
    out.explanation.note =
        "no usable forecast: empty/mismatched control group, too few "
        "observed study bins, or every sampling iteration failed to fit";
    return out;
  }
  out.explanation.effective_k = fc.effective_k;
  out.explanation.successful_iterations = fc.successful_iterations;
  if (fc.forecast_diff_before.observed_count() < 4 ||
      fc.forecast_diff_after.observed_count() < 4) {
    out.degenerate = true;
    out.explanation.note =
        "fewer than 4 observed forecast-difference bins on one side";
    return out;
  }

  ts::TestResult t;
  {
    obs::ScopedSpan span("rank-test");
    t = params_.test == ComparisonTest::kRobustRankOrder
            ? ts::robust_rank_order(fc.forecast_diff_after.values(),
                                    fc.forecast_diff_before.values(),
                                    params_.alpha)
            : ts::wilcoxon_mann_whitney(fc.forecast_diff_after.values(),
                                        fc.forecast_diff_before.values(),
                                        params_.alpha);
  }
  out.p_value = t.p_value;
  out.statistic = t.statistic;
  out.fit_r_squared = fc.median_r_squared;
  out.effect_kpi_units =
      ts::median(fc.forecast_diff_after) - ts::median(fc.forecast_diff_before);
  const bool material = std::fabs(out.effect_kpi_units) >= floor_kpi;
  out.explanation.n_after = t.n_x;
  out.explanation.n_before = t.n_y;
  out.explanation.effect_floor_kpi_units = floor_kpi;
  out.explanation.material = material;
  out.relative = relative_from(t.shift, material);
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
