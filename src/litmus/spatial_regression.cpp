#include "litmus/spatial_regression.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tsmath/linreg.h"
#include "tsmath/matrix.h"
#include "tsmath/random.h"
#include "tsmath/rank_tests.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

// Packs aligned control windows into a design matrix over the study
// window's absolute bin range. Bins a control lacks become NaN rows (the
// OLS drops them; forecasts there are missing).
ts::Matrix design_matrix(const ts::TimeSeries& study,
                         std::span<const ts::TimeSeries> controls) {
  ts::Matrix x(study.size(), controls.size());
  for (std::size_t c = 0; c < controls.size(); ++c) {
    for (std::size_t r = 0; r < study.size(); ++r) {
      const std::int64_t bin =
          study.start_bin() + static_cast<std::int64_t>(r);
      x(r, c) = controls[c].at_bin(bin);
    }
  }
  return x;
}

}  // namespace

bool RobustSpatialRegression::forecast(const ElementWindows& w,
                                       Forecast& out) const {
  const std::size_t n_controls = w.control_before.size();
  if (n_controls == 0 || w.control_after.size() != n_controls) return false;
  if (w.study_before.observed_count() < 8 ||
      w.study_after.observed_count() < 4)
    return false;

  const ts::Matrix x_before = design_matrix(w.study_before, w.control_before);
  const ts::Matrix x_after = design_matrix(w.study_after, w.control_after);

  // k > N/2 (paper), bounded by the regression's degrees of freedom.
  const std::size_t majority = n_controls / 2 + 1;
  std::size_t k = std::max(
      majority, static_cast<std::size_t>(std::floor(
                    params_.sample_fraction * static_cast<double>(n_controls))));
  k = std::min(k, n_controls);
  const std::size_t max_regressors =
      w.study_before.observed_count() > 6
          ? w.study_before.observed_count() - 5
          : 0;
  k = std::min(k, max_regressors);
  if (k == 0) return false;

  // Per-bin forecast collections across iterations.
  std::vector<std::vector<double>> fc_before(w.study_before.size());
  std::vector<std::vector<double>> fc_after(w.study_after.size());
  std::vector<double> r2s;

  ts::Rng rng(params_.seed);
  std::size_t successes = 0;
  for (std::size_t it = 0; it < params_.n_iterations; ++it) {
    std::vector<std::size_t> cols;
    {
      obs::ScopedSpan span("sampling");
      cols = ts::sample_without_replacement(rng, n_controls, k);
    }
    ts::Matrix xb;
    ts::LinearModel model;
    {
      obs::ScopedSpan span("fit");
      xb = x_before.select_columns(cols);
      model = ts::fit_ols(xb, w.study_before.values(), params_.with_intercept);
    }
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      reg.counter("litmus.iterations").add();
      if (model.ok) {
        reg.histogram("litmus.fit.r_squared").record(model.r_squared);
        reg.histogram("litmus.fit.residual_stddev")
            .record(model.residual_stddev);
        reg.gauge("litmus.fit.condition_number").set(model.condition);
      } else {
        reg.counter("litmus.fit.failures").add();
      }
    }
    if (!model.ok) continue;
    ++successes;
    r2s.push_back(model.r_squared);

    obs::ScopedSpan span("forecast");
    const std::vector<double> pred_b = model.predict(xb);
    const ts::Matrix xa = x_after.select_columns(cols);
    const std::vector<double> pred_a = model.predict(xa);
    for (std::size_t r = 0; r < pred_b.size(); ++r)
      if (!ts::is_missing(pred_b[r])) fc_before[r].push_back(pred_b[r]);
    for (std::size_t r = 0; r < pred_a.size(); ++r)
      if (!ts::is_missing(pred_a[r])) fc_after[r].push_back(pred_a[r]);
  }
  if (successes == 0) return false;

  out.effective_k = k;
  out.successful_iterations = successes;
  out.median_r_squared = ts::median(r2s);

  const bool use_median =
      params_.aggregation == ForecastAggregation::kMedian;
  auto aggregate = [use_median](const std::vector<double>& v) {
    return use_median ? ts::median(v) : ts::mean(v);
  };

  out.median_forecast_before =
      ts::TimeSeries(w.study_before.start_bin(), w.study_before.size(),
                     w.study_before.bin_minutes());
  for (std::size_t r = 0; r < fc_before.size(); ++r)
    if (!fc_before[r].empty())
      out.median_forecast_before[r] = aggregate(fc_before[r]);

  out.median_forecast_after =
      ts::TimeSeries(w.study_after.start_bin(), w.study_after.size(),
                     w.study_after.bin_minutes());
  for (std::size_t r = 0; r < fc_after.size(); ++r)
    if (!fc_after[r].empty())
      out.median_forecast_after[r] = aggregate(fc_after[r]);

  out.forecast_diff_before =
      w.study_before.minus(out.median_forecast_before);
  out.forecast_diff_after = w.study_after.minus(out.median_forecast_after);
  return true;
}

AnalysisOutcome RobustSpatialRegression::assess(const ElementWindows& w,
                                                kpi::KpiId kpi) const {
  AnalysisOutcome out;
  out.explanation.analyzer = name().data();
  out.explanation.aggregation =
      params_.aggregation == ForecastAggregation::kMedian ? "median" : "mean";
  out.explanation.test = params_.test == ComparisonTest::kRobustRankOrder
                             ? "robust_rank_order"
                             : "wilcoxon_mann_whitney";
  out.explanation.n_controls = w.control_before.size();
  out.explanation.iterations_requested = params_.n_iterations;
  out.explanation.alpha = params_.alpha;

  Forecast fc;
  if (!forecast(w, fc)) {
    out.degenerate = true;
    out.explanation.note =
        "no usable forecast: empty/mismatched control group, too few "
        "observed study bins, or every sampling iteration failed to fit";
    return out;
  }
  out.explanation.effective_k = fc.effective_k;
  out.explanation.successful_iterations = fc.successful_iterations;
  if (fc.forecast_diff_before.observed_count() < 4 ||
      fc.forecast_diff_after.observed_count() < 4) {
    out.degenerate = true;
    out.explanation.note =
        "fewer than 4 observed forecast-difference bins on one side";
    return out;
  }

  ts::TestResult t;
  {
    obs::ScopedSpan span("rank-test");
    t = params_.test == ComparisonTest::kRobustRankOrder
            ? ts::robust_rank_order(fc.forecast_diff_after.values(),
                                    fc.forecast_diff_before.values(),
                                    params_.alpha)
            : ts::wilcoxon_mann_whitney(fc.forecast_diff_after.values(),
                                        fc.forecast_diff_before.values(),
                                        params_.alpha);
  }
  out.p_value = t.p_value;
  out.statistic = t.statistic;
  out.fit_r_squared = fc.median_r_squared;
  out.effect_kpi_units =
      ts::median(fc.forecast_diff_after) - ts::median(fc.forecast_diff_before);
  const double floor_kpi =
      params_.min_effect_sigma * kpi::info(kpi).typical_noise;
  const bool material = std::fabs(out.effect_kpi_units) >= floor_kpi;
  out.explanation.n_after = t.n_x;
  out.explanation.n_before = t.n_y;
  out.explanation.effect_floor_kpi_units = floor_kpi;
  out.explanation.material = material;
  switch (t.shift) {
    case ts::Shift::kNone: out.relative = RelativeChange::kNoChange; break;
    case ts::Shift::kIncrease:
      out.relative =
          material ? RelativeChange::kIncrease : RelativeChange::kNoChange;
      break;
    case ts::Shift::kDecrease:
      out.relative =
          material ? RelativeChange::kDecrease : RelativeChange::kNoChange;
      break;
  }
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
