// Baseline 2: Difference in Differences (paper Section 3.2, equation (1);
// Meyer '95, Shadish et al. '02).
//
// For study element j and control element i:
//   d(i,j) = [h(Y_a(j)) - h(Y_b(j))] - [h(X_a(i)) - h(X_b(i))]
// with h = mean or median. The per-control measures are aggregated (mean,
// matching econometric practice) and tested against the noise floor
// estimated from the windows. The known weakness the paper exploits: a
// *mean* aggregate over controls is not robust, so performance changes in a
// small set of control elements bias the estimate (Abadie '05).
#pragma once

#include "litmus/analysis.h"

namespace litmus::core {

enum class CentralMeasure : std::uint8_t { kMean, kMedian };

struct DiDParams {
  CentralMeasure h = CentralMeasure::kMean;  ///< h(.) in equation (1)
  /// Aggregation of d(i,j) across controls; mean is the classical choice
  /// and the one the paper critiques. kMedian is provided for the ablation.
  CentralMeasure aggregate = CentralMeasure::kMean;
  /// Decision rule: "if there is no change in the relative performance ...
  /// the DiD measure should be near zero". Impact is declared when the
  /// aggregated measure exceeds this multiple of the KPI's per-bin noise
  /// scale. A z statistic (AR(1)-corrected) is reported for diagnostics.
  double threshold_sigma = 0.4;
};

class DiDAnalyzer final : public ChangeAnalyzer {
 public:
  explicit DiDAnalyzer(DiDParams params = {}) : params_(params) {}

  AnalysisOutcome assess(const ElementWindows& windows,
                         kpi::KpiId kpi) const override;
  std::string_view name() const noexcept override {
    return "difference_in_differences";
  }

  /// The raw d(i,j) values, one per control element (exposed for tests and
  /// the ablation bench).
  std::vector<double> pairwise_did(const ElementWindows& windows) const;

 private:
  DiDParams params_;
};

}  // namespace litmus::core
