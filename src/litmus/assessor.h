// Top-level Litmus façade: the API an operations workflow calls.
//
// Given a topology, a KPI data source, and a change (study elements +
// effect time), the Assessor selects/accepts a control group, runs the
// robust spatial regression per study element, votes across elements, and
// produces the go / no-go input the paper describes for First Field
// Application rollout decisions.
#pragma once

#include <functional>
#include <string>

#include "litmus/control_selection.h"
#include "litmus/spatial_regression.h"
#include "litmus/voting.h"

namespace litmus::core {

/// KPI series source: returns the series for (element, kpi) over
/// [start, start + n) hourly bins. Backed by the simulator in this
/// repository; by production feeds in deployment.
using SeriesProvider = std::function<ts::TimeSeries(
    net::ElementId element, kpi::KpiId kpi, std::int64_t start,
    std::size_t n)>;

struct AssessmentConfig {
  /// Comparison windows around the change ("a longer time-scale, e.g. 1-2
  /// weeks, is typically selected", Section 2.4).
  std::size_t before_bins = 14 * 24;
  std::size_t after_bins = 14 * 24;
  /// Guard bins skipped right after the change (change execution window).
  std::size_t guard_bins = 0;
  SpatialRegressionParams regression;
};

struct ElementAssessment {
  net::ElementId element;
  AnalysisOutcome outcome;
};

struct ChangeAssessment {
  kpi::KpiId kpi;
  std::int64_t change_bin = 0;
  std::vector<net::ElementId> study_group;
  std::vector<net::ElementId> control_group;
  std::vector<ElementAssessment> per_element;
  VoteSummary summary;
};

/// The FFA "go or no-go" input (paper Sections 1, 2.4): go when the change
/// shows the expected improvements — or at least no degradation — at every
/// study location.
struct FfaDecision {
  bool go = false;
  std::vector<ChangeAssessment> per_kpi;
  std::string rationale;
};

class Assessor {
 public:
  Assessor(const net::Topology& topo, SeriesProvider provider,
           AssessmentConfig config = {});

  /// Assesses one KPI with an explicit control group. Windows are fetched
  /// from the provider on the calling thread; the per-element regressions
  /// then fan out across the parallel pool (results are deterministic at
  /// any thread count).
  ChangeAssessment assess(std::span<const net::ElementId> study,
                          std::span<const net::ElementId> control,
                          kpi::KpiId kpi, std::int64_t change_bin) const;

  /// As assess(), over pre-fetched windows (windows[i] belongs to
  /// study[i]). Never touches the SeriesProvider, so callers that batch
  /// window fetching may invoke this concurrently from worker threads.
  ChangeAssessment assess_windows(std::span<const net::ElementId> study,
                                  std::span<const net::ElementId> control,
                                  std::span<const ElementWindows> windows,
                                  kpi::KpiId kpi,
                                  std::int64_t change_bin) const;

  /// Assesses one KPI, selecting the control group with `predicate`.
  ChangeAssessment assess_with_selection(
      std::span<const net::ElementId> study,
      const ControlPredicate& predicate, kpi::KpiId kpi,
      std::int64_t change_bin, const SelectionPolicy& policy = {}) const;

  /// Multi-KPI go / no-go: go iff no KPI's vote is a degradation and no
  /// study element shows a significant degradation on any KPI.
  FfaDecision ffa_decision(std::span<const net::ElementId> study,
                           std::span<const net::ElementId> control,
                           std::span<const kpi::KpiId> kpis,
                           std::int64_t change_bin) const;

  /// Builds the analyzer windows for one study element (exposed so benches
  /// and baseline analyzers can reuse exactly the same data path).
  ElementWindows windows_for(net::ElementId study,
                             std::span<const net::ElementId> control,
                             kpi::KpiId kpi, std::int64_t change_bin) const;

  const AssessmentConfig& config() const noexcept { return config_; }

 private:
  const net::Topology* topo_;
  SeriesProvider provider_;
  AssessmentConfig config_;
  RobustSpatialRegression algorithm_;
};

}  // namespace litmus::core
