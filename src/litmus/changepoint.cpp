#include "litmus/changepoint.h"

#include <cmath>
#include <vector>

#include "tsmath/ranks.h"
#include "tsmath/seasonal.h"
#include "tsmath/stats.h"

namespace litmus::core {

ChangePoint locate_level_shift(const ts::TimeSeries& series,
                               std::size_t min_segment, double min_score) {
  ChangePoint cp;

  // Observed values with their bins.
  std::vector<double> values;
  std::vector<std::int64_t> bins;
  for (std::int64_t b = series.start_bin(); b < series.end_bin(); ++b) {
    const double v = series.at_bin(b);
    if (ts::is_missing(v)) continue;
    values.push_back(v);
    bins.push_back(b);
  }
  const std::size_t n = values.size();
  if (n < 2 * min_segment) return cp;

  // Rank CUSUM: S_k = sum_{t<=k} (r_t - mean_rank). For a level shift at k*
  // the walk peaks at k*; the normalizer makes the peak scale-free.
  const std::vector<double> ranks = ts::midranks(values);
  const double mean_rank = (static_cast<double>(n) + 1.0) / 2.0;
  double s = 0.0;
  double best = 0.0;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    s += ranks[k] - mean_rank;
    if (k + 1 < min_segment || n - (k + 1) < min_segment) continue;
    if (std::fabs(s) > best) {
      best = std::fabs(s);
      best_k = k;
    }
  }
  if (best == 0.0) return cp;

  // Maximum possible |S| for n ranks is ~n^2/8 (half the ranks low then
  // half high); normalize against it.
  const double max_possible =
      static_cast<double>(n) * static_cast<double>(n) / 8.0;
  cp.score = std::min(1.0, best / max_possible);
  if (cp.score < min_score) return cp;

  cp.found = true;
  cp.bin = bins[best_k + 1];
  const std::span<const double> all(values);
  cp.shift = ts::median(all.subspan(best_k + 1)) -
             ts::median(all.subspan(0, best_k + 1));
  return cp;
}

const char* to_string(ShiftShape s) noexcept {
  switch (s) {
    case ShiftShape::kLevel: return "level";
    case ShiftShape::kRamp: return "ramp";
  }
  return "?";
}

ShiftShape classify_shift(const ts::TimeSeries& series,
                          const ChangePoint& cp) {
  if (!cp.found || ts::is_missing(cp.shift) || cp.shift == 0.0)
    return ShiftShape::kLevel;
  const ts::TimeSeries after = series.slice_bins(cp.bin, series.end_bin());
  if (after.observed_count() < 8) return ShiftShape::kLevel;
  const double slope = ts::theil_sen_slope(after.values());
  if (ts::is_missing(slope)) return ShiftShape::kLevel;
  // A step settles immediately: the post-onset drift over the remaining
  // window is small next to the shift itself. A ramp keeps moving — its
  // within-segment drift is comparable to (or exceeds) the median shift.
  const double drift =
      slope * static_cast<double>(after.size());
  return std::fabs(drift) >= 0.75 * std::fabs(cp.shift) &&
                 (drift > 0) == (cp.shift > 0)
             ? ShiftShape::kRamp
             : ShiftShape::kLevel;
}

ChangePoint locate_relative_change(
    const RobustSpatialRegression::Forecast& fc, std::size_t min_segment,
    double min_score) {
  const auto& before = fc.forecast_diff_before;
  const auto& after = fc.forecast_diff_after;
  if (before.empty() && after.empty()) return {};

  const std::int64_t start = before.empty() ? after.start_bin()
                                            : before.start_bin();
  const std::int64_t end = after.empty() ? before.end_bin() : after.end_bin();
  ts::TimeSeries joined(start, static_cast<std::size_t>(end - start),
                        before.empty() ? after.bin_minutes()
                                       : before.bin_minutes());
  for (std::int64_t b = before.start_bin(); b < before.end_bin(); ++b)
    joined.set_bin(b, before.at_bin(b));
  for (std::int64_t b = after.start_bin(); b < after.end_bin(); ++b)
    joined.set_bin(b, after.at_bin(b));
  return locate_level_shift(joined, min_segment, min_score);
}

}  // namespace litmus::core
