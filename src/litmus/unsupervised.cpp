#include "litmus/unsupervised.h"

#include <cmath>

#include "tsmath/pca.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

// Packs study (column 0) + controls into a row-per-bin matrix over the
// given window.
ts::Matrix pack(const ts::TimeSeries& study,
                std::span<const ts::TimeSeries> controls) {
  ts::Matrix m(study.size(), 1 + controls.size());
  m.set_column(0, study.values());
  for (std::size_t c = 0; c < controls.size(); ++c) {
    for (std::size_t r = 0; r < study.size(); ++r) {
      const std::int64_t bin = study.start_bin() + static_cast<std::int64_t>(r);
      m(r, 1 + c) = controls[c].at_bin(bin);
    }
  }
  return m;
}

// Mean squared residual of column `coord` (the study element) across the
// rows of `m` under `model`; missing when no complete rows exist. Network-
// wide subspace detectors attribute an anomaly to the element whose
// residual coordinate carries the energy, so the per-element score is the
// squared residual in that coordinate.
double mean_residual_energy(const ts::Matrix& m, const ts::PcaModel& model,
                            std::size_t coord) {
  double sum = 0;
  std::size_t n = 0;
  std::vector<double> row(m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] = m(r, c);
    const std::vector<double> res = model.residual(row);
    if (ts::is_missing(res[coord])) continue;
    sum += res[coord] * res[coord];
    ++n;
  }
  return n == 0 ? ts::kMissing : sum / static_cast<double>(n);
}

}  // namespace

AnalysisOutcome PcaBaselineAnalyzer::assess(const ElementWindows& w,
                                            kpi::KpiId kpi) const {
  AnalysisOutcome out;
  if (w.control_before.empty() ||
      w.control_before.size() != w.control_after.size() ||
      w.study_before.observed_count() < 8 ||
      w.study_after.observed_count() < 8) {
    out.degenerate = true;
    return out;
  }

  const ts::Matrix before = pack(w.study_before, w.control_before);
  const ts::Matrix after = pack(w.study_after, w.control_after);
  const ts::PcaModel model = ts::fit_pca(before, params_.n_components);
  if (!model.ok) {
    out.degenerate = true;
    return out;
  }

  const double energy_before = mean_residual_energy(before, model, 0);
  const double energy_after = mean_residual_energy(after, model, 0);
  if (ts::is_missing(energy_before) || ts::is_missing(energy_after) ||
      energy_before <= 0.0) {
    out.degenerate = true;
    return out;
  }

  const double ratio = energy_after / energy_before;
  out.statistic = ratio;
  out.p_value = ts::kMissing;  // the detector is threshold-based
  // Absolute study shift — the only direction proxy the detector has.
  out.effect_kpi_units =
      ts::median(w.study_after) - ts::median(w.study_before);

  if (ratio >= params_.energy_ratio_threshold) {
    out.relative = out.effect_kpi_units >= 0 ? RelativeChange::kIncrease
                                             : RelativeChange::kDecrease;
  }
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
