#include "litmus/scheduler.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "simkit/clock.h"
#include "simkit/seasonality.h"

namespace litmus::core {

ChangeScheduler::ChangeScheduler(net::Region region,
                                 std::vector<sim::HolidayWindow> holidays,
                                 const net::Topology* topo,
                                 const chg::ChangeLog* planned,
                                 SchedulerConfig config)
    : region_(region),
      holidays_(std::move(holidays)),
      topo_(topo),
      planned_(planned),
      config_(config) {}

WindowScore ChangeScheduler::score_candidate(net::ElementId study,
                                             std::int64_t change_bin) const {
  WindowScore s;
  s.change_bin = change_bin;
  const std::int64_t from =
      change_bin - static_cast<std::int64_t>(config_.before_bins);
  const std::int64_t to =
      change_bin + static_cast<std::int64_t>(config_.after_bins);

  // Foliage drift: canopy change between window start and end. Max over
  // intermediate days catches windows straddling a ramp peak.
  if (net::has_foliage_seasonality(region_)) {
    double lo = 1.0, hi = 0.0;
    for (std::int64_t b = from; b < to; b += sim::kHoursPerDay) {
      const double leaf =
          sim::FoliageFactor::leaf_fraction(sim::day_of_year(b));
      lo = std::min(lo, leaf);
      hi = std::max(hi, leaf);
    }
    s.foliage_drift_sigma = config_.foliage_peak_sigma * (hi - lo);
  }

  // Holiday overlap fraction.
  std::int64_t overlap = 0;
  for (const auto& h : holidays_) {
    if (h.region && *h.region != region_) continue;
    overlap += std::max<std::int64_t>(
        0, std::min(to, h.end_bin) - std::max(from, h.start_bin));
  }
  s.holiday_overlap =
      static_cast<double>(overlap) / static_cast<double>(to - from);

  // Conflicting planned changes inside the study's impact scope.
  if (planned_ != nullptr && topo_ != nullptr &&
      study != net::kInvalidElement) {
    s.conflicting_changes =
        planned_->conflicting_changes(*topo_, study, from, to, 0).size();
  }

  s.penalty = config_.foliage_weight * s.foliage_drift_sigma +
              config_.holiday_weight * s.holiday_overlap +
              config_.conflict_weight *
                  static_cast<double>(s.conflicting_changes);
  return s;
}

std::string ChangeScheduler::render_rationale(const WindowScore& s) const {
  std::ostringstream why;
  why.precision(2);
  why << std::fixed << "day " << sim::day_of(s.change_bin) << " (doy "
      << sim::day_of_year(s.change_bin) << "): foliage drift "
      << s.foliage_drift_sigma << " sigma";
  if (s.holiday_overlap > 0)
    why << ", " << 100.0 * s.holiday_overlap << "% holiday overlap";
  if (s.conflicting_changes > 0)
    why << ", " << s.conflicting_changes << " conflicting change(s)";
  if (s.penalty < 0.15) why << " — clean window";
  return why.str();
}

WindowScore ChangeScheduler::score(net::ElementId study,
                                   std::int64_t change_bin) const {
  WindowScore s = score_candidate(study, change_bin);
  s.rationale = render_rationale(s);
  return s;
}

std::vector<WindowScore> ChangeScheduler::recommend(net::ElementId study,
                                                    std::int64_t from,
                                                    std::int64_t to,
                                                    std::size_t top_n,
                                                    std::int64_t step) const {
  // Score every candidate numerically; rationale strings are rendered only
  // for the survivors after the cut.
  std::vector<WindowScore> scores;
  for (std::int64_t bin = from; bin < to; bin += step)
    scores.push_back(score_candidate(study, bin));
  std::stable_sort(scores.begin(), scores.end(),
                   [](const WindowScore& a, const WindowScore& b) {
                     return a.penalty < b.penalty;
                   });
  if (scores.size() > top_n) scores.resize(top_n);
  for (WindowScore& s : scores) s.rationale = render_rationale(s);
  return scores;
}

}  // namespace litmus::core
