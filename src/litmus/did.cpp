#include "litmus/did.h"

#include <algorithm>
#include <cmath>

#include "tsmath/normal.h"
#include "tsmath/stats.h"

namespace litmus::core {
namespace {

double central(const ts::TimeSeries& s, CentralMeasure h) {
  return h == CentralMeasure::kMean ? ts::mean(s) : ts::median(s);
}

double central(std::span<const double> v, CentralMeasure h) {
  return h == CentralMeasure::kMean ? ts::mean(v) : ts::median(v);
}

// Variance contribution of a window's central estimate, from a robust
// per-bin scale (MAD). Mean and median of n observations both have standard
// error ~ sigma/sqrt(n) up to a constant; the constant is absorbed into the
// significance level. KPI series are autocorrelated, so the raw 1/n is
// replaced with an AR(1)-style effective sample size n(1-r)/(1+r), r being
// the lag-1 autocorrelation.
double central_variance(const ts::TimeSeries& s) {
  const double scale = ts::mad(s.values());
  const std::size_t n = s.observed_count();
  if (ts::is_missing(scale) || n == 0) return ts::kMissing;
  double r1 = ts::autocorrelation(s.values(), 1);
  if (ts::is_missing(r1)) r1 = 0.0;
  r1 = std::clamp(r1, 0.0, 0.95);
  const double n_eff =
      std::max(2.0, static_cast<double>(n) * (1.0 - r1) / (1.0 + r1));
  return scale * scale / n_eff;
}

}  // namespace

std::vector<double> DiDAnalyzer::pairwise_did(
    const ElementWindows& w) const {
  const double study_delta =
      central(w.study_after, params_.h) - central(w.study_before, params_.h);
  std::vector<double> out;
  out.reserve(w.control_before.size());
  for (std::size_t i = 0; i < w.control_before.size(); ++i) {
    const double ctrl_delta = central(w.control_after[i], params_.h) -
                              central(w.control_before[i], params_.h);
    if (ts::is_missing(study_delta) || ts::is_missing(ctrl_delta)) continue;
    out.push_back(study_delta - ctrl_delta);
  }
  return out;
}

AnalysisOutcome DiDAnalyzer::assess(const ElementWindows& w,
                                    kpi::KpiId kpi) const {
  AnalysisOutcome out;
  out.explanation.analyzer = name().data();
  out.explanation.test = "z_score";
  out.explanation.n_controls = w.control_before.size();
  out.explanation.aggregation =
      params_.aggregate == CentralMeasure::kMean ? "mean" : "median";
  if (w.study_before.observed_count() < 4 ||
      w.study_after.observed_count() < 4 || w.control_before.empty() ||
      w.control_before.size() != w.control_after.size()) {
    out.degenerate = true;
    out.explanation.note =
        "too few observed study bins or empty/mismatched control group";
    return out;
  }

  const std::vector<double> d = pairwise_did(w);
  if (d.empty()) {
    out.degenerate = true;
    out.explanation.note = "no complete study/control difference pair";
    return out;
  }
  out.explanation.n_after = w.study_after.observed_count();
  out.explanation.n_before = w.study_before.observed_count();
  const double estimate = central(d, params_.aggregate);

  // Noise floor of the estimate: study windows contribute fully (shared by
  // every pair); the averaged control contribution shrinks with N.
  const double var_study = central_variance(w.study_before);
  const double var_study_a = central_variance(w.study_after);
  double var_ctrl = 0.0;
  std::size_t n_ctrl = 0;
  for (std::size_t i = 0; i < w.control_before.size(); ++i) {
    const double vb = central_variance(w.control_before[i]);
    const double va = central_variance(w.control_after[i]);
    if (ts::is_missing(vb) || ts::is_missing(va)) continue;
    var_ctrl += vb + va;
    ++n_ctrl;
  }
  if (ts::is_missing(var_study) || ts::is_missing(var_study_a) ||
      n_ctrl == 0) {
    out.degenerate = true;
    out.explanation.note = "could not estimate the noise floor";
    return out;
  }
  const double n = static_cast<double>(n_ctrl);
  const double var_total =
      var_study + var_study_a + var_ctrl / (n * n);
  if (var_total <= 0.0) {
    out.degenerate = true;
    out.explanation.note = "zero estimate variance";
    return out;
  }

  out.statistic = estimate / std::sqrt(var_total);
  out.p_value = ts::two_sided_p(out.statistic);
  out.effect_kpi_units = estimate;
  const double threshold =
      params_.threshold_sigma * kpi::info(kpi).typical_noise;
  out.explanation.effect_floor_kpi_units = threshold;
  out.explanation.material = std::fabs(estimate) >= threshold;
  if (std::fabs(estimate) >= threshold)
    out.relative = estimate > 0 ? RelativeChange::kIncrease
                                : RelativeChange::kDecrease;
  out.verdict = verdict_from(out.relative, kpi::info(kpi).polarity);
  return out;
}

}  // namespace litmus::core
