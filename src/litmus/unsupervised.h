// Baseline 3: unsupervised subspace (PCA) anomaly detection, in the spirit
// of the network-wide detectors the paper's related work cites (Lakhina et
// al. SIGCOMM'04, Huang et al. NIPS'06) — Section 2.4.
//
// The detector pools the study and control series into a matrix (one column
// per element), learns the normal subspace on the before window, and flags
// the change when the study element's contribution to the residual
// (anomalous) subspace grows after the change.
//
// Two structural handicaps the paper calls out, reproduced faithfully here:
//   * no study/control attribution — the detector sees "columns", so an
//     anomaly anywhere in the group can be charged to the wrong element;
//   * no relative direction — detection carries no improvement/degradation
//     sign of its own. The best available proxy is the study element's
//     absolute shift, which is exactly what external factors corrupt
//     (Fig 7(c): both groups improve, study relatively degrades — the
//     proxy reports improvement).
#pragma once

#include "litmus/analysis.h"

namespace litmus::core {

struct PcaBaselineParams {
  /// Number of principal components forming the "normal" subspace; the
  /// classical choice captures the dominant common structure.
  std::size_t n_components = 3;
  /// Flag when the after-window mean residual energy of the study column
  /// exceeds this multiple of the before-window mean residual energy.
  double energy_ratio_threshold = 2.0;
};

class PcaBaselineAnalyzer final : public ChangeAnalyzer {
 public:
  explicit PcaBaselineAnalyzer(PcaBaselineParams params = {})
      : params_(params) {}

  AnalysisOutcome assess(const ElementWindows& windows,
                         kpi::KpiId kpi) const override;
  std::string_view name() const noexcept override { return "pca_baseline"; }

 private:
  PcaBaselineParams params_;
};

}  // namespace litmus::core
