// Change-execution planning (paper Section 2.4, future challenge): "design
// a change execution plan (under complex and massive operational
// constraints as well as foreseeable external factors such as weather,
// social events) for more effective impact assessment."
//
// The scheduler scores candidate change times by how much *foreseeable*
// confounding the before/after assessment windows would absorb:
//   * foliage drift — how far the leaf canopy moves across the windows
//     (April and September are the worst times to assess in the Northeast);
//   * holiday overlap — the fraction of the window inside known
//     region-wide traffic shifts;
//   * conflicting changes — planned work inside the study group's impact
//     scope during the window (ChangeLog).
// Unforeseeable factors (storms) are Litmus's job; foreseeable ones are
// cheaper to schedule around than to regress away.
#pragma once

#include <string>
#include <vector>

#include "changelog/changelog.h"
#include "litmus/assessor.h"
#include "simkit/traffic.h"

namespace litmus::core {

struct SchedulerConfig {
  /// Assessment window the plan is optimized for.
  std::size_t before_bins = 14 * 24;
  std::size_t after_bins = 14 * 24;
  /// Regional worst-case foliage impact (sigma) used to scale drift.
  double foliage_peak_sigma = 2.0;
  /// Penalty weights.
  double foliage_weight = 1.0;
  double holiday_weight = 1.5;
  double conflict_weight = 2.0;
};

struct WindowScore {
  std::int64_t change_bin = 0;
  double foliage_drift_sigma = 0.0;  ///< |canopy change| across the window
  double holiday_overlap = 0.0;      ///< fraction of window inside holidays
  std::size_t conflicting_changes = 0;
  double penalty = 0.0;              ///< weighted total; lower is better
  std::string rationale;
};

class ChangeScheduler {
 public:
  /// `planned` and `topo` may be null when no change-conflict data exists.
  ChangeScheduler(net::Region region,
                  std::vector<sim::HolidayWindow> holidays,
                  const net::Topology* topo = nullptr,
                  const chg::ChangeLog* planned = nullptr,
                  SchedulerConfig config = {});

  /// Scores one candidate change time for a change at `study` (study may be
  /// kInvalidElement when no conflict checking is wanted).
  WindowScore score(net::ElementId study, std::int64_t change_bin) const;

  /// Evaluates candidates in [from, to) every `step_bins` and returns the
  /// `top_n` lowest-penalty windows, best first.
  std::vector<WindowScore> recommend(net::ElementId study, std::int64_t from,
                                     std::int64_t to, std::size_t top_n,
                                     std::int64_t step_bins = 24) const;

 private:
  /// Numeric scoring without the rationale string; recommend() scores every
  /// candidate this way and renders rationales only for the top_n survivors.
  WindowScore score_candidate(net::ElementId study,
                              std::int64_t change_bin) const;
  std::string render_rationale(const WindowScore& s) const;

  net::Region region_;
  std::vector<sim::HolidayWindow> holidays_;
  const net::Topology* topo_;
  const chg::ChangeLog* planned_;
  SchedulerConfig config_;
};

}  // namespace litmus::core
