#include "litmus/analysis.h"

namespace litmus::core {

const char* to_string(RelativeChange c) noexcept {
  switch (c) {
    case RelativeChange::kNoChange: return "no_change";
    case RelativeChange::kIncrease: return "increase";
    case RelativeChange::kDecrease: return "decrease";
  }
  return "?";
}

const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kNoImpact: return "no_impact";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kDegradation: return "degradation";
  }
  return "?";
}

Verdict verdict_from(RelativeChange change, kpi::Polarity polarity) noexcept {
  if (change == RelativeChange::kNoChange) return Verdict::kNoImpact;
  const bool increase = change == RelativeChange::kIncrease;
  const bool higher_better = polarity == kpi::Polarity::kHigherIsBetter;
  return increase == higher_better ? Verdict::kImprovement
                                   : Verdict::kDegradation;
}

}  // namespace litmus::core
