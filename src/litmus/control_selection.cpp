#include "litmus/control_selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

namespace litmus::core {

ControlPredicate same_zip() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).zip == t.get(c).zip;
  };
}

ControlPredicate within_km(double radius_km) {
  return [radius_km](const net::Topology& t, net::ElementId s,
                     net::ElementId c) {
    return net::haversine_km(t.get(s).location, t.get(c).location) <=
           radius_km;
  };
}

ControlPredicate same_region() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).region == t.get(c).region;
  };
}

ControlPredicate same_parent() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).parent == t.get(c).parent &&
           t.get(s).parent != net::kInvalidElement;
  };
}

ControlPredicate same_upstream(net::ElementKind kind) {
  return [kind](const net::Topology& t, net::ElementId s, net::ElementId c) {
    const auto us = t.ancestor_of_kind(s, kind);
    const auto uc = t.ancestor_of_kind(c, kind);
    return us && uc && *us == *uc;
  };
}

ControlPredicate same_kind() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).kind == t.get(c).kind;
  };
}

ControlPredicate same_technology() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).technology == t.get(c).technology;
  };
}

ControlPredicate same_software_version() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.software == t.get(c).config.software;
  };
}

ControlPredicate same_equipment_model() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.equipment_model == t.get(c).config.equipment_model;
  };
}

ControlPredicate same_os_version() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.os_version == t.get(c).config.os_version;
  };
}

ControlPredicate son_state_matches() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.son_enabled == t.get(c).config.son_enabled;
  };
}

ControlPredicate similar_antenna(double tilt_tol, double power_tol) {
  return [tilt_tol, power_tol](const net::Topology& t, net::ElementId s,
                               net::ElementId c) {
    const auto& a = t.get(s).config.antenna;
    const auto& b = t.get(c).config.antenna;
    return std::fabs(a.tilt_deg - b.tilt_deg) <= tilt_tol &&
           std::fabs(a.tx_power_dbm - b.tx_power_dbm) <= power_tol;
  };
}

ControlPredicate same_terrain() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.terrain == t.get(c).config.terrain;
  };
}

ControlPredicate same_traffic_profile() {
  return [](const net::Topology& t, net::ElementId s, net::ElementId c) {
    return t.get(s).config.traffic == t.get(c).config.traffic;
  };
}

ControlPredicate all_of(std::vector<ControlPredicate> preds) {
  return [preds = std::move(preds)](const net::Topology& t, net::ElementId s,
                                    net::ElementId c) {
    for (const auto& p : preds)
      if (!p(t, s, c)) return false;
    return true;
  };
}

ControlPredicate any_of(std::vector<ControlPredicate> preds) {
  return [preds = std::move(preds)](const net::Topology& t, net::ElementId s,
                                    net::ElementId c) {
    for (const auto& p : preds)
      if (p(t, s, c)) return true;
    return false;
  };
}

ControlPredicate negate(ControlPredicate pred) {
  return [pred = std::move(pred)](const net::Topology& t, net::ElementId s,
                                  net::ElementId c) { return !pred(t, s, c); };
}

SelectionResult select_control_group(const net::Topology& topo,
                                     std::span<const net::ElementId> study,
                                     const ControlPredicate& predicate,
                                     const SelectionPolicy& policy) {
  return select_control_group_among(topo, topo.all(), study, predicate,
                                    policy);
}

SelectionResult select_control_group_among(
    const net::Topology& topo, std::span<const net::ElementId> candidates,
    std::span<const net::ElementId> study, const ControlPredicate& predicate,
    const SelectionPolicy& policy) {
  SelectionResult result;
  if (study.empty()) return result;

  // Union of impact scopes over the study group: never pick a control the
  // change itself may touch.
  std::unordered_set<net::ElementId> scope;
  for (const auto s : study) {
    const auto sc = topo.impact_scope(s);
    scope.insert(sc.begin(), sc.end());
  }

  struct Scored {
    net::ElementId id;
    double distance_km;
  };
  std::vector<Scored> accepted;
  for (const auto cand : candidates) {
    bool is_study = false;
    for (const auto s : study)
      if (s == cand) is_study = true;
    if (is_study) continue;
    ++result.candidates_considered;
    if (scope.contains(cand)) {
      ++result.excluded_by_scope;
      continue;
    }
    double best_dist = std::numeric_limits<double>::infinity();
    bool matched = false;
    for (const auto s : study) {
      if (topo.get(s).kind != topo.get(cand).kind) continue;
      if (!predicate(topo, s, cand)) continue;
      matched = true;
      best_dist = std::min(best_dist,
                           net::haversine_km(topo.get(s).location,
                                             topo.get(cand).location));
    }
    if (matched) accepted.push_back({cand, best_dist});
  }

  if (policy.prefer_closest) {
    std::stable_sort(accepted.begin(), accepted.end(),
                     [](const Scored& a, const Scored& b) {
                       return a.distance_km < b.distance_km;
                     });
  }
  if (accepted.size() > policy.max_size) accepted.resize(policy.max_size);

  result.controls.reserve(accepted.size());
  for (const auto& a : accepted) result.controls.push_back(a.id);
  result.meets_min_size = result.controls.size() >= policy.min_size;
  return result;
}

}  // namespace litmus::core
