#include "litmus/batch.h"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <span>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::core {
namespace {

Verdict expected_verdict(chg::Expectation e) {
  switch (e) {
    case chg::Expectation::kImprovement: return Verdict::kImprovement;
    case chg::Expectation::kDegradation: return Verdict::kDegradation;
    case chg::Expectation::kNoImpact: return Verdict::kNoImpact;
  }
  return Verdict::kNoImpact;
}

/// Records prepared and assessed per block: bounds peak memory to one
/// block of fetched windows (a million-record log would otherwise
/// materialize every window up front) while leaving the parallel phase
/// enough records to keep the pool busy.
constexpr std::size_t kBlockRecords = 1024;

/// Shared state for one batch run (unsharded, or all shards of one
/// sharded run — the progress counter spans the whole log either way).
struct BatchContext {
  const chg::ChangeLog* log = nullptr;
  const net::Topology* topo = nullptr;
  const BatchConfig* config = nullptr;
  Assessor* assessor = nullptr;
  chg::ChangeIndex conflict_index;
  /// Control-candidate groups by group_key value, each in topology
  /// (insertion) order; empty when config->group_key is unset.
  std::unordered_map<std::uint64_t, std::vector<net::ElementId>> groups;
  std::atomic<std::uint64_t> done{0};
  std::uint64_t total = 0;
  int shard = -1;  ///< current shard for heartbeat lines; -1 = unsharded
  /// Live adaptive-sampling counters for heartbeat lines (relaxed — the
  /// deterministic per-record numbers are recomputed in record order by
  /// the tallies, these only feed progress events).
  bool adaptive = false;
  std::atomic<std::uint64_t> adaptive_stopped{0};
  std::atomic<std::uint64_t> adaptive_saved{0};

  BatchContext(const chg::ChangeLog& l, const net::Topology& t,
               const BatchConfig& c, Assessor& a)
      : log(&l), topo(&t), config(&c), assessor(&a), conflict_index(l),
        adaptive(c.assessment.regression.adaptive_sampling) {
    if (c.group_key)
      for (const auto id : t.all())
        groups[c.group_key(t, id)].push_back(id);
  }

  std::span<const net::ElementId> candidates_for(net::ElementId study) const {
    if (!config->group_key) return topo->all();
    const auto it = groups.find(config->group_key(*topo, study));
    if (it == groups.end()) return {};
    return it->second;
  }
};

/// Prepares and assesses `indices` (ascending record indices) into their
/// slots of `report.items`, blocked to bound window memory. Tallies are
/// NOT updated here — callers recompute them in record order at the end.
void assess_indices_into(BatchContext& ctx,
                         std::span<const std::size_t> indices,
                         BatchReport& report) {
  const auto& records = ctx.log->all();
  const auto& config = *ctx.config;
  const auto lookback =
      static_cast<std::int64_t>(config.assessment.before_bins);
  const auto lookahead =
      static_cast<std::int64_t>(config.assessment.after_bins);

  struct PreparedRecord {
    std::vector<net::ElementId> study;
    std::vector<net::ElementId> controls;
    std::vector<ElementWindows> windows;
  };

  for (std::size_t base = 0; base < indices.size(); base += kBlockRecords) {
    const std::size_t n =
        std::min(kBlockRecords, indices.size() - base);

    // Phase 1 (sequential): conflict check, control selection, window
    // fetch — the SeriesProvider is only ever invoked from this thread.
    std::vector<PreparedRecord> prepared(n);
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t i = indices[base + j];
      const auto& record = records[i];
      BatchItem& item = report.items[i];
      item.record = record;
      item.conflicts = ctx.conflict_index.conflicting_changes(
          *ctx.topo, record.element, record.bin - lookback,
          record.bin + lookahead, record.id);
      item.window_clean = item.conflicts.empty();

      PreparedRecord& prep = prepared[j];
      prep.study = {record.element};
      prep.controls =
          select_control_group_among(*ctx.topo,
                                     ctx.candidates_for(record.element),
                                     prep.study, config.predicate,
                                     config.selection)
              .controls;
      prep.windows.reserve(prep.study.size());
      for (const auto s : prep.study)
        prep.windows.push_back(ctx.assessor->windows_for(
            s, prep.controls, record.target_kpi, record.bin));
    }

    // Phase 2 (parallel): the regressions, one change record per task;
    // records are independent and results land in their record's slot.
    // Long batches stay watchable: a heartbeat event every few completed
    // records, plus one at the end of the log.
    par::parallel_for(n, [&](std::size_t j) {
      obs::ScopedSpan record_span("batch.record");
      if (obs::enabled())
        obs::Registry::global().counter("batch.records").add();
      const std::size_t i = indices[base + j];
      const auto& record = records[i];
      const PreparedRecord& prep = prepared[j];
      BatchItem& item = report.items[i];
      item.assessment = ctx.assessor->assess_windows(
          prep.study, prep.controls, prep.windows, record.target_kpi,
          record.bin);
      item.met_expectation = item.assessment.summary.verdict ==
                             expected_verdict(record.expectation);
      if (ctx.adaptive)
        for (const auto& e : item.assessment.per_element) {
          const VerdictExplanation& x = e.outcome.explanation;
          if (x.iterations_used > 0 &&
              x.iterations_used < x.iterations_requested) {
            ctx.adaptive_stopped.fetch_add(1, std::memory_order_relaxed);
            ctx.adaptive_saved.fetch_add(
                x.iterations_requested - x.iterations_used,
                std::memory_order_relaxed);
          }
        }
      if (auto* ev = obs::events())
        ev->progress("batch",
                     ctx.done.fetch_add(1, std::memory_order_relaxed) + 1,
                     ctx.total, /*every=*/16, [&](obs::JsonWriter& w) {
                       const par::PoolStats pool = par::pool_stats();
                       w.member("pool.queue_depth",
                                static_cast<std::uint64_t>(
                                    pool.queue_depth))
                           .member("pool.tasks_completed",
                                   pool.tasks_completed);
                       if (ctx.shard >= 0)
                         w.member("shard", static_cast<std::int64_t>(
                                               ctx.shard));
                       if (ctx.adaptive)
                         w.member("adaptive.stopped_early",
                                  ctx.adaptive_stopped.load(
                                      std::memory_order_relaxed))
                             .member("adaptive.iterations_saved",
                                     ctx.adaptive_saved.load(
                                         std::memory_order_relaxed));
                     });
    });
  }
}

/// Adaptive-sampling stats of one item's per-element outcomes, added onto
/// the caller's counters. Budget is only counted for outcomes whose
/// sampling loop ran, so used/budget compares like with like.
template <typename Counts>
void add_adaptive_stats(const BatchItem& item, Counts& out) {
  for (const auto& e : item.assessment.per_element) {
    const VerdictExplanation& x = e.outcome.explanation;
    if (x.iterations_used == 0) continue;
    out.adaptive_iterations_used += x.iterations_used;
    out.adaptive_iterations_budget += x.iterations_requested;
    if (x.iterations_used < x.iterations_requested)
      ++out.adaptive_stopped_early;
  }
}

/// Tallies, in record order (the same order whether the items were filled
/// by one pass or by shards).
void tally(BatchReport& report, bool adaptive) {
  report.adaptive_sampling = adaptive;
  for (const BatchItem& item : report.items) {
    switch (item.assessment.summary.verdict) {
      case Verdict::kImprovement: ++report.improvements; break;
      case Verdict::kDegradation: ++report.degradations; break;
      case Verdict::kNoImpact: ++report.no_impacts; break;
    }
    if (!item.window_clean) ++report.dirty_windows;
    if (!item.met_expectation) ++report.expectation_misses;
    if (adaptive) add_adaptive_stats(item, report);
  }
}

void apply_default_predicate(BatchConfig& config) {
  if (!config.predicate)
    config.predicate = all_of({same_region(), same_technology()});
}

/// Static span labels: ScopedSpan stores the pointer, not a copy.
const char* shard_span_name(std::size_t shard) noexcept {
  static constexpr const char* kNames[] = {
      "shard-0",  "shard-1",  "shard-2",  "shard-3",
      "shard-4",  "shard-5",  "shard-6",  "shard-7",
      "shard-8",  "shard-9",  "shard-10", "shard-11",
      "shard-12", "shard-13", "shard-14", "shard-15",
  };
  return shard < std::size(kNames) ? kNames[shard] : "shard";
}

}  // namespace

BatchReport assess_change_log(const chg::ChangeLog& log,
                              const net::Topology& topo,
                              const SeriesProvider& provider,
                              BatchConfig config) {
  apply_default_predicate(config);
  Assessor assessor(topo, provider, config.assessment);
  BatchContext ctx(log, topo, config, assessor);
  ctx.total = log.size();

  BatchReport report;
  report.items.resize(log.size());
  std::vector<std::size_t> indices(log.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  assess_indices_into(ctx, indices, report);
  tally(report, ctx.adaptive);
  return report;
}

std::size_t shard_of(net::ElementId element, std::size_t n_shards) noexcept {
  return n_shards <= 1 ? 0 : element.value % n_shards;
}

std::vector<std::vector<std::size_t>> plan_shards(const chg::ChangeLog& log,
                                                  std::size_t n_shards) {
  std::vector<std::vector<std::size_t>> plan(
      std::max<std::size_t>(1, n_shards));
  const auto records = log.all();
  for (std::size_t i = 0; i < records.size(); ++i)
    plan[shard_of(records[i].element, plan.size())].push_back(i);
  return plan;
}

ShardedBatchReport assess_change_log_sharded(const chg::ChangeLog& log,
                                             const net::Topology& topo,
                                             const SeriesProvider& provider,
                                             std::size_t n_shards,
                                             BatchConfig config,
                                             const ShardCallbacks& cb) {
  apply_default_predicate(config);
  Assessor assessor(topo, provider, config.assessment);
  BatchContext ctx(log, topo, config, assessor);
  ctx.total = log.size();

  const auto plan = plan_shards(log, n_shards);
  ShardedBatchReport out;
  out.merged.items.resize(log.size());
  out.shards.reserve(plan.size());
  // Each shard's private cache gets the same budget the process-wide cache
  // runs with, so sharded and unsharded runs see comparable hit behavior
  // (cache state never changes produced bits either way).
  const std::size_t cache_budget = PanelCache::global().capacity_bytes();

  for (std::size_t s = 0; s < plan.size(); ++s) {
    if (cb.on_start) cb.on_start(s, plan[s].size());
    const std::uint64_t t0 = obs::now_ns();
    ShardSummary sum;
    sum.shard = s;
    sum.records = plan[s].size();
    {
      obs::ScopedSpan shard_span(shard_span_name(s));
      PanelCache shard_cache(cache_budget);
      ScopedPanelCacheOverride override_cache(shard_cache);
      ctx.shard = static_cast<int>(s);
      assess_indices_into(ctx, plan[s], out.merged);
      sum.cache = shard_cache.stats();
    }
    ctx.shard = -1;
    if (ctx.adaptive)
      for (const std::size_t i : plan[s])
        add_adaptive_stats(out.merged.items[i], sum);
    sum.seconds = static_cast<double>(obs::now_ns() - t0) / 1e9;
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      reg.gauge("shard.count").set(static_cast<double>(plan.size()));
      reg.gauge("shard." + std::to_string(s) + ".records")
          .set(static_cast<double>(sum.records));
      reg.gauge("shard." + std::to_string(s) + ".seconds")
          .set(sum.seconds);
      if (ctx.adaptive)
        reg.gauge("shard." + std::to_string(s) + ".adaptive_stopped_early")
            .set(static_cast<double>(sum.adaptive_stopped_early));
    }
    if (cb.on_finish) cb.on_finish(sum);
    out.shards.push_back(sum);
  }
  tally(out.merged, ctx.adaptive);
  return out;
}

std::string format_batch_report(const BatchReport& report,
                                const net::Topology& topo) {
  std::ostringstream os;
  os << "=== change-log assessment: " << report.items.size()
     << " change(s) ===\n";
  os << "id   element                 type                verdict       "
        "expectation-met  window\n";
  for (const auto& item : report.items) {
    std::string name = topo.get(item.record.element).name;
    name.resize(23, ' ');
    std::string type = chg::to_string(item.record.type);
    type.resize(19, ' ');
    std::string verdict = to_string(item.assessment.summary.verdict);
    verdict.resize(13, ' ');
    os << item.record.id << "    " << name << " " << type << " " << verdict
       << " " << (item.met_expectation ? "yes" : "NO ") << "              "
       << (item.window_clean
               ? "clean"
               : "dirty (" + std::to_string(item.conflicts.size()) +
                     " conflict(s))")
       << "\n";
  }
  os << "summary: " << report.improvements << " improvement(s), "
     << report.degradations << " degradation(s), " << report.no_impacts
     << " no-impact; " << report.expectation_misses
     << " expectation miss(es); " << report.dirty_windows
     << " dirty window(s)\n";
  if (report.adaptive_sampling)
    os << "adaptive sampling: " << report.adaptive_stopped_early
       << " early stop(s); " << report.adaptive_iterations_used << "/"
       << report.adaptive_iterations_budget << " iteration(s) of budget\n";
  return os.str();
}

}  // namespace litmus::core
