#include "litmus/batch.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::core {
namespace {

Verdict expected_verdict(chg::Expectation e) {
  switch (e) {
    case chg::Expectation::kImprovement: return Verdict::kImprovement;
    case chg::Expectation::kDegradation: return Verdict::kDegradation;
    case chg::Expectation::kNoImpact: return Verdict::kNoImpact;
  }
  return Verdict::kNoImpact;
}

}  // namespace

BatchReport assess_change_log(const chg::ChangeLog& log,
                              const net::Topology& topo,
                              const SeriesProvider& provider,
                              BatchConfig config) {
  if (!config.predicate)
    config.predicate = all_of({same_region(), same_technology()});

  Assessor assessor(topo, provider, config.assessment);
  const auto lookback =
      static_cast<std::int64_t>(config.assessment.before_bins);
  const auto lookahead =
      static_cast<std::int64_t>(config.assessment.after_bins);

  BatchReport report;
  for (const auto& record : log.all()) {
    obs::ScopedSpan record_span("batch.record");
    if (obs::enabled()) obs::Registry::global().counter("batch.records").add();
    BatchItem item;
    item.record = record;
    item.conflicts = log.conflicting_changes(
        topo, record.element, record.bin - lookback, record.bin + lookahead,
        record.id);
    item.window_clean = item.conflicts.empty();

    const std::vector<net::ElementId> study{record.element};
    item.assessment = assessor.assess_with_selection(
        study, config.predicate, record.target_kpi, record.bin,
        config.selection);

    item.met_expectation =
        item.assessment.summary.verdict == expected_verdict(record.expectation);

    switch (item.assessment.summary.verdict) {
      case Verdict::kImprovement: ++report.improvements; break;
      case Verdict::kDegradation: ++report.degradations; break;
      case Verdict::kNoImpact: ++report.no_impacts; break;
    }
    if (!item.window_clean) ++report.dirty_windows;
    if (!item.met_expectation) ++report.expectation_misses;
    report.items.push_back(std::move(item));
  }
  return report;
}

std::string format_batch_report(const BatchReport& report,
                                const net::Topology& topo) {
  std::ostringstream os;
  os << "=== change-log assessment: " << report.items.size()
     << " change(s) ===\n";
  os << "id   element                 type                verdict       "
        "expectation-met  window\n";
  for (const auto& item : report.items) {
    std::string name = topo.get(item.record.element).name;
    name.resize(23, ' ');
    std::string type = chg::to_string(item.record.type);
    type.resize(19, ' ');
    std::string verdict = to_string(item.assessment.summary.verdict);
    verdict.resize(13, ' ');
    os << item.record.id << "    " << name << " " << type << " " << verdict
       << " " << (item.met_expectation ? "yes" : "NO ") << "              "
       << (item.window_clean
               ? "clean"
               : "dirty (" + std::to_string(item.conflicts.size()) +
                     " conflict(s))")
       << "\n";
  }
  os << "summary: " << report.improvements << " improvement(s), "
     << report.degradations << " degradation(s), " << report.no_impacts
     << " no-impact; " << report.expectation_misses
     << " expectation miss(es); " << report.dirty_windows
     << " dirty window(s)\n";
  return os.str();
}

}  // namespace litmus::core
