#include "litmus/batch.h"

#include <atomic>
#include <sstream>
#include <vector>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

namespace litmus::core {
namespace {

Verdict expected_verdict(chg::Expectation e) {
  switch (e) {
    case chg::Expectation::kImprovement: return Verdict::kImprovement;
    case chg::Expectation::kDegradation: return Verdict::kDegradation;
    case chg::Expectation::kNoImpact: return Verdict::kNoImpact;
  }
  return Verdict::kNoImpact;
}

}  // namespace

BatchReport assess_change_log(const chg::ChangeLog& log,
                              const net::Topology& topo,
                              const SeriesProvider& provider,
                              BatchConfig config) {
  if (!config.predicate)
    config.predicate = all_of({same_region(), same_technology()});

  Assessor assessor(topo, provider, config.assessment);
  const auto lookback =
      static_cast<std::int64_t>(config.assessment.before_bins);
  const auto lookahead =
      static_cast<std::int64_t>(config.assessment.after_bins);

  // Phase 1 (sequential): conflict scan, control selection, and window
  // fetch per record — the SeriesProvider is only ever invoked from this
  // thread.
  const auto& records = log.all();
  BatchReport report;
  report.items.resize(records.size());
  struct PreparedRecord {
    std::vector<net::ElementId> study;
    std::vector<net::ElementId> controls;
    std::vector<ElementWindows> windows;
  };
  std::vector<PreparedRecord> prepared(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& record = records[i];
    BatchItem& item = report.items[i];
    item.record = record;
    item.conflicts = log.conflicting_changes(
        topo, record.element, record.bin - lookback, record.bin + lookahead,
        record.id);
    item.window_clean = item.conflicts.empty();

    PreparedRecord& prep = prepared[i];
    prep.study = {record.element};
    prep.controls = select_control_group(topo, prep.study, config.predicate,
                                         config.selection)
                        .controls;
    prep.windows.reserve(prep.study.size());
    for (const auto s : prep.study)
      prep.windows.push_back(
          assessor.windows_for(s, prep.controls, record.target_kpi,
                               record.bin));
  }

  // Phase 2 (parallel): the regressions, one change record per task;
  // records are independent and results land in their record's slot.
  // Long batches stay watchable: a heartbeat event every few completed
  // records, plus one at the end.
  std::atomic<std::uint64_t> done{0};
  par::parallel_for(records.size(), [&](std::size_t i) {
    obs::ScopedSpan record_span("batch.record");
    if (obs::enabled()) obs::Registry::global().counter("batch.records").add();
    const auto& record = records[i];
    const PreparedRecord& prep = prepared[i];
    BatchItem& item = report.items[i];
    item.assessment =
        assessor.assess_windows(prep.study, prep.controls, prep.windows,
                                record.target_kpi, record.bin);
    item.met_expectation =
        item.assessment.summary.verdict == expected_verdict(record.expectation);
    if (auto* ev = obs::events())
      ev->progress("batch", done.fetch_add(1, std::memory_order_relaxed) + 1,
                   records.size(), /*every=*/16, [](obs::JsonWriter& w) {
                     const par::PoolStats pool = par::pool_stats();
                     w.member("pool.queue_depth",
                              static_cast<std::uint64_t>(pool.queue_depth))
                         .member("pool.tasks_completed",
                                 pool.tasks_completed);
                   });
  });

  // Phase 3: tallies, in record order.
  for (const BatchItem& item : report.items) {
    switch (item.assessment.summary.verdict) {
      case Verdict::kImprovement: ++report.improvements; break;
      case Verdict::kDegradation: ++report.degradations; break;
      case Verdict::kNoImpact: ++report.no_impacts; break;
    }
    if (!item.window_clean) ++report.dirty_windows;
    if (!item.met_expectation) ++report.expectation_misses;
  }
  return report;
}

std::string format_batch_report(const BatchReport& report,
                                const net::Topology& topo) {
  std::ostringstream os;
  os << "=== change-log assessment: " << report.items.size()
     << " change(s) ===\n";
  os << "id   element                 type                verdict       "
        "expectation-met  window\n";
  for (const auto& item : report.items) {
    std::string name = topo.get(item.record.element).name;
    name.resize(23, ' ');
    std::string type = chg::to_string(item.record.type);
    type.resize(19, ' ');
    std::string verdict = to_string(item.assessment.summary.verdict);
    verdict.resize(13, ' ');
    os << item.record.id << "    " << name << " " << type << " " << verdict
       << " " << (item.met_expectation ? "yes" : "NO ") << "              "
       << (item.window_clean
               ? "clean"
               : "dirty (" + std::to_string(item.conflicts.size()) +
                     " conflict(s))")
       << "\n";
  }
  os << "summary: " << report.improvements << " improvement(s), "
     << report.degradations << " degradation(s), " << report.no_impacts
     << " no-impact; " << report.expectation_misses
     << " expectation miss(es); " << report.dirty_windows
     << " dirty window(s)\n";
  return os.str();
}

}  // namespace litmus::core
