#include "parallel/pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace litmus::par {
namespace {

thread_local int t_region_depth = 0;

struct RegionGuard {
  RegionGuard() noexcept { ++t_region_depth; }
  ~RegionGuard() noexcept { --t_region_depth; }
};

/// Fixed-size worker pool draining a shared FIFO queue. Tasks are plain
/// closures that never block on other tasks (see pool.h), so shutdown only
/// has to drain the queue and join.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  std::size_t workers() const noexcept { return threads_.size(); }

  void submit(std::function<void()> task) {
    Task t;
    t.fn = std::move(task);
    t.submit_ns = obs::now_ns();
    // Carry the submitter's span across the queue so spans opened by the
    // task nest under the span that fanned the work out, not under a
    // disconnected per-worker root.
    t.parent_span = obs::current_span_id();
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(t));
      depth = queue_.size();
    }
    tasks_submitted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
      auto& reg = obs::Registry::global();
      reg.counter("parallel.pool.tasks").add();
      reg.gauge("parallel.pool.queue_depth")
          .set(static_cast<double>(depth));
    }
    cv_.notify_one();
  }

  std::size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  std::uint64_t tasks_submitted() const noexcept {
    return tasks_submitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t tasks_completed() const noexcept {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::uint64_t submit_ns = 0;
    std::uint64_t parent_span = 0;
  };

  void worker_loop(std::size_t index) {
    obs::set_thread_name("pool-worker-" + std::to_string(index));
    RegionGuard region;  // everything a worker runs is a parallel region
    const std::uint64_t born_ns = obs::now_ns();
    std::uint64_t busy_ns = 0;
    obs::Gauge* utilization = nullptr;  // lazily resolved, then cached
    for (;;) {
      Task task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
        if (obs::enabled())
          obs::Registry::global()
              .gauge("parallel.pool.queue_depth")
              .set(static_cast<double>(queue_.size()));
      }
      const std::uint64_t run_start = obs::now_ns();
      {
        obs::SpanParentGuard parent(task.parent_span);
        task.fn();
      }
      const std::uint64_t run_end = obs::now_ns();
      busy_ns += run_end - run_start;
      tasks_completed_.fetch_add(1, std::memory_order_relaxed);
      if (obs::enabled()) {
        auto& reg = obs::Registry::global();
        reg.histogram("pool.task_wait_us")
            .record(static_cast<double>(run_start - task.submit_ns) / 1000.0);
        reg.histogram("pool.task_run_us")
            .record(static_cast<double>(run_end - run_start) / 1000.0);
        if (utilization == nullptr)
          utilization = &reg.gauge("pool.worker." + std::to_string(index) +
                                   ".utilization");
        const std::uint64_t alive_ns = run_end - born_ns;
        if (alive_ns > 0)
          utilization->set(static_cast<double>(busy_ns) /
                           static_cast<double>(alive_ns));
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> tasks_submitted_{0};
  std::atomic<std::uint64_t> tasks_completed_{0};
};

std::atomic<std::size_t> g_configured{0};

std::size_t env_threads() {
  const char* env = std::getenv("LITMUS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<std::size_t>(v);
}

struct PoolHolder {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
};

PoolHolder& holder() {
  static PoolHolder h;
  return h;
}

/// The pool resized to the currently resolved thread count. Callers hold no
/// reference across set_threads (documented in pool.h).
ThreadPool& pool_for(std::size_t workers) {
  PoolHolder& h = holder();
  std::lock_guard<std::mutex> lock(h.mu);
  if (!h.pool || h.pool->workers() != workers)
    h.pool = std::make_unique<ThreadPool>(workers);
  return *h.pool;
}

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

ChunkRange chunk_range(std::size_t n_items, std::size_t n_chunks,
                       std::size_t chunk) noexcept {
  return {chunk * n_items / n_chunks, (chunk + 1) * n_items / n_chunks};
}

}  // namespace

std::size_t hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_threads(std::size_t n) noexcept {
  g_configured.store(n, std::memory_order_relaxed);
}

std::size_t threads() {
  const std::size_t configured = g_configured.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  const std::size_t env = env_threads();
  return env > 0 ? env : hardware_threads();
}

bool in_parallel_region() noexcept { return t_region_depth > 0; }

std::size_t plan_chunks(std::size_t n_items) {
  if (n_items <= 1 || in_parallel_region()) return n_items == 0 ? 0 : 1;
  return std::min(threads(), n_items);
}

void parallel_chunks(
    std::size_t n_items, std::size_t n_chunks,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& fn) {
  if (n_items == 0 || n_chunks == 0) return;
  n_chunks = std::min(n_chunks, n_items);

  // Inline execution claims no region of its own: pool workers hold a
  // guard for their whole lifetime, so nesting stays inline there, while a
  // degenerate single-chunk call on an ordinary thread (e.g. a loop over
  // one study element) leaves nested loops free to be the real fan-out.
  if (n_chunks == 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const ChunkRange r = chunk_range(n_items, n_chunks, c);
      fn(c, r.begin, r.end);
    }
    return;
  }

  // Shared completion state for this call; tasks only signal, never wait.
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto join = std::make_shared<Join>();
  join->remaining = n_chunks - 1;

  ThreadPool& pool = pool_for(threads());
  for (std::size_t c = 1; c < n_chunks; ++c) {
    const ChunkRange r = chunk_range(n_items, n_chunks, c);
    pool.submit([join, &fn, c, r] {
      try {
        fn(c, r.begin, r.end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(join->mu);
        if (!join->error) join->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(join->mu);
        --join->remaining;
      }
      join->cv.notify_one();
    });
  }

  {
    RegionGuard region;
    const ChunkRange r = chunk_range(n_items, n_chunks, 0);
    try {
      fn(0, r.begin, r.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(join->mu);
      if (!join->error) join->error = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&] { return join->remaining == 0; });
  if (join->error) std::rethrow_exception(join->error);
}

void parallel_for(std::size_t n_items,
                  const std::function<void(std::size_t i)>& fn) {
  parallel_chunks(n_items, plan_chunks(n_items),
                  [&fn](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) fn(i);
                  });
}

PoolStats pool_stats() {
  PoolStats stats;
  PoolHolder& h = holder();
  std::lock_guard<std::mutex> lock(h.mu);
  if (h.pool) {
    stats.workers = h.pool->workers();
    stats.queue_depth = h.pool->queue_depth();
    stats.tasks_submitted = h.pool->tasks_submitted();
    stats.tasks_completed = h.pool->tasks_completed();
  }
  return stats;
}

}  // namespace litmus::par
