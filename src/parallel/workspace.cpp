#include "parallel/workspace.h"

namespace litmus::par {

std::vector<double>& Workspace::doubles(std::size_t slot) {
  if (slot >= doubles_.size()) doubles_.resize(slot + 1);
  return doubles_[slot];
}

std::vector<std::size_t>& Workspace::indices(std::size_t slot) {
  if (slot >= indices_.size()) indices_.resize(slot + 1);
  return indices_[slot];
}

void Workspace::clear() noexcept {
  doubles_.clear();
  indices_.clear();
  doubles_.shrink_to_fit();
  indices_.shrink_to_fit();
}

Workspace& this_thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace litmus::par
