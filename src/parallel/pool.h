// Bounded thread pool and deterministic parallel-for for the Litmus hot
// paths.
//
// Design rules, all in service of the determinism contract (DESIGN.md §8):
//   * Work is split into *contiguous, ascending* chunks whose boundaries
//     depend only on (n_items, n_chunks) — never on scheduling. A caller
//     that accumulates per-chunk results and merges them in chunk order
//     therefore reconstructs exactly the sequential iteration order, so
//     results are bit-identical at any thread count.
//   * Nested parallelism runs inline: a parallel_* call issued from inside
//     a chunk executes sequentially on the calling thread. The outermost
//     *multi-chunk* fan-out (change records > study elements > sampling
//     iterations) wins, and pool tasks never block on other pool tasks, so
//     the pool cannot deadlock. A degenerate single-chunk loop (e.g. one
//     study element) claims no region, leaving its nested loops free to
//     fan out instead.
//   * Thread count resolution: set_threads(n) (e.g. litmus_cli --threads)
//     wins, else the LITMUS_THREADS environment variable, else
//     std::thread::hardware_concurrency(). The pool itself is lazily
//     created on first parallel call and rebuilt if the count changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace litmus::par {

/// std::thread::hardware_concurrency(), clamped to at least 1.
std::size_t hardware_threads() noexcept;

/// Overrides the worker count for subsequent parallel work. 0 restores the
/// automatic resolution (LITMUS_THREADS, else hardware). Not safe to call
/// concurrently with in-flight parallel_* work.
void set_threads(std::size_t n) noexcept;

/// The resolved worker count the next parallel call will use.
std::size_t threads();

/// True while the calling thread is executing inside a parallel chunk
/// (worker thread, or the caller running its own chunk). parallel_* calls
/// made in this state run inline.
bool in_parallel_region() noexcept;

/// The number of chunks parallel_chunks would use for `n_items` right now:
/// min(threads(), n_items), and 1 inside a parallel region. Callers size
/// per-chunk accumulators with this and pass it back to parallel_chunks.
std::size_t plan_chunks(std::size_t n_items);

/// Runs fn(chunk, begin, end) for every chunk c in [0, n_chunks), where
/// [begin, end) is the contiguous slice [c*n/W, (c+1)*n/W) of [0, n_items).
/// Chunk 0 runs on the calling thread; the rest are dispatched to the pool.
/// Blocks until every chunk finished; the first exception thrown by any
/// chunk is rethrown on the caller.
void parallel_chunks(
    std::size_t n_items, std::size_t n_chunks,
    const std::function<void(std::size_t chunk, std::size_t begin,
                             std::size_t end)>& fn);

/// Runs fn(i) for every i in [0, n_items) across plan_chunks(n_items)
/// chunks. Use when per-item work is independent and order-free.
void parallel_for(std::size_t n_items,
                  const std::function<void(std::size_t i)>& fn);

/// Live pool telemetry for heartbeats and run summaries. All zeros until
/// the first parallel call creates the pool; lifetime counters reset when
/// set_threads() forces a pool rebuild.
struct PoolStats {
  std::size_t workers = 0;
  std::size_t queue_depth = 0;        ///< tasks waiting right now
  std::uint64_t tasks_submitted = 0;  ///< lifetime, this pool instance
  std::uint64_t tasks_completed = 0;  ///< lifetime, this pool instance
};

/// Snapshot of the current pool's counters (cheap; one mutex + two relaxed
/// loads). Safe to call from any thread, including pool workers.
PoolStats pool_stats();

}  // namespace litmus::par
