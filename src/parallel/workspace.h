// Per-thread reusable scratch buffers for parallel hot loops.
//
// A Workspace is a small arena of slotted vectors. Hot loops grab the
// calling thread's workspace once per chunk and reuse the same buffers
// across iterations, so the steady-state loop performs no heap
// allocation: buffers grow to the high-water mark on the first few
// iterations and are reused from then on (capacity is kept; clear()
// releases it).
//
// this_thread_workspace() is lazily initialized per thread and owned by
// the thread, so no synchronization is needed and two concurrent chunks
// can never alias each other's scratch.
//
// Returned references are stable: creating a new slot never invalidates a
// reference to an existing one (slots live in a deque, which does not
// relocate elements on growth), so callers may hold several slot
// references at once. Only clear() invalidates them.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace litmus::par {

class Workspace {
 public:
  /// The double buffer for `slot`, creating empty slots on demand.
  /// Contents are whatever the previous user left; callers must resize or
  /// clear before use.
  std::vector<double>& doubles(std::size_t slot);

  /// The index buffer for `slot`, creating empty slots on demand.
  std::vector<std::size_t>& indices(std::size_t slot);

  /// Releases all buffers and their capacity. Invalidates every reference
  /// previously returned by doubles()/indices().
  void clear() noexcept;

 private:
  // deque, not vector-of-vectors: growing the slot table must not move
  // existing slots, or references handed out earlier would dangle.
  std::deque<std::vector<double>> doubles_;
  std::deque<std::vector<std::size_t>> indices_;
};

/// The calling thread's lazily-created workspace. Valid for the thread's
/// lifetime.
Workspace& this_thread_workspace();

}  // namespace litmus::par
