// Per-thread reusable scratch buffers for parallel hot loops.
//
// A Workspace is a small arena of slotted vectors. Hot loops grab the
// calling thread's workspace once per chunk and reuse the same buffers
// across iterations, so the steady-state loop performs no heap
// allocation: buffers grow to the high-water mark on the first few
// iterations and are reused from then on (capacity is kept; clear()
// releases it).
//
// this_thread_workspace() is lazily initialized per thread and owned by
// the thread, so no synchronization is needed and two concurrent chunks
// can never alias each other's scratch.
#pragma once

#include <cstddef>
#include <vector>

namespace litmus::par {

class Workspace {
 public:
  /// The double buffer for `slot`, creating empty slots on demand.
  /// Contents are whatever the previous user left; callers must resize or
  /// clear before use.
  std::vector<double>& doubles(std::size_t slot);

  /// The index buffer for `slot`, creating empty slots on demand.
  std::vector<std::size_t>& indices(std::size_t slot);

  /// Releases all buffers and their capacity.
  void clear() noexcept;

 private:
  std::vector<std::vector<double>> doubles_;
  std::vector<std::vector<std::size_t>> indices_;
};

/// The calling thread's lazily-created workspace. Valid for the thread's
/// lifetime.
Workspace& this_thread_workspace();

}  // namespace litmus::par
