// Queryable change-management log.
//
// Besides storage and retrieval, the log answers the operational questions
// the paper raises: which changes hit an element (or its impact scope) in a
// window, and whether an assessment window is *contaminated* by other
// changes — the Section 2.5 "network events" confound and the reason
// control-group elements can never be assumed clean.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "cellnet/topology.h"
#include "changelog/change_record.h"

namespace litmus::chg {

class ChangeLog {
 public:
  /// Appends a record; assigns and returns its id.
  ChangeId add(ChangeRecord record);

  std::size_t size() const noexcept { return records_.size(); }
  std::span<const ChangeRecord> all() const noexcept { return records_; }

  std::optional<ChangeRecord> find(ChangeId id) const;

  /// Changes applied directly at `element`, ordered by bin.
  std::vector<ChangeRecord> at_element(net::ElementId element) const;

  /// Changes with effect bin in [from, to), ordered by bin.
  std::vector<ChangeRecord> in_window(std::int64_t from,
                                      std::int64_t to) const;

  /// Changes in [from, to) whose target element lies inside the impact
  /// scope of `element` (subtree + tower neighbors), excluding `exclude_id`.
  /// This is the contamination check run before trusting an assessment
  /// window.
  std::vector<ChangeRecord> conflicting_changes(const net::Topology& topo,
                                                net::ElementId element,
                                                std::int64_t from,
                                                std::int64_t to,
                                                ChangeId exclude_id) const;

  /// True when the assessment window [change_bin - lookback, change_bin +
  /// lookahead) around `record` is free of other changes in its scope.
  bool window_is_clean(const net::Topology& topo, const ChangeRecord& record,
                       std::int64_t lookback, std::int64_t lookahead) const;

 private:
  std::vector<ChangeRecord> records_;
  ChangeId next_id_ = 1;
};

/// Precomputed element -> records index over a ChangeLog. Its
/// conflicting_changes returns exactly what ChangeLog::conflicting_changes
/// returns, but costs O(|scope| + hits·log hits) per query instead of a
/// full-log scan — the difference between O(M) and O(M²) total on a
/// million-record batch sweep. The index borrows the log: it must not
/// outlive it, and a log mutated after construction invalidates it.
class ChangeIndex {
 public:
  explicit ChangeIndex(const ChangeLog& log);

  std::vector<ChangeRecord> conflicting_changes(const net::Topology& topo,
                                                net::ElementId element,
                                                std::int64_t from,
                                                std::int64_t to,
                                                ChangeId exclude_id) const;

 private:
  const ChangeLog* log_;
  /// Record indices (ascending, i.e. log order) per target element.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_element_;
};

}  // namespace litmus::chg
