// Queryable change-management log.
//
// Besides storage and retrieval, the log answers the operational questions
// the paper raises: which changes hit an element (or its impact scope) in a
// window, and whether an assessment window is *contaminated* by other
// changes — the Section 2.5 "network events" confound and the reason
// control-group elements can never be assumed clean.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "cellnet/topology.h"
#include "changelog/change_record.h"

namespace litmus::chg {

class ChangeLog {
 public:
  /// Appends a record; assigns and returns its id.
  ChangeId add(ChangeRecord record);

  std::size_t size() const noexcept { return records_.size(); }
  std::span<const ChangeRecord> all() const noexcept { return records_; }

  std::optional<ChangeRecord> find(ChangeId id) const;

  /// Changes applied directly at `element`, ordered by bin.
  std::vector<ChangeRecord> at_element(net::ElementId element) const;

  /// Changes with effect bin in [from, to), ordered by bin.
  std::vector<ChangeRecord> in_window(std::int64_t from,
                                      std::int64_t to) const;

  /// Changes in [from, to) whose target element lies inside the impact
  /// scope of `element` (subtree + tower neighbors), excluding `exclude_id`.
  /// This is the contamination check run before trusting an assessment
  /// window.
  std::vector<ChangeRecord> conflicting_changes(const net::Topology& topo,
                                                net::ElementId element,
                                                std::int64_t from,
                                                std::int64_t to,
                                                ChangeId exclude_id) const;

  /// True when the assessment window [change_bin - lookback, change_bin +
  /// lookahead) around `record` is free of other changes in its scope.
  bool window_is_clean(const net::Topology& topo, const ChangeRecord& record,
                       std::int64_t lookback, std::int64_t lookahead) const;

 private:
  std::vector<ChangeRecord> records_;
  ChangeId next_id_ = 1;
};

}  // namespace litmus::chg
