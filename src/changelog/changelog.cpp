#include "changelog/changelog.h"

#include <algorithm>

namespace litmus::chg {

ChangeId ChangeLog::add(ChangeRecord record) {
  record.id = next_id_++;
  const ChangeId id = record.id;
  records_.push_back(std::move(record));
  return id;
}

std::optional<ChangeRecord> ChangeLog::find(ChangeId id) const {
  for (const auto& r : records_)
    if (r.id == id) return r;
  return std::nullopt;
}

std::vector<ChangeRecord> ChangeLog::at_element(net::ElementId element) const {
  std::vector<ChangeRecord> out;
  for (const auto& r : records_)
    if (r.element == element) out.push_back(r);
  // Stable: ties on bin keep log order, so query results are a pure
  // function of the log's contents (and indexed queries can match them).
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.bin < b.bin; });
  return out;
}

std::vector<ChangeRecord> ChangeLog::in_window(std::int64_t from,
                                               std::int64_t to) const {
  std::vector<ChangeRecord> out;
  for (const auto& r : records_)
    if (r.bin >= from && r.bin < to) out.push_back(r);
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) { return a.bin < b.bin; });
  return out;
}

std::vector<ChangeRecord> ChangeLog::conflicting_changes(
    const net::Topology& topo, net::ElementId element, std::int64_t from,
    std::int64_t to, ChangeId exclude_id) const {
  const auto scope = topo.impact_scope(element);
  std::vector<ChangeRecord> out;
  for (const auto& r : in_window(from, to)) {
    if (r.id == exclude_id) continue;
    if (scope.contains(r.element)) out.push_back(r);
  }
  return out;
}

ChangeIndex::ChangeIndex(const ChangeLog& log) : log_(&log) {
  const auto records = log.all();
  for (std::size_t i = 0; i < records.size(); ++i)
    by_element_[records[i].element.value].push_back(i);
}

std::vector<ChangeRecord> ChangeIndex::conflicting_changes(
    const net::Topology& topo, net::ElementId element, std::int64_t from,
    std::int64_t to, ChangeId exclude_id) const {
  const auto scope = topo.impact_scope(element);
  const auto records = log_->all();
  std::vector<std::size_t> hits;
  for (const auto s : scope) {
    const auto it = by_element_.find(s.value);
    if (it == by_element_.end()) continue;
    for (const std::size_t i : it->second) {
      const auto& r = records[i];
      if (r.bin >= from && r.bin < to && r.id != exclude_id)
        hits.push_back(i);
    }
  }
  // Log order first (neutralizes the unordered scope iteration), then a
  // stable sort by bin: identical ordering to filtering the stable-sorted
  // in_window() result, i.e. to ChangeLog::conflicting_changes.
  std::sort(hits.begin(), hits.end());
  std::stable_sort(hits.begin(), hits.end(),
                   [&](std::size_t a, std::size_t b) {
                     return records[a].bin < records[b].bin;
                   });
  std::vector<ChangeRecord> out;
  out.reserve(hits.size());
  for (const std::size_t i : hits) out.push_back(records[i]);
  return out;
}

bool ChangeLog::window_is_clean(const net::Topology& topo,
                                const ChangeRecord& record,
                                std::int64_t lookback,
                                std::int64_t lookahead) const {
  return conflicting_changes(topo, record.element, record.bin - lookback,
                             record.bin + lookahead, record.id)
      .empty();
}

}  // namespace litmus::chg
