#include "changelog/changelog.h"

#include <algorithm>

namespace litmus::chg {

ChangeId ChangeLog::add(ChangeRecord record) {
  record.id = next_id_++;
  const ChangeId id = record.id;
  records_.push_back(std::move(record));
  return id;
}

std::optional<ChangeRecord> ChangeLog::find(ChangeId id) const {
  for (const auto& r : records_)
    if (r.id == id) return r;
  return std::nullopt;
}

std::vector<ChangeRecord> ChangeLog::at_element(net::ElementId element) const {
  std::vector<ChangeRecord> out;
  for (const auto& r : records_)
    if (r.element == element) out.push_back(r);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.bin < b.bin; });
  return out;
}

std::vector<ChangeRecord> ChangeLog::in_window(std::int64_t from,
                                               std::int64_t to) const {
  std::vector<ChangeRecord> out;
  for (const auto& r : records_)
    if (r.bin >= from && r.bin < to) out.push_back(r);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.bin < b.bin; });
  return out;
}

std::vector<ChangeRecord> ChangeLog::conflicting_changes(
    const net::Topology& topo, net::ElementId element, std::int64_t from,
    std::int64_t to, ChangeId exclude_id) const {
  const auto scope = topo.impact_scope(element);
  std::vector<ChangeRecord> out;
  for (const auto& r : in_window(from, to)) {
    if (r.id == exclude_id) continue;
    if (scope.contains(r.element)) out.push_back(r);
  }
  return out;
}

bool ChangeLog::window_is_clean(const net::Topology& topo,
                                const ChangeRecord& record,
                                std::int64_t lookback,
                                std::int64_t lookahead) const {
  return conflicting_changes(topo, record.element, record.bin - lookback,
                             record.bin + lookahead, record.id)
      .empty();
}

}  // namespace litmus::chg
