#include "changelog/change_record.h"

namespace litmus::chg {

const char* to_string(ChangeType t) noexcept {
  switch (t) {
    case ChangeType::kConfigChange: return "config_change";
    case ChangeType::kSoftwareUpgrade: return "software_upgrade";
    case ChangeType::kFeatureActivation: return "feature_activation";
    case ChangeType::kTopologyChange: return "topology_change";
    case ChangeType::kHardwareUpgrade: return "hardware_upgrade";
    case ChangeType::kTrafficMove: return "traffic_move";
  }
  return "?";
}

const char* to_string(ChangeFrequency f) noexcept {
  switch (f) {
    case ChangeFrequency::kHigh: return "high";
    case ChangeFrequency::kLow: return "low";
  }
  return "?";
}

const char* to_string(Expectation e) noexcept {
  switch (e) {
    case Expectation::kImprovement: return "improvement";
    case Expectation::kDegradation: return "degradation";
    case Expectation::kNoImpact: return "no_impact";
  }
  return "?";
}

}  // namespace litmus::chg
