// Change-management records (paper Section 2.2, "Network change management
// logs", and Section 2.3's high/low-frequency taxonomy).
#pragma once

#include <cstdint>
#include <string>

#include "cellnet/types.h"
#include "kpi/kpi.h"

namespace litmus::chg {

enum class ChangeType : std::uint8_t {
  kConfigChange,       ///< parameter tuning (antenna tilt, timers, ...)
  kSoftwareUpgrade,
  kFeatureActivation,  ///< new feature switched on (e.g. SON)
  kTopologyChange,     ///< re-homes of network equipment
  kHardwareUpgrade,
  kTrafficMove,        ///< traffic movements across data centers
};

const char* to_string(ChangeType t) noexcept;

/// Paper Section 2.3: high-frequency parameters respond to live conditions;
/// low-frequency "gold standard" parameters change with releases only.
enum class ChangeFrequency : std::uint8_t { kHigh, kLow };

const char* to_string(ChangeFrequency f) noexcept;

/// The Engineering teams' a-priori expectation for a change (Table 2,
/// "Impact Expectation"): improvement, degradation, or no impact.
enum class Expectation : std::uint8_t {
  kImprovement,
  kDegradation,
  kNoImpact,
};

const char* to_string(Expectation e) noexcept;

using ChangeId = std::uint32_t;

struct ChangeRecord {
  ChangeId id = 0;
  net::ElementId element;               ///< where the change is applied
  ChangeType type = ChangeType::kConfigChange;
  ChangeFrequency frequency = ChangeFrequency::kLow;
  std::int64_t bin = 0;                 ///< when it took effect
  std::string description;
  std::string parameter;                ///< affected parameter, if any
  Expectation expectation = Expectation::kNoImpact;
  kpi::KpiId target_kpi = kpi::KpiId::kVoiceRetainability;  ///< primary KPI
  bool is_ffa = false;                  ///< First Field Application trial
};

}  // namespace litmus::chg
