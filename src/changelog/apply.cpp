#include "changelog/apply.h"

#include <charconv>
#include <stdexcept>
#include <optional>

namespace litmus::chg {
namespace {

std::optional<std::pair<std::string, std::string>> split_assignment(
    const std::string& s) {
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= s.size())
    return std::nullopt;
  return std::make_pair(s.substr(0, eq), s.substr(eq + 1));
}

std::optional<double> to_double(const std::string& s) {
  double v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<int> to_int(const std::string& s) {
  int v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return std::nullopt;
  return v;
}

ApplyResult fail(const std::string& why) { return {false, why}; }
ApplyResult ok(const std::string& what) { return {true, what}; }

ApplyResult apply_config_change(const std::string& parameter,
                                net::ConfigSnapshot& config) {
  const auto kv = split_assignment(parameter);
  if (!kv) return fail("config change needs key=value, got '" + parameter + "'");
  const auto& [key, value] = *kv;

  if (key == "antenna.tilt_deg") {
    const auto v = to_double(value);
    if (!v) return fail("bad tilt value");
    config.antenna.tilt_deg = *v;
    return ok("antenna tilt -> " + value);
  }
  if (key == "antenna.tx_power_dbm") {
    const auto v = to_double(value);
    if (!v) return fail("bad power value");
    config.antenna.tx_power_dbm = *v;
    return ok("tx power -> " + value + " dBm");
  }
  if (key == "gold.radio_link_failure_timer_ms") {
    const auto v = to_int(value);
    if (!v || *v <= 0) return fail("bad timer value");
    config.gold.radio_link_failure_timer_ms = *v;
    return ok("RLF timer -> " + value + " ms");
  }
  if (key == "gold.handover_time_to_trigger_ms") {
    const auto v = to_int(value);
    if (!v || *v <= 0) return fail("bad time-to-trigger value");
    config.gold.handover_time_to_trigger_ms = *v;
    return ok("time-to-trigger -> " + value + " ms");
  }
  if (key == "gold.access_threshold_dbm") {
    const auto v = to_int(value);
    if (!v) return fail("bad threshold value");
    config.gold.access_threshold_dbm = *v;
    return ok("access threshold -> " + value + " dBm");
  }
  if (key == "gold.max_power_limit_dbm") {
    const auto v = to_int(value);
    if (!v) return fail("bad power limit");
    config.gold.max_power_limit_dbm = *v;
    return ok("max power limit -> " + value + " dBm");
  }
  return fail("unknown config parameter '" + key + "'");
}

}  // namespace

ApplyResult apply_change(const ChangeRecord& record, net::Topology& topo) {
  if (!topo.contains(record.element))
    return fail("unknown element " + std::to_string(record.element.value));

  switch (record.type) {
    case ChangeType::kSoftwareUpgrade: {
      const auto version = net::SoftwareVersion::parse(record.parameter);
      if (!version)
        return fail("unparsable version '" + record.parameter + "'");
      topo.mutable_config(record.element).software = *version;
      return ok("software -> " + version->to_string());
    }
    case ChangeType::kHardwareUpgrade: {
      const auto kv = split_assignment(record.parameter);
      if (!kv || kv->first != "model")
        return fail("hardware upgrade needs model=<name>");
      topo.mutable_config(record.element).equipment_model = kv->second;
      return ok("equipment model -> " + kv->second);
    }
    case ChangeType::kFeatureActivation: {
      const auto kv = split_assignment(record.parameter);
      if (!kv || kv->first != "son" ||
          (kv->second != "on" && kv->second != "off"))
        return fail("feature activation needs son=on|off");
      topo.mutable_config(record.element).son_enabled = kv->second == "on";
      return ok("SON -> " + kv->second);
    }
    case ChangeType::kTopologyChange: {
      const auto kv = split_assignment(record.parameter);
      if (!kv || kv->first != "parent")
        return fail("topology change needs parent=<id>");
      const auto parent = to_int(kv->second);
      if (!parent || *parent <= 0) return fail("bad parent id");
      try {
        topo.rehome(record.element,
                    net::ElementId{static_cast<std::uint32_t>(*parent)});
      } catch (const std::invalid_argument& e) {
        return fail(e.what());
      }
      return ok("re-homed under " + kv->second);
    }
    case ChangeType::kConfigChange:
      return apply_config_change(record.parameter,
                                 topo.mutable_config(record.element));
    case ChangeType::kTrafficMove:
      return ok("traffic move recorded (no configuration effect)");
  }
  return fail("unhandled change type");
}

}  // namespace litmus::chg
