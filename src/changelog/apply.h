// Applying change records to the network's configuration state.
//
// The change-management log describes changes; this module executes them
// against a Topology, closing the loop so the same record that schedules an
// assessment also documents exactly what moved. Parameter grammar
// (`ChangeRecord::parameter`):
//
//   kSoftwareUpgrade    "5.3.1"                        new software version
//   kHardwareUpgrade    "model=RBS6601"                new equipment model
//   kFeatureActivation  "son=on" | "son=off"           SON feature toggle
//   kTopologyChange     "parent=17"                    re-home under id 17
//   kConfigChange       "antenna.tilt_deg=4.5"
//                       "antenna.tx_power_dbm=44"
//                       "gold.radio_link_failure_timer_ms=4000"
//                       "gold.handover_time_to_trigger_ms=256"
//                       "gold.access_threshold_dbm=-108"
//                       "gold.max_power_limit_dbm=45"
//   kTrafficMove        (no configuration effect)
#pragma once

#include <string>

#include "cellnet/topology.h"
#include "changelog/change_record.h"

namespace litmus::chg {

struct ApplyResult {
  bool applied = false;
  std::string message;  ///< what changed, or why nothing did
};

/// Applies `record` to `topo`. Unknown elements, unparsable parameters and
/// invalid re-homes return applied == false with an explanatory message
/// (never throws for data errors — change logs are operator input).
ApplyResult apply_change(const ChangeRecord& record, net::Topology& topo);

}  // namespace litmus::chg
