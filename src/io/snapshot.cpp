#include "io/snapshot.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "io/ingest.h"
#include "obs/manifest.h"
#include "obs/trace.h"

namespace litmus::io {
namespace {

constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 4 + 4 + 8;

/// Append-only little serializer: fixed-width fields memcpy'd into a
/// byte buffer (no struct padding, no endian surprises on LE hosts; a
/// foreign-endian reader is rejected by the endian tag).
struct ByteSink {
  std::string bytes;

  void raw(const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
};

/// Bounds-checked reader over the mapped snapshot.
struct ByteSource {
  const char* p;
  const char* end;

  bool raw(void* out, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    std::memcpy(out, p, n);
    p += n;
    return true;
  }
  template <typename T>
  bool get(T& out) {
    return raw(&out, sizeof out);
  }
  std::size_t remaining() const {
    return static_cast<std::size_t>(end - p);
  }
};

}  // namespace

std::string snapshot_cache_path(const std::string& dir, std::uint64_t key) {
  char hex[20];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(key));
  return dir + "/" + hex + std::string(kSnapshotSuffix);
}

std::optional<SnapshotMeta> read_snapshot_meta(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  char header[kHeaderBytes];
  if (!f.read(header, kHeaderBytes)) return std::nullopt;

  ByteSource in{header, header + kHeaderBytes};
  char magic[8];
  std::uint32_t version = 0, endian = 0;
  SnapshotMeta meta;
  in.raw(magic, sizeof magic);
  in.get(version);
  in.get(endian);
  in.get(meta.fingerprint);
  in.get(meta.source_bytes);
  in.get(meta.source_mtime_ns);

  if (std::memcmp(magic, kSnapshotMagic.data(), kSnapshotMagic.size()) != 0)
    return std::nullopt;
  if (version != kSnapshotVersion || endian != kEndianTag)
    return std::nullopt;
  return meta;
}

void refresh_snapshot_mtime(const std::string& path,
                            std::uint64_t source_mtime_ns) noexcept {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  // magic(8) + version(4) + endian(4) + fingerprint(8) + source_bytes(8)
  f.seekp(32);
  f.write(reinterpret_cast<const char*>(&source_mtime_ns),
          sizeof source_mtime_ns);
}

SnapshotWriter::SnapshotWriter(const std::string& path,
                               std::uint64_t source_fingerprint,
                               std::uint64_t source_bytes,
                               std::uint64_t source_mtime_ns)
    : path_(path),
      out_(obs::open_output_file(path)),
      payload_fnv_(14695981039346656037ull) {  // FNV-1a offset basis
  ByteSink header;
  header.raw(kSnapshotMagic.data(), kSnapshotMagic.size());
  header.u32(kSnapshotVersion);
  header.u32(kEndianTag);
  header.u64(source_fingerprint);
  header.u64(source_bytes);
  header.u64(source_mtime_ns);
  header.u64(0);  // n_series, patched in finish()
  header.u64(0);  // payload_bytes, patched in finish()
  out_.write(header.bytes.data(),
             static_cast<std::streamsize>(header.bytes.size()));
}

SnapshotWriter::~SnapshotWriter() {
  try {
    finish();
  } catch (...) {
    // A destructor cannot report I/O failure; callers that care call
    // finish() explicitly and see the throw.
  }
}

void SnapshotWriter::append(net::ElementId element, kpi::KpiId kpi,
                            const ts::TimeSeries& series) {
  append(element.value, kpi, series.start_bin(), series.bin_minutes(),
         series.values());
}

void SnapshotWriter::append(std::uint32_t element, kpi::KpiId kpi,
                            std::int64_t start_bin, std::int32_t bin_minutes,
                            std::span<const double> values) {
  ByteSink rec;
  rec.u32(element);
  rec.u32(static_cast<std::uint32_t>(kpi));
  rec.i64(start_bin);
  rec.i32(bin_minutes);
  rec.u32(0);  // reserved
  rec.u64(values.size());
  rec.raw(values.data(), values.size() * sizeof(double));
  out_.write(rec.bytes.data(),
             static_cast<std::streamsize>(rec.bytes.size()));
  payload_fnv_ =
      obs::fnv1a64(rec.bytes.data(), rec.bytes.size(), payload_fnv_);
  payload_bytes_ += rec.bytes.size();
  ++n_series_;
}

void SnapshotWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.write(reinterpret_cast<const char*>(&payload_fnv_),
             sizeof payload_fnv_);
  // magic(8) + version(4) + endian(4) + fingerprint(8) + source_bytes(8)
  // + source_mtime_ns(8) = 40: the n_series / payload_bytes slots.
  out_.seekp(40);
  out_.write(reinterpret_cast<const char*>(&n_series_), sizeof n_series_);
  out_.write(reinterpret_cast<const char*>(&payload_bytes_),
             sizeof payload_bytes_);
  out_.flush();
  if (!out_) throw std::runtime_error("cannot write snapshot: " + path_);
}

void save_series_snapshot(const std::string& path, const SeriesStore& store,
                          std::uint64_t source_fingerprint,
                          std::uint64_t source_bytes,
                          std::uint64_t source_mtime_ns) {
  obs::ScopedSpan span("snapshot.save");
  SnapshotWriter writer(path, source_fingerprint, source_bytes,
                        source_mtime_ns);
  for (const auto& [key, series] : store.entries())
    writer.append(key.first, key.second, series.start_bin(),
                  series.bin_minutes(), series.values());
  writer.finish();
}

SnapshotLoad load_series_snapshot(const std::string& path, SeriesStore& store,
                                  std::uint64_t expected_fingerprint,
                                  std::uint64_t expected_bytes,
                                  std::string* why) {
  obs::ScopedSpan span("snapshot.load");
  const auto stale = [&](const char* reason) {
    if (why) *why = reason;
    return SnapshotLoad::kStale;
  };

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return SnapshotLoad::kMissing;

  InputBuffer buf;
  try {
    buf = InputBuffer::map_file(path);
  } catch (const std::runtime_error&) {
    return stale("unreadable");
  }
  if (buf.size() < kHeaderBytes + sizeof(std::uint64_t))
    return stale("truncated header");

  ByteSource in{buf.view().data(), buf.view().data() + buf.size()};
  char magic[8];
  std::uint32_t version = 0, endian = 0;
  std::uint64_t fingerprint = 0, source_bytes = 0, source_mtime_ns = 0,
                n_series = 0, payload_bytes = 0;
  in.raw(magic, sizeof magic);
  in.get(version);
  in.get(endian);
  in.get(fingerprint);
  in.get(source_bytes);
  in.get(source_mtime_ns);
  in.get(n_series);
  in.get(payload_bytes);

  if (std::memcmp(magic, kSnapshotMagic.data(), kSnapshotMagic.size()) != 0)
    return stale("bad magic");
  if (version != kSnapshotVersion) return stale("version mismatch");
  if (endian != kEndianTag) return stale("foreign endianness");
  if (fingerprint != expected_fingerprint)
    return stale("source fingerprint changed");
  if (source_bytes != expected_bytes) return stale("source size changed");
  if (in.remaining() != payload_bytes + sizeof(std::uint64_t))
    return stale("payload size mismatch");

  const char* const payload = in.p;
  std::uint64_t recorded_fnv = 0;
  std::memcpy(&recorded_fnv, payload + payload_bytes, sizeof recorded_fnv);
  if (obs::fnv1a64(payload, payload_bytes) != recorded_fnv)
    return stale("payload checksum mismatch");

  // Decode into a scratch store first so a malformed payload (despite the
  // checksum, e.g. a truncated record count) never half-updates `store`.
  ByteSource rec{payload, payload + payload_bytes};
  SeriesStore scratch;
  for (std::uint64_t s = 0; s < n_series; ++s) {
    std::uint32_t element = 0, kpi_raw = 0, reserved = 0;
    std::int64_t start_bin = 0;
    std::int32_t bin_minutes = 0;
    std::uint64_t n_values = 0;
    if (rec.remaining() < kRecordHeaderBytes)
      return stale("truncated record header");
    rec.get(element);
    rec.get(kpi_raw);
    rec.get(start_bin);
    rec.get(bin_minutes);
    rec.get(reserved);
    rec.get(n_values);
    if (kpi_raw >
        static_cast<std::uint32_t>(kpi::KpiId::kDroppedVoiceCallRatio))
      return stale("unknown KPI id");
    if (n_values > rec.remaining() / sizeof(double))
      return stale("truncated values");
    std::vector<double> values(static_cast<std::size_t>(n_values));
    rec.raw(values.data(), values.size() * sizeof(double));
    scratch.put(net::ElementId{element}, static_cast<kpi::KpiId>(kpi_raw),
                ts::TimeSeries(start_bin, std::move(values), bin_minutes));
  }
  if (rec.remaining() != 0) return stale("trailing bytes after records");

  store.absorb(std::move(scratch));
  return SnapshotLoad::kLoaded;
}

}  // namespace litmus::io
