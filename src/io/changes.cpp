#include "io/changes.h"

#include <stdexcept>

#include "io/csv.h"

namespace litmus::io {

std::optional<chg::ChangeType> parse_change_type(const std::string& s) {
  using chg::ChangeType;
  for (const auto t :
       {ChangeType::kConfigChange, ChangeType::kSoftwareUpgrade,
        ChangeType::kFeatureActivation, ChangeType::kTopologyChange,
        ChangeType::kHardwareUpgrade, ChangeType::kTrafficMove})
    if (s == chg::to_string(t)) return t;
  return std::nullopt;
}

std::optional<chg::Expectation> parse_expectation(const std::string& s) {
  using chg::Expectation;
  for (const auto e : {Expectation::kImprovement, Expectation::kDegradation,
                       Expectation::kNoImpact})
    if (s == chg::to_string(e)) return e;
  return std::nullopt;
}

std::size_t load_changes_csv(std::istream& in, chg::ChangeLog& log) {
  std::size_t count = 0;
  CsvReader reader(in, "changes csv");
  while (const auto row = reader.next()) {
    reader.require_fields(*row, 7);
    const auto element = parse_int((*row)[0]);
    if (!element || *element <= 0)
      reader.fail("bad element id '" + (*row)[0] + "'");
    const auto type = parse_change_type((*row)[1]);
    if (!type) reader.fail("unknown change type '" + (*row)[1] + "'");
    const auto bin = parse_int((*row)[2]);
    if (!bin) reader.fail("bad bin '" + (*row)[2] + "'");
    const auto expectation = parse_expectation((*row)[3]);
    if (!expectation) reader.fail("unknown expectation '" + (*row)[3] + "'");
    const auto kpi = kpi::parse_kpi((*row)[4]);
    if (!kpi) reader.fail("unknown KPI '" + (*row)[4] + "'");

    chg::ChangeRecord r;
    r.element = net::ElementId{static_cast<std::uint32_t>(*element)};
    r.type = *type;
    r.bin = *bin;
    r.expectation = *expectation;
    r.target_kpi = *kpi;
    r.parameter = (*row)[5];
    r.description = (*row)[6];
    log.add(std::move(r));
    ++count;
  }
  return count;
}

void save_changes_csv(std::ostream& out, const chg::ChangeLog& log) {
  out << "# element_id, type, bin, expectation, target_kpi, parameter, "
         "description\n";
  for (const auto& r : log.all()) {
    write_csv_row(out, {std::to_string(r.element.value),
                        chg::to_string(r.type), std::to_string(r.bin),
                        chg::to_string(r.expectation),
                        std::string(kpi::to_string(r.target_kpi)),
                        r.parameter, r.description});
  }
}

}  // namespace litmus::io
