#include "io/mapped_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "obs/events.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace litmus::io {
namespace {

// Snapshot layout constants, mirroring io/snapshot.cpp (the format doc in
// io/snapshot.h is the single source of truth for both).
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8 + 4 + 4 + 8;

/// Major page-fault count of this process (/proc/self/stat field 12);
/// 0 where unsupported. The comm field may contain spaces or ')', so the
/// numeric fields are parsed from after the *last* ')'.
std::uint64_t proc_major_faults() noexcept {
  std::FILE* f = std::fopen("/proc/self/stat", "r");
  if (!f) return 0;
  char buf[1024];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  const char* p = std::strrchr(buf, ')');
  if (!p) return 0;
  ++p;
  // Fields after comm: state ppid pgrp session tty_nr tpgid flags minflt
  // cminflt majflt ... — majflt is the 10th token after ')'.
  unsigned long long majflt = 0;
  if (std::sscanf(p, " %*c %*d %*d %*d %*d %*d %*u %*u %*u %llu",
                  &majflt) != 1)
    return 0;
  return majflt;
}

void record_store_metrics(const MappedStore::OpenStats& st) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  reg.counter("store.opens").add();
  reg.gauge("store.open_seconds").set(st.seconds);
  reg.gauge("store.bytes_mapped")
      .set(static_cast<double>(st.bytes_mapped));
  reg.gauge("store.series").set(static_cast<double>(st.series));
  reg.gauge("store.majflt_delta")
      .set(static_cast<double>(st.major_faults));
}

bool entry_key_less(const MappedStore::Entry& a,
                    const MappedStore::Entry& b) noexcept {
  return a.key < b.key;
}

}  // namespace

void MappedStore::SeriesView::copy_range_into(
    std::int64_t from_bin, std::span<double> out) const noexcept {
  std::fill(out.begin(), out.end(), ts::kMissing);
  const std::int64_t to_bin =
      from_bin + static_cast<std::int64_t>(out.size());
  const std::int64_t lo = std::max(from_bin, start_bin);
  const std::int64_t hi = std::min(to_bin, end_bin());
  if (lo >= hi) return;
  std::memcpy(out.data() + (lo - from_bin),
              values.data() + (lo - start_bin),
              static_cast<std::size_t>(hi - lo) * sizeof(double));
}

std::unique_ptr<MappedStore> MappedStore::open(const std::string& path,
                                               std::string* why) {
  obs::ScopedSpan span("store.open");
  const std::uint64_t t0 = obs::now_ns();
  const std::uint64_t majflt0 = proc_major_faults();
  const auto fail = [&](const char* reason) {
    if (why) *why = reason;
    return std::unique_ptr<MappedStore>{};
  };

  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return fail("missing");

  std::unique_ptr<MappedStore> store(new MappedStore());
  store->path_ = path;
  try {
    store->buf_ = InputBuffer::map_file_shared(path);
  } catch (const std::runtime_error&) {
    return fail("unreadable");
  }
  const std::string_view data = store->buf_.view();
  if (data.size() < kHeaderBytes + sizeof(std::uint64_t))
    return fail("truncated header");

  const char* p = data.data();
  char magic[8];
  std::uint32_t version = 0, endian = 0;
  std::uint64_t n_series = 0, payload_bytes = 0;
  std::memcpy(magic, p, 8);
  std::memcpy(&version, p + 8, 4);
  std::memcpy(&endian, p + 12, 4);
  std::memcpy(&store->meta_.fingerprint, p + 16, 8);
  std::memcpy(&store->meta_.source_bytes, p + 24, 8);
  std::memcpy(&store->meta_.source_mtime_ns, p + 32, 8);
  std::memcpy(&n_series, p + 40, 8);
  std::memcpy(&payload_bytes, p + 48, 8);

  if (std::memcmp(magic, kSnapshotMagic.data(), kSnapshotMagic.size()) != 0)
    return fail("bad magic");
  if (version != kSnapshotVersion) return fail("version mismatch");
  if (endian != kEndianTag) return fail("foreign endianness");
  if (data.size() - kHeaderBytes != payload_bytes + sizeof(std::uint64_t))
    return fail("payload size mismatch");

  const char* const payload = p + kHeaderBytes;
  std::uint64_t recorded_fnv = 0;
  std::memcpy(&recorded_fnv, payload + payload_bytes, sizeof recorded_fnv);
  if (obs::fnv1a64(payload, payload_bytes) != recorded_fnv)
    return fail("payload checksum mismatch");

  // Walk the record table, building the key-sorted index of zero-copy
  // views. The checksum above covers every payload byte, but record-level
  // structure (counts, KPI ids) is still validated so a snapshot written
  // by a buggy producer is rejected rather than served.
  store->index_.reserve(static_cast<std::size_t>(n_series));
  const char* rp = payload;
  const char* const rend = payload + payload_bytes;
  for (std::uint64_t s = 0; s < n_series; ++s) {
    if (static_cast<std::size_t>(rend - rp) < kRecordHeaderBytes)
      return fail("truncated record header");
    std::uint32_t element = 0, kpi_raw = 0;
    std::int64_t start_bin = 0;
    std::int32_t bin_minutes = 0;
    std::uint64_t n_values = 0;
    std::memcpy(&element, rp, 4);
    std::memcpy(&kpi_raw, rp + 4, 4);
    std::memcpy(&start_bin, rp + 8, 8);
    std::memcpy(&bin_minutes, rp + 16, 4);
    std::memcpy(&n_values, rp + 24, 8);
    rp += kRecordHeaderBytes;
    if (kpi_raw >
        static_cast<std::uint32_t>(kpi::KpiId::kDroppedVoiceCallRatio))
      return fail("unknown KPI id");
    if (n_values > static_cast<std::size_t>(rend - rp) / sizeof(double))
      return fail("truncated values");
    Entry e;
    e.key = {element, static_cast<kpi::KpiId>(kpi_raw)};
    e.view.start_bin = start_bin;
    e.view.bin_minutes = bin_minutes;
    // 8-byte alignment is a format guarantee (io/snapshot.h): header 56B,
    // record headers 32B, value columns n*8B.
    e.view.values = std::span<const double>(
        reinterpret_cast<const double*>(rp),
        static_cast<std::size_t>(n_values));
    store->index_.push_back(e);
    rp += n_values * sizeof(double);
  }
  if (rp != rend) return fail("trailing bytes after records");

  // Both writers emit records ascending by key (SnapshotWriter contract,
  // std::map iteration); keep the O(n) verify with a sort fallback so a
  // foreign-but-valid snapshot still serves, with last-wins duplicate
  // semantics matching SeriesStore::put.
  if (!std::is_sorted(store->index_.begin(), store->index_.end(),
                      entry_key_less)) {
    std::stable_sort(store->index_.begin(), store->index_.end(),
                     entry_key_less);
    std::vector<Entry> dedup;
    dedup.reserve(store->index_.size());
    for (std::size_t i = 0; i < store->index_.size(); ++i)
      if (i + 1 == store->index_.size() ||
          store->index_[i + 1].key != store->index_[i].key)
        dedup.push_back(store->index_[i]);
    store->index_ = std::move(dedup);
  }

  store->open_stats_.seconds =
      static_cast<double>(obs::now_ns() - t0) / 1e9;
  store->open_stats_.bytes_mapped = store->buf_.size();
  store->open_stats_.series = store->index_.size();
  const std::uint64_t majflt1 = proc_major_faults();
  store->open_stats_.major_faults =
      majflt1 >= majflt0 ? majflt1 - majflt0 : 0;
  record_store_metrics(store->open_stats_);
  return store;
}

std::unique_ptr<MappedStore> MappedStore::open_for_source(
    const std::string& path, std::uint64_t expected_fingerprint,
    std::uint64_t expected_bytes, std::string* why) {
  auto store = open(path, why);
  if (!store) return nullptr;
  if (store->meta_.fingerprint != expected_fingerprint) {
    if (why) *why = "source fingerprint changed";
    return nullptr;
  }
  if (store->meta_.source_bytes != expected_bytes) {
    if (why) *why = "source size changed";
    return nullptr;
  }
  return store;
}

bool MappedStore::contains(net::ElementId element, kpi::KpiId kpi) const
    noexcept {
  return find(element, kpi) != nullptr;
}

const MappedStore::SeriesView* MappedStore::find(net::ElementId element,
                                                 kpi::KpiId kpi) const
    noexcept {
  const SeriesStore::Key key{element.value, kpi};
  const auto it = std::lower_bound(
      index_.begin(), index_.end(), key,
      [](const Entry& e, const SeriesStore::Key& k) { return e.key < k; });
  if (it == index_.end() || it->key != key) return nullptr;
  return &it->view;
}

core::SeriesProvider MappedStore::provider() const {
  return [this](net::ElementId element, kpi::KpiId kpi, std::int64_t start,
                std::size_t n) {
    // Identical window semantics to SeriesStore::provider(): an hourly
    // window of n all-missing bins, overwritten by the stored bit
    // patterns where the stored column overlaps.
    ts::TimeSeries window(start, n, 60);
    const SeriesView* v = find(element, kpi);
    if (!v) return window;
    v->copy_range_into(start, window.mutable_values());
    return window;
  };
}

MappedIngest ingest_series_file_mapped(const std::string& path,
                                       const IngestOptions& opts) {
  if (opts.snapshot_dir.empty())
    throw std::runtime_error(
        "mapped ingest requires a snapshot cache directory");

  MappedIngest out;
  IngestReport& rep = out.report;
  const std::uint64_t t0 = obs::now_ns();

  // Map the source lazily: the trusted-hit path below never reads the
  // source pages at all (the probe is one stat + the snapshot open).
  const InputBuffer src = InputBuffer::map_file(path);
  rep.bytes = src.size();
  const std::uint64_t mtime_ns = detail::file_mtime_ns(path);
  bool have_fingerprint = false;

  rep.snapshot_path = snapshot_cache_path(
      opts.snapshot_dir, obs::fnv1a64(path.data(), path.size()));
  const auto meta = read_snapshot_meta(rep.snapshot_path);
  if (meta) {
    // Same stat-trust probe as ingest_series_file (see io/ingest.h §2).
    const char* verify_env = std::getenv("LITMUS_SNAPSHOT_VERIFY");
    const bool trusted = (!verify_env || !*verify_env ||
                          std::string_view(verify_env) == "0") &&
                         mtime_ns != 0 && meta->source_mtime_ns != 0 &&
                         meta->source_bytes == rep.bytes &&
                         meta->source_mtime_ns == mtime_ns;
    rep.fingerprint = trusted
                          ? meta->fingerprint
                          : obs::fnv1a64(src.view().data(), src.size());
    have_fingerprint = !trusted;
    std::string why;
    out.store = MappedStore::open_for_source(rep.snapshot_path,
                                             rep.fingerprint, rep.bytes,
                                             &why);
    if (out.store) {
      if (!trusted && mtime_ns != 0 && meta->source_mtime_ns != mtime_ns)
        refresh_snapshot_mtime(rep.snapshot_path, mtime_ns);
      rep.from_snapshot = true;
      rep.series = out.store->size();
      rep.seconds = static_cast<double>(obs::now_ns() - t0) / 1e9;
      if (obs::enabled())
        obs::Registry::global().counter("ingest.snapshot_hits").add();
      detail::record_ingest_metrics(rep);
      return out;
    }
    std::fprintf(stderr, "note: stale snapshot %s (%s); re-parsing\n",
                 rep.snapshot_path.c_str(), why.c_str());
    if (auto* ev = obs::events())
      ev->emit(obs::EventType::kWarning, [&](obs::JsonWriter& w) {
        w.member("what", "stale_snapshot")
            .member("path", std::string_view(rep.snapshot_path))
            .member("reason", std::string_view(why));
      });
  }

  // Miss or stale: parse the CSV, write a fresh snapshot, map that. The
  // scratch heap store exists only for the duration of the rewrite.
  if (!have_fingerprint)
    rep.fingerprint = obs::fnv1a64(src.view().data(), src.size());
  SeriesStore scratch;
  rep.rows = load_series_csv_fast(src.view(), scratch, opts, &rep.chunks);
  rep.series = scratch.size();
  if (obs::enabled())
    obs::Registry::global().counter("ingest.snapshot_misses").add();
  save_series_snapshot(rep.snapshot_path, scratch, rep.fingerprint,
                       rep.bytes, mtime_ns);

  std::string why;
  out.store = MappedStore::open_for_source(rep.snapshot_path,
                                           rep.fingerprint, rep.bytes, &why);
  if (!out.store)
    throw std::runtime_error("cannot map fresh snapshot " +
                             rep.snapshot_path + ": " + why);
  rep.seconds = static_cast<double>(obs::now_ns() - t0) / 1e9;
  detail::record_ingest_metrics(rep);
  return out;
}

}  // namespace litmus::io
