#include "io/store.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "io/csv.h"
#include "io/series_accum.h"

namespace litmus::io {
namespace {

std::optional<net::ElementKind> parse_kind(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(net::ElementKind::kPcrf); ++k) {
    const auto kind = static_cast<net::ElementKind>(k);
    if (s == net::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::optional<net::Technology> parse_tech(const std::string& s) {
  for (const auto t : {net::Technology::kGsm, net::Technology::kUmts,
                       net::Technology::kLte})
    if (s == net::to_string(t)) return t;
  return std::nullopt;
}

std::optional<net::Region> parse_region(const std::string& s) {
  for (int r = 0; r <= static_cast<int>(net::Region::kWest); ++r) {
    const auto region = static_cast<net::Region>(r);
    if (s == net::to_string(region)) return region;
  }
  return std::nullopt;
}

std::string format_value(double v) {
  if (std::isnan(v)) return "nan";
  // Shortest representation that re-parses to the same bits: 10
  // significant digits when they round-trip (keeps files readable),
  // otherwise the 17 digits a double always survives. save -> load is
  // therefore bit-exact, which the snapshot cache and the ingest
  // round-trip tests rely on.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  const auto back = parse_double(buf);
  if (!back || std::bit_cast<std::uint64_t>(*back) !=
                   std::bit_cast<std::uint64_t>(v))
    std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void SeriesStore::put(net::ElementId element, kpi::KpiId kpi,
                      ts::TimeSeries series) {
  series_.insert_or_assign({element.value, kpi}, std::move(series));
}

void SeriesStore::absorb(SeriesStore&& other) {
  for (auto& [key, series] : other.series_)
    series_.insert_or_assign(key, std::move(series));
  other.series_.clear();
}

bool SeriesStore::contains(net::ElementId element, kpi::KpiId kpi) const {
  return series_.contains({element.value, kpi});
}

const ts::TimeSeries& SeriesStore::get(net::ElementId element,
                                       kpi::KpiId kpi) const {
  const auto it = series_.find({element.value, kpi});
  if (it == series_.end())
    throw std::out_of_range("SeriesStore: no series for element " +
                            std::to_string(element.value));
  return it->second;
}

core::SeriesProvider SeriesStore::provider() const {
  return [this](net::ElementId element, kpi::KpiId kpi, std::int64_t start,
                std::size_t n) {
    ts::TimeSeries window(start, n, 60);
    const auto it = series_.find({element.value, kpi});
    if (it == series_.end()) return window;
    for (std::int64_t b = start; b < start + static_cast<std::int64_t>(n);
         ++b)
      window.set_bin(b, it->second.at_bin(b));
    return window;
  };
}

std::size_t load_series_csv(std::istream& in, SeriesStore& store) {
  // Accumulate points per (element, kpi), then assemble dense series.
  // SeriesAccum is shared with the mmap-parallel fast path (io/ingest.h),
  // so both loaders build bit-identical stores by construction.
  detail::SeriesAccum acc;

  std::size_t count = 0;
  CsvReader reader(in, "series csv");
  while (const auto row = reader.next()) {
    reader.require_fields(*row, 4);
    const auto element = parse_int((*row)[0]);
    if (!element || *element <= 0)
      reader.fail("bad element id '" + (*row)[0] + "'");
    const auto kpi = kpi::parse_kpi((*row)[1]);
    if (!kpi) reader.fail("unknown KPI '" + (*row)[1] + "'");
    const auto bin = parse_int((*row)[2]);
    if (!bin) reader.fail("bad bin '" + (*row)[2] + "'");
    const double value = parse_double_or_missing((*row)[3]);

    acc.add(static_cast<std::uint32_t>(*element), *kpi, *bin, value);
    ++count;
  }

  std::move(acc).build_into(store);
  return count;
}

void save_series_csv(std::ostream& out, net::ElementId element,
                     kpi::KpiId kpi, const ts::TimeSeries& series) {
  out << "# element_id, kpi_name, bin, value\n";
  for (std::int64_t b = series.start_bin(); b < series.end_bin(); ++b) {
    write_csv_row(out, {std::to_string(element.value),
                        std::string(kpi::to_string(kpi)), std::to_string(b),
                        format_value(series.at_bin(b))});
  }
}

net::Topology load_topology_csv(std::istream& in) {
  net::Topology topo;
  CsvReader reader(in, "topology csv");
  while (const auto row = reader.next()) {
    reader.require_fields(*row, 10);
    net::NetworkElement e;
    const auto id = parse_int((*row)[0]);
    if (!id || *id <= 0) reader.fail("bad id '" + (*row)[0] + "'");
    e.id = net::ElementId{static_cast<std::uint32_t>(*id)};
    const auto kind = parse_kind((*row)[1]);
    if (!kind) reader.fail("unknown element kind '" + (*row)[1] + "'");
    e.kind = *kind;
    const auto tech = parse_tech((*row)[2]);
    if (!tech) reader.fail("unknown technology '" + (*row)[2] + "'");
    e.technology = *tech;
    e.name = (*row)[3];
    const auto lat = parse_double((*row)[4]);
    const auto lon = parse_double((*row)[5]);
    const auto zip = parse_int((*row)[6]);
    if (!lat || !lon || !zip) reader.fail("bad coordinates/zip");
    e.location = {*lat, *lon};
    e.zip = net::ZipCode{static_cast<std::uint32_t>(*zip)};
    const auto region = parse_region((*row)[7]);
    if (!region) reader.fail("unknown region '" + (*row)[7] + "'");
    e.region = *region;
    const auto parent = parse_int((*row)[8]);
    const auto market = parse_int((*row)[9]);
    if (!parent || !market) reader.fail("bad parent/market");
    e.parent = net::ElementId{static_cast<std::uint32_t>(*parent)};
    e.market = static_cast<std::uint32_t>(*market);
    topo.add(std::move(e));
  }
  return topo;
}

void save_topology_csv(std::ostream& out, const net::Topology& topo) {
  out << "# id, kind, technology, name, lat, lon, zip, region, parent_id, "
         "market\n";
  for (const auto id : topo.all()) {
    const auto& e = topo.get(id);
    char lat[32], lon[32];
    std::snprintf(lat, sizeof lat, "%.6f", e.location.lat_deg);
    std::snprintf(lon, sizeof lon, "%.6f", e.location.lon_deg);
    write_csv_row(out, {std::to_string(e.id.value), net::to_string(e.kind),
                        net::to_string(e.technology), e.name, lat, lon,
                        std::to_string(e.zip.value), net::to_string(e.region),
                        std::to_string(e.parent.value),
                        std::to_string(e.market)});
  }
}

}  // namespace litmus::io
