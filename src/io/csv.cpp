#include "io/csv.h"

#include <charconv>
#include <cmath>
#include <limits>

namespace litmus::io {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

}  // namespace

CsvError::CsvError(const std::string& source, std::size_t line,
                   const std::string& message)
    : std::runtime_error(source + " line " + std::to_string(line) + ": " +
                         message),
      line_(line) {}

CsvReader::CsvReader(std::istream& in, std::string source)
    : in_(&in), source_(std::move(source)) {}

std::optional<std::vector<std::string>> CsvReader::next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    return split_csv_line(t);
  }
  return std::nullopt;
}

void CsvReader::fail(const std::string& message) const {
  throw CsvError(source_, line_, message);
}

void CsvReader::require_fields(const std::vector<std::string>& row,
                               std::size_t expected) const {
  if (row.size() != expected)
    fail("expected " + std::to_string(expected) + " fields, got " +
         std::to_string(row.size()));
}

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(trim(cur));
  return fields;
}

std::optional<std::vector<std::string>> read_csv_row(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    return split_csv_line(t);
  }
  return std::nullopt;
}

void write_csv_row(std::ostream& out,
                   const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << fields[i];
  }
  out << '\n';
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

double parse_double_or_missing(const std::string& s) {
  if (s.empty() || s == "nan" || s == "NaN" || s == "NA")
    return std::numeric_limits<double>::quiet_NaN();
  const auto v = parse_double(s);
  return v ? *v : std::numeric_limits<double>::quiet_NaN();
}

std::optional<std::int64_t> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace litmus::io
