#include "io/csv.h"

#include <charconv>
#include <cmath>
#include <limits>

namespace litmus::io {

std::string_view trim_view(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

CsvError::CsvError(const std::string& source, std::uint64_t line,
                   const std::string& message)
    : std::runtime_error(source + " line " + std::to_string(line) + ": " +
                         message),
      line_(line) {}

CsvReader::CsvReader(std::istream& in, std::string source)
    : in_(&in), source_(std::move(source)) {}

const std::vector<std::string>* CsvReader::next() {
  while (std::getline(*in_, line_buf_)) {
    ++line_;
    const std::string_view t = trim_view(line_buf_);
    if (t.empty() || t[0] == '#') continue;
    split_csv_line_into(t, row_);
    return &row_;
  }
  return nullptr;
}

void CsvReader::fail(const std::string& message) const {
  throw CsvError(source_, line_, message);
}

void CsvReader::require_fields(const std::vector<std::string>& row,
                               std::size_t expected) const {
  if (row.size() != expected)
    fail("expected " + std::to_string(expected) + " fields, got " +
         std::to_string(row.size()));
}

void split_csv_line_into(std::string_view line,
                         std::vector<std::string>& fields) {
  std::size_t n = 0;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = line.find(',', pos);
    const std::string_view field = trim_view(
        comma == std::string_view::npos ? line.substr(pos)
                                        : line.substr(pos, comma - pos));
    if (n < fields.size())
      fields[n].assign(field.data(), field.size());
    else
      fields.emplace_back(field);
    ++n;
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  fields.resize(n);
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  split_csv_line_into(line, fields);
  return fields;
}

void write_csv_row(std::ostream& out,
                   const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << fields[i];
  }
  out << '\n';
}

std::optional<double> parse_double(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  // Exact fast path (Clinger 1990): a plain "[-]ddd[.ddd]" with at most 15
  // significant digits has an exactly representable mantissa (< 2^53) and
  // an exactly representable power of ten, so one IEEE division yields the
  // correctly rounded value — bit-identical to what from_chars returns,
  // at a fraction of the cost. Anything else (exponents, nan/inf, longer
  // digit strings, malformed input) defers to from_chars, the reference.
  static constexpr double kPow10[16] = {1e0,  1e1,  1e2,  1e3,  1e4,  1e5,
                                        1e6,  1e7,  1e8,  1e9,  1e10, 1e11,
                                        1e12, 1e13, 1e14, 1e15};
  const char* p = s.data();
  const char* const end = p + s.size();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    ++p;
  }
  std::uint64_t mant = 0;
  int n_digits = 0;
  int n_frac = 0;
  bool dot = false;
  bool plain = p < end;
  for (; p < end; ++p) {
    const char c = *p;
    if (c >= '0' && c <= '9') {
      mant = mant * 10 + static_cast<unsigned>(c - '0');
      ++n_digits;
      if (dot) ++n_frac;
    } else if (c == '.' && !dot) {
      dot = true;
    } else {
      plain = false;
      break;
    }
  }
  // A trailing dot ("1.") is not full-consume-parseable by from_chars, so
  // the fast path must bow out there too.
  if (plain && n_digits > 0 && n_digits <= 15 && (!dot || n_frac > 0)) {
    const double v = static_cast<double>(mant) / kPow10[n_frac];
    return neg ? -v : v;
  }
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

double parse_double_or_missing(std::string_view s) noexcept {
  // Every NaN — whatever the spelling or sign from_chars accepted — is
  // normalized to the one canonical quiet-NaN bit pattern (ts::kMissing),
  // so "missing" is a single bit-identical value in stores and snapshots.
  constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();
  if (const auto v = parse_double(s))
    return std::isnan(*v) ? kMissing : *v;
  // Padded inputs (callers usually pre-trim, but the API promises trim):
  // retry without the whitespace, then give up as missing. from_chars
  // already accepts "nan"/"NaN"/...; "na", "", and junk all land here.
  const std::string_view t = trim_view(s);
  if (t.size() != s.size()) {
    if (const auto v = parse_double(t))
      return std::isnan(*v) ? kMissing : *v;
  }
  return kMissing;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  if (s.empty()) return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

}  // namespace litmus::io
