// High-throughput ingest for production-scale series exports.
//
// Two layers (DESIGN.md §11):
//
//  1. Fast parse — the file is memory-mapped (read into a heap buffer when
//     mmap is unavailable), split into newline-aligned chunks, and each
//     chunk is parsed on the parallel::Pool with zero-copy
//     std::string_view field splitting and std::from_chars numeric
//     conversion: no per-row or per-field allocations. Per-chunk partial
//     accumulators merge in chunk order, so the resulting SeriesStore is
//     bit-identical to serial parsing at any thread count and any chunk
//     split (the same determinism contract as DESIGN.md §8). Each chunk
//     also counts its physical lines; prefix sums turn a chunk-local parse
//     failure into the same line-accurate CsvError the serial reader
//     throws, with 64-bit line numbers for multi-GiB exports.
//
//  2. Snapshot cache — a versioned binary columnar snapshot
//     (".litmus-snap", io/snapshot.h) keyed by the FNV-1a hash of the
//     source *path*, recording the FNV-1a fingerprint of the source
//     *bytes* plus the source's (size, mtime). ingest_series_file()
//     consults the cache directory first: while the source's stat matches
//     what the snapshot recorded, the recorded content fingerprint is
//     trusted (make-style freshness) and a warm hit costs one stat plus a
//     checksummed snapshot read — no pass over the source at all. On a
//     stat mismatch, or with LITMUS_SNAPSHOT_VERIFY=1, the source is
//     re-hashed and compared against the recorded fingerprint. Stale
//     snapshots (source changed, codec version bumped, corrupt file) are
//     invalidated automatically and rewritten after the parse.
//
// Observability: ingest.rows / ingest.bytes counters,
// ingest.snapshot_hits / ingest.snapshot_misses, and ingest.rows_per_s /
// ingest.bytes_per_s gauges land in --metrics-json. They describe how the
// data arrived, never what was computed, so diff-runs ignores them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "io/store.h"

namespace litmus::io {

/// Read-only view of an input file: mmap'd when the platform supports it,
/// otherwise read whole into an owned buffer. Move-only RAII.
class InputBuffer {
 public:
  InputBuffer() = default;
  InputBuffer(InputBuffer&& other) noexcept;
  InputBuffer& operator=(InputBuffer&& other) noexcept;
  InputBuffer(const InputBuffer&) = delete;
  InputBuffer& operator=(const InputBuffer&) = delete;
  ~InputBuffer();

  /// Maps (or reads) `path`; throws std::runtime_error when unreadable.
  static InputBuffer map_file(const std::string& path);

  /// As map_file, but with MAP_SHARED so every process mapping the same
  /// file shares physical pages (the mapped columnar store's mode; for a
  /// PROT_READ mapping the semantics are otherwise identical). Falls back
  /// to a heap read where mmap is unavailable.
  static InputBuffer map_file_shared(const std::string& path);

  /// Wraps in-memory data (tests, synthetic corpora).
  static InputBuffer from_string(std::string data);

  std::string_view view() const noexcept { return view_; }
  std::size_t size() const noexcept { return view_.size(); }
  bool mapped() const noexcept { return map_ != nullptr; }

 private:
  static InputBuffer map_impl(const std::string& path, bool shared);

  void* map_ = nullptr;       // non-null iff mmap'd
  std::size_t map_len_ = 0;
  std::string owned_;         // fallback / from_string storage
  std::string_view view_;
};

struct IngestOptions {
  /// 0 = auto: min(parallel worker count, size / min_chunk_bytes). Tests
  /// force a chunk count to exercise merging on small inputs.
  std::size_t force_chunks = 0;
  std::size_t min_chunk_bytes = 256 * 1024;
  /// Snapshot cache directory; empty disables the cache.
  std::string snapshot_dir;
  /// Input name used in CsvError messages.
  std::string source_name = "series csv";
};

struct IngestReport {
  std::uint64_t rows = 0;        ///< CSV data rows parsed (0 on snapshot hit)
  std::uint64_t bytes = 0;       ///< source CSV size in bytes
  std::uint64_t series = 0;      ///< series the ingest produced
  std::uint64_t fingerprint = 0; ///< FNV-1a 64 of the source CSV bytes
  std::size_t chunks = 1;        ///< parallel chunks the parse used
  bool from_snapshot = false;
  std::string snapshot_path;     ///< resolved cache file ("" when disabled)
  double seconds = 0.0;
};

/// Chunk-parallel parse of an in-memory series CSV into `store`. Returns
/// the data-row count; throws CsvError exactly as the serial loader would.
/// `chunks_used`, when non-null, receives the actual chunk count.
std::size_t load_series_csv_fast(std::string_view data, SeriesStore& store,
                                 const IngestOptions& opts = {},
                                 std::size_t* chunks_used = nullptr);

/// Full ingest of a series CSV file: fingerprint, snapshot-cache probe,
/// fast parse + snapshot write on miss. Records the ingest metrics. The
/// snapshot is only written when `store` was empty on entry (a snapshot
/// must capture exactly this file's contents, nothing else).
IngestReport ingest_series_file(const std::string& path, SeriesStore& store,
                                const IngestOptions& opts = {});

namespace detail {

/// `n_chunks + 1` ascending offsets into `data`; every interior boundary
/// sits immediately after a '\n', so each chunk is a whole number of
/// physical lines. Depends only on (data, n_chunks) — never on scheduling.
std::vector<std::size_t> chunk_boundaries(std::string_view data,
                                          std::size_t n_chunks);

/// Physical line count of `data`: '\n' count plus a trailing unterminated
/// line, matching what std::getline would yield.
std::uint64_t count_lines(std::string_view data) noexcept;

/// Source mtime in nanoseconds since the epoch, 0 when unavailable. Only a
/// freshness shortcut — 0 simply forces the full re-hash.
std::uint64_t file_mtime_ns(const std::string& path) noexcept;

/// Records the ingest.* counters and gauges for a completed ingest.
void record_ingest_metrics(const IngestReport& rep);

}  // namespace detail

}  // namespace litmus::io
