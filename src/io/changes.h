// Change-management log interchange.
//
// Row format:
//   # element_id, type, bin, expectation, target_kpi, parameter, description
//   12, config_change, 0, improvement, voice_retainability,
//       gold.radio_link_failure_timer_ms=4000, RLF timer tuning
//
// `type` uses chg::to_string(ChangeType) labels; `expectation` uses
// improvement | degradation | no_impact. The description may not contain
// commas (the CSV dialect is deliberately simple).
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "changelog/changelog.h"

namespace litmus::io {

std::optional<chg::ChangeType> parse_change_type(const std::string& s);
std::optional<chg::Expectation> parse_expectation(const std::string& s);

/// Appends all rows to `log`; returns how many were added. Throws
/// std::runtime_error on malformed rows.
std::size_t load_changes_csv(std::istream& in, chg::ChangeLog& log);

void save_changes_csv(std::ostream& out, const chg::ChangeLog& log);

}  // namespace litmus::io
