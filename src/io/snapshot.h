// Versioned binary columnar snapshot of a SeriesStore (".litmus-snap").
//
// Purpose: repeated runs over an unchanged telemetry export should not pay
// for CSV parsing at all. The snapshot stores each series as its raw
// double column (bit patterns preserved, NaN missing values included), so
// loading is a validate + memcpy pass that reproduces the parsed
// SeriesStore bit-identically.
//
// Format (all fixed-width little-endian fields, no struct padding):
//
//   header  (56 bytes)
//     magic            8 bytes  "LITSNAP1"
//     version          u32      kSnapshotVersion
//     endian_tag       u32      0x01020304 as written by the producer
//     fingerprint      u64      FNV-1a 64 of the *source CSV* bytes
//     source_bytes     u64      size of the source CSV
//     source_mtime_ns  u64      source mtime (ns since epoch; 0 = unknown)
//     n_series         u64
//     payload_bytes    u64      total size of the records that follow
//   payload: n_series records, each
//     element          u32
//     kpi              u32      kpi::KpiId numeric value
//     start_bin        i64
//     bin_minutes      i32
//     reserved         u32      0
//     n_values         u64
//     values           n_values * f64 (raw bit patterns)
//   trailer
//     payload_fnv      u64      FNV-1a 64 of the payload bytes
//
// Invalidation rules: a snapshot loads only when magic, version, endian
// tag, source fingerprint, source byte count, payload size, and payload
// checksum all match; any mismatch (source edited, codec bumped, foreign
// endianness, truncation, corruption) reports "stale" and the caller
// falls back to parsing the CSV. Writes go through obs::open_output_file,
// so an existing snapshot rotates to ".old" instead of being clobbered
// mid-read by a concurrent consumer.
//
// The recorded (source_bytes, source_mtime_ns) pair lets a warm probe
// skip re-hashing an unchanged multi-GiB source: when the source's stat
// still matches, the recorded fingerprint is trusted (the same freshness
// rule `make` uses); when it doesn't — or LITMUS_SNAPSHOT_VERIFY=1 asks
// for belt and braces — the caller re-hashes the source and the
// fingerprint comparison above decides. The payload checksum is verified
// on every load regardless.
// Alignment guarantee (relied on by io/mapped_store.h): the header is 56
// bytes and every record header is 32 bytes followed by n*8 value bytes,
// so each record's value column starts 8-byte aligned in the file. A
// mapped reader can expose the columns as const double* views directly
// over the pages.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <span>
#include <string>

#include "io/store.h"

namespace litmus::io {

inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::string_view kSnapshotMagic = "LITSNAP1";
inline constexpr std::string_view kSnapshotSuffix = ".litmus-snap";

/// Writes the whole store as a snapshot keyed to the given source CSV
/// identity. `source_mtime_ns` may be 0 when the mtime is unknown — the
/// snapshot then never qualifies for the stat-trust shortcut and every
/// probe re-hashes the source. Throws std::runtime_error on I/O failure.
void save_series_snapshot(const std::string& path, const SeriesStore& store,
                          std::uint64_t source_fingerprint,
                          std::uint64_t source_bytes,
                          std::uint64_t source_mtime_ns);

/// Streaming snapshot producer: writes records one series at a time with
/// bounded memory, so a million-series corpus never has to exist as a heap
/// SeriesStore first. The header is written up front with placeholder
/// counts and patched in finish(); the payload checksum is accumulated
/// incrementally, so the resulting file is byte-identical to what
/// save_series_snapshot would produce from an equivalent store.
///
/// Records must be appended in ascending (element, kpi) key order — the
/// mapped reader (io/mapped_store.h) binary-searches the record index and
/// save_series_snapshot's std::map iteration provides the same order.
class SnapshotWriter {
 public:
  /// Opens `path` via obs::open_output_file (mkdir-p + rotation). Throws
  /// when unwritable.
  SnapshotWriter(const std::string& path, std::uint64_t source_fingerprint,
                 std::uint64_t source_bytes, std::uint64_t source_mtime_ns);
  ~SnapshotWriter();  ///< finishes the file if finish() was not called

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  void append(net::ElementId element, kpi::KpiId kpi,
              const ts::TimeSeries& series);
  void append(std::uint32_t element, kpi::KpiId kpi, std::int64_t start_bin,
              std::int32_t bin_minutes, std::span<const double> values);

  /// Writes the trailer checksum and patches the header counts; flushes.
  /// Throws std::runtime_error on I/O failure. Idempotent.
  void finish();

  std::uint64_t series_written() const noexcept { return n_series_; }
  std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t n_series_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t payload_fnv_;  ///< chained FNV-1a over payload bytes so far
  bool finished_ = false;
};

/// Source identity recorded in a snapshot header.
struct SnapshotMeta {
  std::uint64_t fingerprint = 0;      ///< FNV-1a 64 of the source bytes
  std::uint64_t source_bytes = 0;
  std::uint64_t source_mtime_ns = 0;  ///< 0 = unknown at write time
};

/// Reads just the header of a snapshot. Returns nullopt when the file is
/// missing, unreadable, or not a current-version snapshot for this
/// byte order (callers then treat the snapshot as absent/stale).
std::optional<SnapshotMeta> read_snapshot_meta(const std::string& path);

/// Best-effort in-place update of the recorded source mtime. Called after
/// a snapshot hit that had to fall back to the full content check because
/// the source was touched without changing: refreshing the header lets
/// the next probe take the stat-trust shortcut again. The header is not
/// covered by the payload checksum, so the patch is safe in place.
void refresh_snapshot_mtime(const std::string& path,
                            std::uint64_t source_mtime_ns) noexcept;

enum class SnapshotLoad {
  kLoaded,   ///< store now holds the snapshot's series
  kMissing,  ///< no snapshot file at `path`
  kStale,    ///< exists but fails validation; caller should re-parse
};

/// Validates and loads a snapshot into `store`. On kStale/kMissing the
/// store is left untouched; `why`, when non-null, receives a one-line
/// reason for a stale result.
SnapshotLoad load_series_snapshot(const std::string& path, SeriesStore& store,
                                  std::uint64_t expected_fingerprint,
                                  std::uint64_t expected_bytes,
                                  std::string* why = nullptr);

/// Cache-file path for a source with this key:
/// "<dir>/<16-hex-digits>.litmus-snap". ingest_series_file keys by the
/// FNV-1a hash of the source *path*, so each source owns one stable cache
/// file (probed without touching the source bytes, rewritten in place —
/// with rotation — when the source changes).
std::string snapshot_cache_path(const std::string& dir, std::uint64_t key);

}  // namespace litmus::io
