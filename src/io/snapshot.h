// Versioned binary columnar snapshot of a SeriesStore (".litmus-snap").
//
// Purpose: repeated runs over an unchanged telemetry export should not pay
// for CSV parsing at all. The snapshot stores each series as its raw
// double column (bit patterns preserved, NaN missing values included), so
// loading is a validate + memcpy pass that reproduces the parsed
// SeriesStore bit-identically.
//
// Format (all fixed-width little-endian fields, no struct padding):
//
//   header  (64 bytes)
//     magic            8 bytes  "LITSNAP1"
//     version          u32      kSnapshotVersion
//     endian_tag       u32      0x01020304 as written by the producer
//     fingerprint      u64      FNV-1a 64 of the *source CSV* bytes
//     source_bytes     u64      size of the source CSV
//     source_mtime_ns  u64      source mtime (ns since epoch; 0 = unknown)
//     n_series         u64
//     payload_bytes    u64      total size of the records that follow
//   payload: n_series records, each
//     element          u32
//     kpi              u32      kpi::KpiId numeric value
//     start_bin        i64
//     bin_minutes      i32
//     reserved         u32      0
//     n_values         u64
//     values           n_values * f64 (raw bit patterns)
//   trailer
//     payload_fnv      u64      FNV-1a 64 of the payload bytes
//
// Invalidation rules: a snapshot loads only when magic, version, endian
// tag, source fingerprint, source byte count, payload size, and payload
// checksum all match; any mismatch (source edited, codec bumped, foreign
// endianness, truncation, corruption) reports "stale" and the caller
// falls back to parsing the CSV. Writes go through obs::open_output_file,
// so an existing snapshot rotates to ".old" instead of being clobbered
// mid-read by a concurrent consumer.
//
// The recorded (source_bytes, source_mtime_ns) pair lets a warm probe
// skip re-hashing an unchanged multi-GiB source: when the source's stat
// still matches, the recorded fingerprint is trusted (the same freshness
// rule `make` uses); when it doesn't — or LITMUS_SNAPSHOT_VERIFY=1 asks
// for belt and braces — the caller re-hashes the source and the
// fingerprint comparison above decides. The payload checksum is verified
// on every load regardless.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "io/store.h"

namespace litmus::io {

inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::string_view kSnapshotMagic = "LITSNAP1";
inline constexpr std::string_view kSnapshotSuffix = ".litmus-snap";

/// Writes the whole store as a snapshot keyed to the given source CSV
/// identity. `source_mtime_ns` may be 0 when the mtime is unknown — the
/// snapshot then never qualifies for the stat-trust shortcut and every
/// probe re-hashes the source. Throws std::runtime_error on I/O failure.
void save_series_snapshot(const std::string& path, const SeriesStore& store,
                          std::uint64_t source_fingerprint,
                          std::uint64_t source_bytes,
                          std::uint64_t source_mtime_ns);

/// Source identity recorded in a snapshot header.
struct SnapshotMeta {
  std::uint64_t fingerprint = 0;      ///< FNV-1a 64 of the source bytes
  std::uint64_t source_bytes = 0;
  std::uint64_t source_mtime_ns = 0;  ///< 0 = unknown at write time
};

/// Reads just the header of a snapshot. Returns nullopt when the file is
/// missing, unreadable, or not a current-version snapshot for this
/// byte order (callers then treat the snapshot as absent/stale).
std::optional<SnapshotMeta> read_snapshot_meta(const std::string& path);

/// Best-effort in-place update of the recorded source mtime. Called after
/// a snapshot hit that had to fall back to the full content check because
/// the source was touched without changing: refreshing the header lets
/// the next probe take the stat-trust shortcut again. The header is not
/// covered by the payload checksum, so the patch is safe in place.
void refresh_snapshot_mtime(const std::string& path,
                            std::uint64_t source_mtime_ns) noexcept;

enum class SnapshotLoad {
  kLoaded,   ///< store now holds the snapshot's series
  kMissing,  ///< no snapshot file at `path`
  kStale,    ///< exists but fails validation; caller should re-parse
};

/// Validates and loads a snapshot into `store`. On kStale/kMissing the
/// store is left untouched; `why`, when non-null, receives a one-line
/// reason for a stale result.
SnapshotLoad load_series_snapshot(const std::string& path, SeriesStore& store,
                                  std::uint64_t expected_fingerprint,
                                  std::uint64_t expected_bytes,
                                  std::string* why = nullptr);

/// Cache-file path for a source with this key:
/// "<dir>/<16-hex-digits>.litmus-snap". ingest_series_file keys by the
/// FNV-1a hash of the source *path*, so each source owns one stable cache
/// file (probed without touching the source bytes, rewritten in place —
/// with rotation — when the source changes).
std::string snapshot_cache_path(const std::string& dir, std::uint64_t key);

}  // namespace litmus::io
