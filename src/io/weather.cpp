#include "io/weather.h"

#include <stdexcept>

#include "io/csv.h"

namespace litmus::io {

std::optional<sim::WeatherKind> parse_weather_kind(const std::string& s) {
  for (const auto k : {sim::WeatherKind::kRain, sim::WeatherKind::kWind,
                       sim::WeatherKind::kSevereStorm,
                       sim::WeatherKind::kHurricane})
    if (s == sim::to_string(k)) return k;
  return std::nullopt;
}

std::vector<sim::WeatherEvent> load_weather_csv(std::istream& in) {
  std::vector<sim::WeatherEvent> events;
  CsvReader reader(in, "weather csv");
  while (const auto row = reader.next()) {
    reader.require_fields(*row, 7);
    const auto kind = parse_weather_kind((*row)[0]);
    if (!kind) reader.fail("unknown weather kind '" + (*row)[0] + "'");
    const auto lat = parse_double((*row)[1]);
    const auto lon = parse_double((*row)[2]);
    if (!lat || !lon) reader.fail("bad coordinates");
    const auto radius = parse_double((*row)[3]);
    if (!radius || *radius <= 0)
      reader.fail("bad radius '" + (*row)[3] + "'");
    const auto start = parse_int((*row)[4]);
    if (!start) reader.fail("bad start bin '" + (*row)[4] + "'");
    const auto duration = parse_int((*row)[5]);
    if (!duration || *duration <= 0)
      reader.fail("bad duration '" + (*row)[5] + "'");
    const auto severity = parse_double((*row)[6]);
    if (!severity) reader.fail("bad severity '" + (*row)[6] + "'");

    sim::WeatherEvent ev =
        sim::make_event(*kind, {*lat, *lon}, *start, *duration);
    ev.radius_km = *radius;
    if (*severity > 0.0) ev.peak_sigma = *severity;
    events.push_back(ev);
  }
  return events;
}

void save_weather_csv(std::ostream& out,
                      std::span<const sim::WeatherEvent> events) {
  out << "# kind, lat, lon, radius_km, start_bin, duration_bins, severity\n";
  for (const auto& ev : events) {
    char lat[32], lon[32], radius[32], severity[32];
    std::snprintf(lat, sizeof lat, "%.4f", ev.center.lat_deg);
    std::snprintf(lon, sizeof lon, "%.4f", ev.center.lon_deg);
    std::snprintf(radius, sizeof radius, "%.1f", ev.radius_km);
    std::snprintf(severity, sizeof severity, "%.2f", ev.peak_sigma);
    write_csv_row(out, {sim::to_string(ev.kind), lat, lon, radius,
                        std::to_string(ev.start_bin),
                        std::to_string(ev.end_bin - ev.start_bin), severity});
  }
}

}  // namespace litmus::io
