// Severe-weather record import (paper Section 2.5: "We collected weather
// data [NCDC, wunderground] and compared it to the service performance
// data").
//
// Record CSV format (one row per event):
//   # kind, lat, lon, radius_km, start_bin, duration_bins, severity
//   severe_storm, 32.8, -96.8, 120, 432, 48, 3.0
//
// `kind` is one of rain | wind | severe_storm | hurricane. `severity`
// overrides the kind's default peak impact when positive; pass 0 to keep
// the preset. Imported events plug straight into sim::WeatherFactor, and —
// in a deployment — into the scheduler's foreseeable-factor calendar.
#pragma once

#include <istream>
#include <span>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "simkit/weather.h"

namespace litmus::io {

/// Parses a weather-kind label; nullopt for unknown labels.
std::optional<sim::WeatherKind> parse_weather_kind(const std::string& s);

/// Loads events; throws std::runtime_error on malformed rows.
std::vector<sim::WeatherEvent> load_weather_csv(std::istream& in);

/// Writes events in the same format (severity column = peak_sigma).
void save_weather_csv(std::ostream& out,
                      std::span<const sim::WeatherEvent> events);

}  // namespace litmus::io
