// Internal: shared point accumulation for the series-CSV parsers.
//
// Both the serial istream loader (io/store.cpp) and the mmap chunk-parallel
// fast path (io/ingest.cpp) funnel rows through a SeriesAccum, so the dense
// series they assemble are bit-identical by construction: per (element,
// KPI) the value sequence is kept in row order (duplicates resolve
// last-wins exactly as set_bin applies them), min/max bin extents are
// order-independent, and the final SeriesStore is keyed by a sorted map so
// accumulation-container iteration order never leaks into results.
//
// The accumulator is tuned for the row-per-observation shape: an
// unordered_map avoids the per-row O(log n) of a sorted map, and a
// one-entry memo exploits exports that group each series' rows together
// (save_series_csv writes them contiguously) to skip the hash lookup on
// nearly every row.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/store.h"
#include "kpi/kpi.h"
#include "tsmath/timeseries.h"

namespace litmus::io::detail {

struct SeriesKey {
  std::uint32_t element = 0;
  kpi::KpiId kpi{};

  bool operator==(const SeriesKey&) const = default;
};

struct SeriesKeyHash {
  std::size_t operator()(const SeriesKey& k) const noexcept {
    // splitmix64 over the packed key: cheap and well-distributed.
    std::uint64_t x = (static_cast<std::uint64_t>(k.element) << 8) |
                      static_cast<std::uint64_t>(k.kpi);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

struct SeriesPoints {
  std::int64_t min_bin = 0;
  std::int64_t max_bin = 0;
  std::vector<std::pair<std::int64_t, double>> values;
};

class SeriesAccum {
 public:
  SeriesAccum() { map_.reserve(64); }

  void add(std::uint32_t element, kpi::KpiId kpi, std::int64_t bin,
           double value) {
    const SeriesKey key{element, kpi};
    if (last_ == nullptr || !(last_key_ == key)) {
      last_ = &map_[key];
      last_key_ = key;
    }
    SeriesPoints& p = *last_;
    if (p.values.empty()) {
      // Series exports carry hundreds of bins per series; skipping the
      // first few vector doublings is nearly free (the buffers are
      // shrunk away in build_into) and saves the early reallocations.
      p.values.reserve(256);
      p.min_bin = p.max_bin = bin;
    } else {
      p.min_bin = std::min(p.min_bin, bin);
      p.max_bin = std::max(p.max_bin, bin);
    }
    p.values.emplace_back(bin, value);
  }

  /// Appends `later`'s points after this accumulator's, per key and in
  /// `later`'s row order. Merging chunk accumulators in chunk order
  /// therefore reconstructs exactly the serial row order.
  void merge_after(SeriesAccum&& later) {
    last_ = nullptr;  // pointers may move below
    for (auto& [key, src] : later.map_) {
      auto [it, inserted] = map_.try_emplace(key, std::move(src));
      if (inserted) continue;
      SeriesPoints& dst = it->second;
      if (dst.values.empty()) {
        dst = std::move(src);
        continue;
      }
      dst.min_bin = std::min(dst.min_bin, src.min_bin);
      dst.max_bin = std::max(dst.max_bin, src.max_bin);
      dst.values.insert(dst.values.end(), src.values.begin(),
                        src.values.end());
    }
    later.map_.clear();
    later.last_ = nullptr;
  }

  /// Assembles dense series and installs them; returns the series count.
  std::size_t build_into(SeriesStore& store) && {
    for (auto& [key, p] : map_) {
      ts::TimeSeries s(
          p.min_bin, static_cast<std::size_t>(p.max_bin - p.min_bin + 1), 60);
      for (const auto& [bin, value] : p.values) s.set_bin(bin, value);
      store.put(net::ElementId{key.element}, key.kpi, std::move(s));
    }
    const std::size_t n = map_.size();
    map_.clear();
    last_ = nullptr;
    return n;
  }

  bool empty() const noexcept { return map_.empty(); }

 private:
  std::unordered_map<SeriesKey, SeriesPoints, SeriesKeyHash> map_;
  SeriesKey last_key_{};
  SeriesPoints* last_ = nullptr;
};

}  // namespace litmus::io::detail
