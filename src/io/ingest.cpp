#include "io/ingest.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/csv.h"
#include "io/series_accum.h"
#include "io/snapshot.h"
#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/pool.h"

#if defined(__unix__) || defined(__APPLE__)
#define LITMUS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define LITMUS_HAVE_MMAP 0
#endif

namespace litmus::io {

// ---------------------------------------------------------------------------
// InputBuffer

InputBuffer::InputBuffer(InputBuffer&& other) noexcept
    : map_(other.map_),
      map_len_(other.map_len_),
      owned_(std::move(other.owned_)) {
  view_ = map_ ? std::string_view(static_cast<const char*>(map_), map_len_)
               : std::string_view(owned_);
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.view_ = {};
}

InputBuffer& InputBuffer::operator=(InputBuffer&& other) noexcept {
  if (this == &other) return *this;
#if LITMUS_HAVE_MMAP
  if (map_) ::munmap(map_, map_len_);
#endif
  map_ = other.map_;
  map_len_ = other.map_len_;
  owned_ = std::move(other.owned_);
  view_ = map_ ? std::string_view(static_cast<const char*>(map_), map_len_)
               : std::string_view(owned_);
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.view_ = {};
  return *this;
}

InputBuffer::~InputBuffer() {
#if LITMUS_HAVE_MMAP
  if (map_) ::munmap(map_, map_len_);
#endif
}

InputBuffer InputBuffer::from_string(std::string data) {
  InputBuffer buf;
  buf.owned_ = std::move(data);
  buf.view_ = buf.owned_;
  return buf;
}

InputBuffer InputBuffer::map_impl(const std::string& path, bool shared) {
#if LITMUS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st {};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const auto len = static_cast<std::size_t>(st.st_size);
      if (len == 0) {
        ::close(fd);
        return InputBuffer{};
      }
      void* p = ::mmap(nullptr, len, PROT_READ,
                       shared ? MAP_SHARED : MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (p != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
        if (!shared) ::madvise(p, len, MADV_SEQUENTIAL);
#endif
        InputBuffer buf;
        buf.map_ = p;
        buf.map_len_ = len;
        buf.view_ = std::string_view(static_cast<const char*>(p), len);
        return buf;
      }
      // mmap refused (e.g. special filesystem): fall through to read().
    } else {
      ::close(fd);
    }
  } else {
    throw std::runtime_error("cannot open " + path);
  }
#else
  (void)shared;
#endif
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return from_string(std::move(os).str());
}

InputBuffer InputBuffer::map_file(const std::string& path) {
  return map_impl(path, /*shared=*/false);
}

InputBuffer InputBuffer::map_file_shared(const std::string& path) {
  return map_impl(path, /*shared=*/true);
}

// ---------------------------------------------------------------------------
// Chunk planning

namespace detail {

std::vector<std::size_t> chunk_boundaries(std::string_view data,
                                          std::size_t n_chunks) {
  n_chunks = std::max<std::size_t>(1, n_chunks);
  std::vector<std::size_t> bounds;
  bounds.reserve(n_chunks + 1);
  bounds.push_back(0);
  for (std::size_t c = 1; c < n_chunks; ++c) {
    const std::size_t target = c * (data.size() / n_chunks);
    std::size_t b = std::max(target, bounds.back());
    // Align to just past the next newline so every chunk holds whole lines.
    if (b < data.size()) {
      const void* nl = std::memchr(data.data() + b, '\n', data.size() - b);
      b = nl ? static_cast<std::size_t>(static_cast<const char*>(nl) -
                                        data.data()) +
                   1
             : data.size();
    } else {
      b = data.size();
    }
    bounds.push_back(b);
  }
  bounds.push_back(data.size());
  return bounds;
}

std::uint64_t count_lines(std::string_view data) noexcept {
  std::uint64_t lines = 0;
  const char* p = data.data();
  const char* const end = p + data.size();
  while (p < end) {
    const void* nl = std::memchr(p, '\n', static_cast<std::size_t>(end - p));
    ++lines;
    if (!nl) break;
    p = static_cast<const char*>(nl) + 1;
  }
  return lines;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Chunk-parallel series parse

namespace {

struct ChunkOutcome {
  detail::SeriesAccum acc;
  std::uint64_t rows = 0;
  std::uint64_t lines = 0;  ///< physical lines up to and incl. a failure
  bool failed = false;
  std::uint64_t fail_line = 0;  ///< 1-based within the chunk
  std::string fail_msg;
};

/// Parses one newline-aligned chunk. Grammar and error messages match the
/// serial loader in io/store.cpp exactly; on the first bad row the chunk
/// records the failure and stops, as the serial parser would.
inline bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r';
}

/// First ',' or '\n' in [p, end), or `end` when neither occurs. SWAR over
/// 8-byte words (zero-byte trick) on little-endian targets; the per-byte
/// loop both finishes the tail and serves as the big-endian fallback.
inline const char* find_delim(const char* p, const char* const end) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t k01 = 0x0101010101010101ull;
    constexpr std::uint64_t k80 = 0x8080808080808080ull;
    constexpr std::uint64_t kComma = 0x2c2c2c2c2c2c2c2cull;
    constexpr std::uint64_t kNl = 0x0a0a0a0a0a0a0a0aull;
    while (end - p >= 8) {
      std::uint64_t w;
      std::memcpy(&w, p, 8);
      const std::uint64_t xc = w ^ kComma;
      const std::uint64_t xn = w ^ kNl;
      const std::uint64_t hit =
          (((xc - k01) & ~xc) | ((xn - k01) & ~xn)) & k80;
      if (hit) return p + (std::countr_zero(hit) >> 3);
      p += 8;
    }
  }
  while (p < end && *p != ',' && *p != '\n') ++p;
  return p;
}

/// Inline string_view equality, compared a word at a time: the memo
/// fields are 2-20 bytes, short enough that the out-of-line memcmp the
/// generic operator== emits costs more than the comparison itself.
inline bool sv_equal(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  const char* pa = a.data();
  const char* pb = b.data();
  std::size_t n = a.size();
  while (n >= 8) {
    std::uint64_t x, y;
    std::memcpy(&x, pa, 8);
    std::memcpy(&y, pb, 8);
    if (x != y) return false;
    pa += 8;
    pb += 8;
    n -= 8;
  }
  while (n-- > 0)
    if (*pa++ != *pb++) return false;
  return true;
}

/// Inline twin of parse_int for the short digit strings that fill series
/// exports; identical accept/reject behavior (longer inputs, where
/// overflow handling matters, defer to parse_int itself).
inline std::optional<std::int64_t> parse_int_inline(
    std::string_view s) noexcept {
  if (s.empty() || s.size() > 18) return parse_int(s);
  const char* p = s.data();
  const char* const end = p + s.size();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    if (++p == end) return std::nullopt;
  }
  std::int64_t v = 0;
  for (; p < end; ++p) {
    const char c = *p;
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + (c - '0');
  }
  return neg ? -v : v;
}

void parse_series_chunk(std::string_view chunk, ChunkOutcome& out) {
  const char* p = chunk.data();
  const char* const end = p + chunk.size();
  const auto fail = [&](std::string msg) {
    out.failed = true;
    out.fail_line = out.lines;
    out.fail_msg = std::move(msg);
  };

  // Production exports write one series contiguously, so consecutive rows
  // almost always repeat the element and KPI fields byte-for-byte: memoize
  // the previous row's parse of both. A memo hit compares a handful of
  // bytes instead of re-running from_chars / the KPI name scan, and since
  // the bytes are identical the parse it skips would have produced the
  // identical value — determinism is untouched.
  std::string_view last_elem_text, last_kpi_text;
  std::uint32_t last_elem = 0;
  kpi::KpiId last_kpi{};

  while (p < end) {
    ++out.lines;
    while (p < end && is_ws(*p)) ++p;  // '\n' is not in the ws set
    if (p == end) break;               // ws-only final line, no newline
    if (*p == '\n') {                  // blank line
      ++p;
      continue;
    }
    if (*p == '#') {  // comment: skip to end of line
      const void* nl =
          std::memchr(p, '\n', static_cast<std::size_t>(end - p));
      p = nl ? static_cast<const char*>(nl) + 1 : end;
      continue;
    }

    // Tokenize the row delimiter-to-delimiter: find_delim locates the next
    // ',' or '\n' a word at a time, then only the field edges are touched
    // to trim — the same character class and semantics as trim_view +
    // split_csv_line. Only the first four fields are kept, but all are
    // counted so the field-count error message matches require_fields().
    std::string_view field[4];
    std::size_t n_fields = 0;
    const char* field_start = p;
    for (;;) {
      const char* const d = find_delim(field_start, end);
      const char* a = field_start;
      const char* b = d;
      while (a < b && is_ws(*a)) ++a;
      while (b > a && is_ws(b[-1])) --b;
      if (n_fields < 4)
        field[n_fields] =
            std::string_view(a, static_cast<std::size_t>(b - a));
      ++n_fields;
      if (d == end || *d == '\n') {
        p = (d == end) ? end : d + 1;
        break;
      }
      field_start = d + 1;
    }
    if (n_fields != 4)
      return fail("expected 4 fields, got " + std::to_string(n_fields));

    std::uint32_t elem;
    if (!last_elem_text.empty() && sv_equal(field[0], last_elem_text)) {
      elem = last_elem;
    } else {
      const auto element = parse_int_inline(field[0]);
      if (!element || *element <= 0)
        return fail("bad element id '" + std::string(field[0]) + "'");
      elem = static_cast<std::uint32_t>(*element);
      last_elem_text = field[0];
      last_elem = elem;
    }
    kpi::KpiId kid;
    if (!last_kpi_text.empty() && sv_equal(field[1], last_kpi_text)) {
      kid = last_kpi;
    } else {
      const auto kpi_id = kpi::parse_kpi(field[1]);
      if (!kpi_id) return fail("unknown KPI '" + std::string(field[1]) + "'");
      kid = *kpi_id;
      last_kpi_text = field[1];
      last_kpi = kid;
    }
    const auto bin = parse_int_inline(field[2]);
    if (!bin) return fail("bad bin '" + std::string(field[2]) + "'");
    const double value = parse_double_or_missing(field[3]);

    out.acc.add(elem, kid, *bin, value);
    ++out.rows;
  }
}

}  // namespace

namespace detail {

std::uint64_t file_mtime_ns(const std::string& path) noexcept {
#if LITMUS_HAVE_MMAP
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) return 0;
#if defined(__APPLE__)
  const auto& mt = st.st_mtimespec;
#else
  const auto& mt = st.st_mtim;
#endif
  return static_cast<std::uint64_t>(mt.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(mt.tv_nsec);
#else
  std::error_code ec;
  const auto t = std::filesystem::last_write_time(path, ec);
  if (ec) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
#endif
}

void record_ingest_metrics(const IngestReport& rep) {
  if (!obs::enabled()) return;
  auto& reg = obs::Registry::global();
  reg.counter("ingest.rows").add(rep.rows);
  reg.counter("ingest.bytes").add(rep.bytes);
  if (rep.seconds > 0.0) {
    reg.gauge("ingest.rows_per_s")
        .set(static_cast<double>(rep.rows) / rep.seconds);
    reg.gauge("ingest.bytes_per_s")
        .set(static_cast<double>(rep.bytes) / rep.seconds);
  }
}

}  // namespace detail

std::size_t load_series_csv_fast(std::string_view data, SeriesStore& store,
                                 const IngestOptions& opts,
                                 std::size_t* chunks_used) {
  std::size_t n_chunks = opts.force_chunks;
  if (n_chunks == 0) {
    const std::size_t by_size = std::max<std::size_t>(
        1, data.size() / std::max<std::size_t>(1, opts.min_chunk_bytes));
    n_chunks = std::min(par::threads(), by_size);
  }
  const auto bounds = detail::chunk_boundaries(data, n_chunks);
  const std::size_t actual = bounds.size() - 1;
  if (chunks_used) *chunks_used = actual;

  std::vector<ChunkOutcome> outcomes(actual);
  par::parallel_chunks(
      actual, actual,
      [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          obs::ScopedSpan chunk_span("ingest.chunk");
          parse_series_chunk(
              data.substr(bounds[c], bounds[c + 1] - bounds[c]),
              outcomes[c]);
        }
      });

  // The first failure in chunk order is the first failure in file order
  // (every earlier chunk parsed to completion); prefix line counts pin it
  // to the same 1-based physical line the serial reader reports.
  std::uint64_t line_base = 0;
  for (const ChunkOutcome& oc : outcomes) {
    if (oc.failed)
      throw CsvError(opts.source_name, line_base + oc.fail_line,
                     oc.fail_msg);
    line_base += oc.lines;
  }

  std::uint64_t rows = 0;
  detail::SeriesAccum merged = std::move(outcomes.front().acc);
  rows += outcomes.front().rows;
  for (std::size_t c = 1; c < actual; ++c) {
    merged.merge_after(std::move(outcomes[c].acc));
    rows += outcomes[c].rows;
  }
  std::move(merged).build_into(store);
  return static_cast<std::size_t>(rows);
}

IngestReport ingest_series_file(const std::string& path, SeriesStore& store,
                                const IngestOptions& opts) {
  IngestReport rep;
  const std::uint64_t t0 = obs::now_ns();
  const bool store_was_empty = store.size() == 0;

  const InputBuffer buf = InputBuffer::map_file(path);
  rep.bytes = buf.size();
  const std::uint64_t mtime_ns = detail::file_mtime_ns(path);
  bool have_fingerprint = false;

  if (!opts.snapshot_dir.empty()) {
    // The cache file is keyed by the source *path*, so the probe needs no
    // pass over the source bytes. When the snapshot's recorded
    // (size, mtime) still matches the source's stat, its recorded content
    // fingerprint is trusted outright — the same freshness rule `make`
    // uses — and a warm hit costs one stat + the snapshot read (whose
    // payload checksum is always verified). On any stat mismatch, or when
    // LITMUS_SNAPSHOT_VERIFY=1, the source is re-hashed and the
    // fingerprint comparison decides; a source edit therefore lands on
    // the fingerprint check even if size and mtime were forged back.
    rep.snapshot_path = snapshot_cache_path(
        opts.snapshot_dir, obs::fnv1a64(path.data(), path.size()));
    const auto meta = read_snapshot_meta(rep.snapshot_path);
    if (meta) {
      const char* verify_env = std::getenv("LITMUS_SNAPSHOT_VERIFY");
      const bool trusted = (!verify_env || !*verify_env ||
                            std::string_view(verify_env) == "0") &&
                           mtime_ns != 0 && meta->source_mtime_ns != 0 &&
                           meta->source_bytes == rep.bytes &&
                           meta->source_mtime_ns == mtime_ns;
      rep.fingerprint = trusted
                            ? meta->fingerprint
                            : obs::fnv1a64(buf.view().data(), buf.size());
      // A trusted fingerprint came from the snapshot header; it is only
      // safe to keep if that snapshot actually validated end to end.
      have_fingerprint = !trusted;
      std::string why;
      const SnapshotLoad got = load_series_snapshot(
          rep.snapshot_path, store, rep.fingerprint, rep.bytes, &why);
      if (got == SnapshotLoad::kLoaded) {
        // A hit that needed the full content check means the source was
        // touched without changing; refresh the recorded mtime so the
        // next probe can take the stat shortcut again.
        if (!trusted && mtime_ns != 0 &&
            meta->source_mtime_ns != mtime_ns)
          refresh_snapshot_mtime(rep.snapshot_path, mtime_ns);
        rep.from_snapshot = true;
        rep.series = store.size();
        rep.seconds = static_cast<double>(obs::now_ns() - t0) / 1e9;
        if (obs::enabled())
          obs::Registry::global().counter("ingest.snapshot_hits").add();
        detail::record_ingest_metrics(rep);
        return rep;
      }
      if (got == SnapshotLoad::kStale)
        std::fprintf(stderr, "note: stale snapshot %s (%s); re-parsing\n",
                     rep.snapshot_path.c_str(), why.c_str());
    }
  }

  if (!have_fingerprint)
    rep.fingerprint = obs::fnv1a64(buf.view().data(), buf.size());
  rep.rows = load_series_csv_fast(buf.view(), store, opts, &rep.chunks);
  rep.series = store.size();
  if (!opts.snapshot_dir.empty()) {
    if (obs::enabled())
      obs::Registry::global().counter("ingest.snapshot_misses").add();
    if (store_was_empty)
      save_series_snapshot(rep.snapshot_path, store, rep.fingerprint,
                           rep.bytes, mtime_ns);
  }
  rep.seconds = static_cast<double>(obs::now_ns() - t0) / 1e9;
  detail::record_ingest_metrics(rep);
  return rep;
}

}  // namespace litmus::io
