// Mmap-served read-only columnar series store (DESIGN.md §15).
//
// A MappedStore opens a `.litmus-snap` snapshot (io/snapshot.h) with
// mmap(PROT_READ, MAP_SHARED) and serves every series as a zero-copy view
// straight over the mapped pages — no per-process heap materialisation of
// the columns at all. N workers (or N processes) assessing the same corpus
// share one set of physical pages; the kernel pages columns in on demand
// and evicts them under pressure, so the resident cost is what the run
// actually touches, not the corpus size.
//
// Safety and validation. open() validates the full format before exposing
// anything: magic, codec version, endian tag, header/payload sizes, and
// the trailing FNV-1a payload checksum over every payload byte. A snapshot
// that fails any check yields nullptr plus a one-line reason — never a
// half-populated store — and the ingest layer falls back to the CSV parse
// with a warning event. The record index is built in the same validation
// pass, so a truncated record table is caught before first use.
//
// Read-only contract. The mapping is PROT_READ: the store never writes a
// byte, the kernel shares the pages MAP_SHARED across every consumer, and
// any concurrent writer that truncates the file out from under a reader is
// a caller contract violation (snapshot writes go through rotation, never
// in-place truncation). All accessors are const and thread-safe without
// locks; N threads may fetch windows concurrently (the TSan-covered
// concurrent-reader tests in tests/io/mapped_store_test.cpp pin this).
//
// Window semantics are bit-identical to SeriesStore::provider(): a window
// starts all-kMissing, the overlap with the stored column is one memcpy of
// the stored bit patterns (NaN missing values included), and bins outside
// the column stay kMissing. Everything downstream — copy_range_into, the
// SIMD kernels, the panel cache — runs unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/ingest.h"
#include "io/snapshot.h"
#include "io/store.h"

namespace litmus::io {

class MappedStore {
 public:
  /// Zero-copy view of one stored series: `values` points into the mapped
  /// pages (8-byte aligned by the snapshot format).
  struct SeriesView {
    std::int64_t start_bin = 0;
    std::int32_t bin_minutes = 60;
    std::span<const double> values;

    std::int64_t end_bin() const noexcept {
      return start_bin + static_cast<std::int64_t>(values.size());
    }
    /// TimeSeries::copy_range_into over the mapped column: one memcpy for
    /// the overlap, kMissing for bins outside the column.
    void copy_range_into(std::int64_t from_bin,
                         std::span<double> out) const noexcept;
  };

  /// How an open() performed, for the store.* metrics.
  struct OpenStats {
    double seconds = 0.0;          ///< open + validate + index wall time
    std::uint64_t bytes_mapped = 0;
    std::uint64_t series = 0;
    /// Major page faults the open incurred (/proc/self/stat delta; 0 where
    /// unsupported). Cold opens fault the whole payload in for the
    /// checksum pass; warm opens should show ~none.
    std::uint64_t major_faults = 0;
  };

  /// Opens and fully validates a snapshot. Returns nullptr with a one-line
  /// reason in `why` on any validation failure (missing file, bad magic,
  /// version/endian mismatch, truncation, checksum mismatch, malformed
  /// record table). Records the store.* metrics when obs is enabled.
  static std::unique_ptr<MappedStore> open(const std::string& path,
                                           std::string* why = nullptr);

  /// As open(), additionally requiring the snapshot's recorded source
  /// identity to match (the ingest cache-probe contract).
  static std::unique_ptr<MappedStore> open_for_source(
      const std::string& path, std::uint64_t expected_fingerprint,
      std::uint64_t expected_bytes, std::string* why = nullptr);

  std::size_t size() const noexcept { return index_.size(); }
  std::uint64_t bytes_mapped() const noexcept { return buf_.size(); }
  const std::string& path() const noexcept { return path_; }
  const SnapshotMeta& meta() const noexcept { return meta_; }
  const OpenStats& open_stats() const noexcept { return open_stats_; }

  bool contains(net::ElementId element, kpi::KpiId kpi) const noexcept;
  /// The view for (element, kpi), or nullptr when absent. O(log n).
  const SeriesView* find(net::ElementId element, kpi::KpiId kpi) const
      noexcept;

  /// Key-sorted read access to every view (store-equality tests, tools).
  struct Entry {
    SeriesStore::Key key;
    SeriesView view;
  };
  const std::vector<Entry>& entries() const noexcept { return index_; }

  /// Provider over the mapped pages, bit-identical to the heap
  /// SeriesStore::provider() for an equivalent store. The returned
  /// closure borrows `this`; the store must outlive it.
  core::SeriesProvider provider() const;

 private:
  MappedStore() = default;

  std::string path_;
  InputBuffer buf_;  ///< MAP_SHARED PROT_READ mapping of the snapshot
  SnapshotMeta meta_;
  OpenStats open_stats_;
  std::vector<Entry> index_;  ///< ascending by key
};

/// Result of a mapped ingest: the store serving the series plus the same
/// provenance report ingest_series_file produces.
struct MappedIngest {
  std::shared_ptr<MappedStore> store;  ///< never null on return
  IngestReport report;
};

/// Ingest a series CSV through the mapped columnar store: probe the
/// snapshot cache and mmap a valid snapshot directly (no heap store); on a
/// miss parse the CSV, write the snapshot, and map that. A stale or
/// corrupt snapshot falls back to the CSV parse with a `warning` event
/// (obs/events.h) — never a half-populated store. Requires
/// opts.snapshot_dir to be set (the snapshot is the store); throws
/// std::runtime_error otherwise, and on unreadable input or parse errors
/// exactly as ingest_series_file would.
MappedIngest ingest_series_file_mapped(const std::string& path,
                                       const IngestOptions& opts);

}  // namespace litmus::io
