// Interchange formats and an in-memory series store.
//
// Deployments do not generate KPIs — they load them. The SeriesStore holds
// per-(element, KPI) time-series and hands the Assessor a SeriesProvider,
// so production feeds exported to CSV drive exactly the same code path as
// the simulator.
//
// Series CSV format (hourly bins):
//   # element_id, kpi_name, bin, value
//   42, voice_retainability, -336, 0.9751
//   42, voice_retainability, -335, 0.9748
//
// Topology CSV format:
//   # id, kind, technology, name, lat, lon, zip, region, parent_id, market
//   1, RNC, UMTS, NE-RNC0, 41.5, -74.0, 10001, Northeast, 0, 0
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>

#include "cellnet/topology.h"
#include "kpi/kpi.h"
#include "litmus/assessor.h"
#include "tsmath/timeseries.h"

namespace litmus::io {

class SeriesStore {
 public:
  /// Sorted-map key: (element id value, KPI). Sorted iteration makes every
  /// serialization of a store (CSV, snapshot) byte-deterministic.
  using Key = std::pair<std::uint32_t, kpi::KpiId>;

  /// Inserts/overwrites the series for (element, kpi).
  void put(net::ElementId element, kpi::KpiId kpi, ts::TimeSeries series);

  /// Moves every series of `other` into this store (insert-or-assign).
  void absorb(SeriesStore&& other);

  bool contains(net::ElementId element, kpi::KpiId kpi) const;
  std::size_t size() const noexcept { return series_.size(); }

  /// Key-sorted read access to every stored series (snapshot writer,
  /// store equality in tests).
  const std::map<Key, ts::TimeSeries>& entries() const noexcept {
    return series_;
  }

  /// The stored series; throws std::out_of_range when absent.
  const ts::TimeSeries& get(net::ElementId element, kpi::KpiId kpi) const;

  /// A provider view over the store. Windows that reach outside a stored
  /// series come back with missing bins (the analyzers tolerate gaps);
  /// fully absent series yield all-missing windows.
  core::SeriesProvider provider() const;

 private:
  std::map<Key, ts::TimeSeries> series_;
};

/// Series CSV round-trip. Loading returns the number of data points read
/// and throws std::runtime_error on malformed rows.
std::size_t load_series_csv(std::istream& in, SeriesStore& store);
void save_series_csv(std::ostream& out, net::ElementId element,
                     kpi::KpiId kpi, const ts::TimeSeries& series);

/// Topology CSV round-trip. Parents must appear before children (save
/// writes insertion order, which satisfies this). Throws on malformed rows.
net::Topology load_topology_csv(std::istream& in);
void save_topology_csv(std::ostream& out, const net::Topology& topo);

}  // namespace litmus::io
