// Minimal CSV reading/writing for the interchange formats in io/store.h.
// No quoting dialects: fields are comma-separated, '#' starts a comment
// line, blank lines are skipped. That covers the telemetry exports this
// library consumes and keeps the parser obviously correct.
//
// Two parsers share these primitives: the istream CsvReader below (simple,
// line-number-accurate, used by every loader) and the mmap chunk-parallel
// fast path in io/ingest.h (same grammar, same error messages, built for
// multi-million-row series exports).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace litmus::io {

/// Parse failure with the 1-based source line attached, so a bad export
/// can be fixed without bisecting the file ("series csv line 841: ...").
/// The line is a 64-bit count: exports past 4 G lines still report exact
/// positions.
class CsvError : public std::runtime_error {
 public:
  CsvError(const std::string& source, std::uint64_t line,
           const std::string& message);

  std::uint64_t line() const noexcept { return line_; }

 private:
  std::uint64_t line_;
};

/// Row reader that tracks physical line numbers across skipped comments
/// and blanks. `source` names the input in error messages (e.g.
/// "topology csv").
class CsvReader {
 public:
  CsvReader(std::istream& in, std::string source);

  /// Next data row (skipping comments/blanks); nullptr at EOF. The
  /// returned vector is a reused internal buffer — valid until the next
  /// next() call, so a million-row load allocates O(fields) instead of
  /// O(rows * fields).
  const std::vector<std::string>* next();

  /// 1-based line number of the most recently returned row (0 before the
  /// first next()).
  std::uint64_t line() const noexcept { return line_; }

  /// Throws CsvError pinned to the current row's line.
  [[noreturn]] void fail(const std::string& message) const;

  /// fail() unless the current row has exactly `expected` fields.
  void require_fields(const std::vector<std::string>& row,
                      std::size_t expected) const;

 private:
  std::istream* in_;
  std::string source_;
  std::uint64_t line_ = 0;
  std::string line_buf_;
  std::vector<std::string> row_;
};

/// `s` without leading/trailing spaces, tabs, or carriage returns — the
/// same character class every parser here trims, so CRLF exports and
/// padded fields behave identically on every path.
std::string_view trim_view(std::string_view s) noexcept;

/// Splits one CSV line into trimmed fields.
std::vector<std::string> split_csv_line(std::string_view line);

/// Splits into `fields`, reusing its string capacity row over row.
void split_csv_line_into(std::string_view line,
                         std::vector<std::string>& fields);

/// Writes one row, joining fields with commas.
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Strict numeric parses; nullopt on any trailing garbage. Inputs are
/// expected pre-trimmed (CsvReader and the fast path both trim fields).
std::optional<double> parse_double(std::string_view s) noexcept;
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;

/// Missing-tolerant value parse: empty, "nan"/"na" in any case and with
/// surrounding whitespace (trim_view's class) read as missing, as does
/// anything unparseable.
double parse_double_or_missing(std::string_view s) noexcept;

}  // namespace litmus::io
