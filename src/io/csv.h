// Minimal CSV reading/writing for the interchange formats in io/store.h.
// No quoting dialects: fields are comma-separated, '#' starts a comment
// line, blank lines are skipped. That covers the telemetry exports this
// library consumes and keeps the parser obviously correct.
#pragma once

#include <cstddef>
#include <istream>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace litmus::io {

/// Parse failure with the 1-based source line attached, so a bad export
/// can be fixed without bisecting the file ("series csv line 841: ...").
class CsvError : public std::runtime_error {
 public:
  CsvError(const std::string& source, std::size_t line,
           const std::string& message);

  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Row reader that tracks physical line numbers across skipped comments
/// and blanks. `source` names the input in error messages (e.g.
/// "topology csv").
class CsvReader {
 public:
  CsvReader(std::istream& in, std::string source);

  /// Next data row (skipping comments/blanks); nullopt at EOF.
  std::optional<std::vector<std::string>> next();

  /// 1-based line number of the most recently returned row (0 before the
  /// first next()).
  std::size_t line() const noexcept { return line_; }

  /// Throws CsvError pinned to the current row's line.
  [[noreturn]] void fail(const std::string& message) const;

  /// fail() unless the current row has exactly `expected` fields.
  void require_fields(const std::vector<std::string>& row,
                      std::size_t expected) const;

 private:
  std::istream* in_;
  std::string source_;
  std::size_t line_ = 0;
};

/// Splits one CSV line into trimmed fields.
std::vector<std::string> split_csv_line(const std::string& line);

/// Reads the next data row (skipping comments/blanks); nullopt at EOF.
std::optional<std::vector<std::string>> read_csv_row(std::istream& in);

/// Writes one row, joining fields with commas.
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Strict numeric parses; nullopt on any trailing garbage. The value "" and
/// "nan" parse as missing for parse_double_or_missing.
std::optional<double> parse_double(const std::string& s);
double parse_double_or_missing(const std::string& s);
std::optional<std::int64_t> parse_int(const std::string& s);

}  // namespace litmus::io
