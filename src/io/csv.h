// Minimal CSV reading/writing for the interchange formats in io/store.h.
// No quoting dialects: fields are comma-separated, '#' starts a comment
// line, blank lines are skipped. That covers the telemetry exports this
// library consumes and keeps the parser obviously correct.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace litmus::io {

/// Splits one CSV line into trimmed fields.
std::vector<std::string> split_csv_line(const std::string& line);

/// Reads the next data row (skipping comments/blanks); nullopt at EOF.
std::optional<std::vector<std::string>> read_csv_row(std::istream& in);

/// Writes one row, joining fields with commas.
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Strict numeric parses; nullopt on any trailing garbage. The value "" and
/// "nan" parse as missing for parse_double_or_missing.
std::optional<double> parse_double(const std::string& s);
double parse_double_or_missing(const std::string& s);
std::optional<std::int64_t> parse_int(const std::string& s);

}  // namespace litmus::io
