#include "eval/group_sim.h"

#include <algorithm>
#include <cmath>

#include "simkit/seasonality.h"
#include "tsmath/random.h"

namespace litmus::eval {
namespace {

net::ElementKind parent_kind_for(net::ElementKind kind) {
  switch (kind) {
    case net::ElementKind::kNodeB: return net::ElementKind::kRnc;
    case net::ElementKind::kBts: return net::ElementKind::kBsc;
    case net::ElementKind::kEnodeB: return net::ElementKind::kMme;
    case net::ElementKind::kRnc:
    case net::ElementKind::kBsc: return net::ElementKind::kMsc;
    case net::ElementKind::kMsc: return net::ElementKind::kGmsc;
    default: return net::ElementKind::kMsc;
  }
}

// Applies the external factor shift to a series: step at the change bin, or
// a slow drift starting mid-way through the before window (foliage-style).
void apply_factor(ts::TimeSeries& s, kpi::KpiId kpi, double sigma,
                  FactorShape shape, std::int64_t change_bin,
                  std::int64_t after_end) {
  if (sigma == 0.0) return;
  const double delta = sim::sigma_to_kpi_delta(kpi, sigma);
  switch (shape) {
    case FactorShape::kLevel:
      s.add_level(change_bin, after_end, delta);
      break;
    case FactorShape::kRamp: {
      const std::int64_t ramp_start = change_bin - (change_bin - s.start_bin()) / 2;
      s.add_ramp(ramp_start, after_end, delta);
      break;
    }
  }
  if (kpi::info(kpi).is_ratio) s.clamp(0.0, 1.0);
}

}  // namespace

FlatGroup make_flat_group(net::ElementKind kind, net::Technology tech,
                          net::Region region, std::size_t n,
                          std::uint64_t seed, std::size_t n_outsiders) {
  FlatGroup g;
  ts::Rng rng(seed);
  const net::GeoPoint anchor = net::region_anchor(region);
  const net::Region outsider_region =
      static_cast<net::Region>((static_cast<int>(region) + 1) % 5);

  net::NetworkElement parent;
  parent.id = net::ElementId{1};
  parent.kind = parent_kind_for(kind);
  parent.technology = tech;
  parent.name = "parent";
  parent.location = anchor;
  parent.zip = net::ZipCode{70000};
  parent.region = region;
  parent.market = 0;
  g.topo.add(parent);
  g.parent = parent.id;

  for (std::size_t i = 0; i < n; ++i) {
    const bool outsider = i >= n - std::min(n_outsiders, n);
    net::NetworkElement e;
    e.id = net::ElementId{static_cast<std::uint32_t>(2 + i)};
    e.kind = kind;
    e.technology = tech;
    e.name = "elem" + std::to_string(i);
    e.location = {anchor.lat_deg + rng.uniform(-0.2, 0.2),
                  anchor.lon_deg + rng.uniform(-0.2, 0.2)};
    e.zip = net::ZipCode{70000u + static_cast<std::uint32_t>(i % 5)};
    e.region = outsider ? outsider_region : region;
    e.parent = g.parent;
    e.market = outsider ? 1 : 0;
    g.topo.add(e);
    g.elements.push_back(e.id);
  }
  return g;
}

core::Verdict truth_of(const EpisodeSpec& spec,
                       double control_injection_sigma) {
  constexpr double kEps = 0.25;  // below this, the change is noise-level
  const double relative = spec.true_sigma - control_injection_sigma;
  if (relative > kEps) return core::Verdict::kImprovement;
  if (relative < -kEps) return core::Verdict::kDegradation;
  return core::Verdict::kNoImpact;
}

Episode simulate_episode(const EpisodeSpec& spec,
                         double control_injection_sigma) {
  Episode ep;
  ep.kpi = spec.kpi;
  ep.truth = truth_of(spec, control_injection_sigma);

  const std::size_t n_total = spec.n_study + spec.n_control;
  const std::size_t n_contam =
      std::min(spec.contaminated_controls, spec.n_control);
  FlatGroup group = make_flat_group(spec.kind, spec.tech, spec.region,
                                    n_total, spec.seed, n_contam);

  sim::GeneratorConfig gen_cfg;
  gen_cfg.seed = spec.seed * 0x9E3779B97F4A7C15ULL + 11;
  sim::KpiGenerator gen(group.topo, gen_cfg);
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>(0.3));

  const std::int64_t change_bin = 0;
  const std::int64_t start =
      change_bin - static_cast<std::int64_t>(spec.before_bins);
  const std::size_t n_bins = spec.before_bins + spec.after_bins;
  const std::int64_t after_end =
      change_bin + static_cast<std::int64_t>(spec.after_bins);

  ts::Rng rng(spec.seed ^ 0xABCDEF12345ULL);

  // Generate the full-group series, then layer on injections.
  std::vector<ts::TimeSeries> series;
  series.reserve(n_total);
  for (std::size_t i = 0; i < n_total; ++i) {
    ts::TimeSeries s = gen.kpi_series(group.elements[i], spec.kpi, start,
                                      n_bins);
    const bool is_study = i < spec.n_study;

    // (i) The change's true impact at the study group.
    if (is_study && spec.true_sigma != 0.0) {
      sim::Injection inj;
      inj.at_bin = change_bin;
      inj.magnitude_sigma = spec.true_sigma;
      sim::apply_injection(s, spec.kpi, inj);
    }
    // (Table 3) A synthetic injection into every control element.
    if (!is_study && control_injection_sigma != 0.0) {
      sim::Injection inj;
      inj.at_bin = change_bin;
      inj.magnitude_sigma = control_injection_sigma;
      sim::apply_injection(s, spec.kpi, inj);
    }
    // (ii) Shared external factor. Its per-element strength scales with the
    // same regional susceptibility that drives the latent model (a site
    // that feels regional conditions strongly also feels the storm
    // strongly), times an optional extra heterogeneity.
    if (spec.factor_sigma != 0.0) {
      const double intensity =
          gen.combined_loading(group.elements[i]) *
          (1.0 - spec.factor_heterogeneity * rng.next_double());
      apply_factor(s, spec.kpi, spec.factor_sigma * intensity,
                   spec.factor_shape, change_bin, after_end);
    }
    series.push_back(std::move(s));
  }

  // (iii) Contamination in the outsider control elements (group tail).
  for (std::size_t c = 0; c < n_contam; ++c) {
    ts::TimeSeries& s = series[n_total - 1 - c];
    double sign = spec.contamination_sign != 0
                      ? static_cast<double>(spec.contamination_sign)
                      : (rng.chance(0.5) ? 1.0 : -1.0);
    const std::int64_t at =
        spec.contamination_at_change
            ? change_bin
            : start + static_cast<std::int64_t>(rng.next_below(
                          static_cast<std::uint64_t>(n_bins)));
    const double delta =
        sim::sigma_to_kpi_delta(spec.kpi, sign * spec.contamination_sigma);
    s.add_level(at, s.end_bin(), delta);
    if (kpi::info(spec.kpi).is_ratio) s.clamp(0.0, 1.0);
  }

  // Split into analyzer windows per study element.
  for (std::size_t j = 0; j < spec.n_study; ++j) {
    core::ElementWindows w;
    w.study_before = series[j].slice_bins(start, change_bin);
    w.study_after = series[j].slice_bins(change_bin, after_end);
    for (std::size_t c = 0; c < spec.n_control; ++c) {
      const ts::TimeSeries& cs = series[spec.n_study + c];
      w.control_before.push_back(cs.slice_bins(start, change_bin));
      w.control_after.push_back(cs.slice_bins(change_bin, after_end));
    }
    ep.study_windows.push_back(std::move(w));
  }
  return ep;
}

}  // namespace litmus::eval
