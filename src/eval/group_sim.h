// Episode simulation shared by the known-assessment (Table 2) and
// synthetic-injection (Tables 3/4) evaluation suites.
//
// An episode is one (change, study group, control group, KPI) assessment:
// the simulator produces spatially-correlated KPI series for the whole
// group, then the episode spec layers on (i) the change's true impact at
// the study elements, (ii) an overlapping external-factor shift hitting
// study and control alike (optionally with per-element heterogeneity), and
// (iii) contamination — unrelated level changes in a few control elements,
// the regime that separates robust spatial regression from DiD.
#pragma once

#include <cstdint>
#include <vector>

#include "cellnet/topology.h"
#include "litmus/analysis.h"
#include "simkit/generator.h"
#include "simkit/injection.h"

namespace litmus::eval {

/// Builds a minimal topology for a group study: one parent controller with
/// `n` children of `kind` scattered in `region`. Children ids are returned
/// in order; the parent is id 1.
struct FlatGroup {
  net::Topology topo;
  net::ElementId parent;
  std::vector<net::ElementId> elements;
};

/// The last `n_outsiders` children are *bad predictors*: they live in a
/// different market and region, so they do not share the study group's
/// latent components — the paper's business-vs-lake control-selection
/// mistake (Section 3.2).
FlatGroup make_flat_group(net::ElementKind kind, net::Technology tech,
                          net::Region region, std::size_t n,
                          std::uint64_t seed, std::size_t n_outsiders = 0);

/// Temporal shape of the external-factor confound.
enum class FactorShape : std::uint8_t {
  kLevel,  ///< step co-occurring with the change (storm, holiday, upstream)
  kRamp,   ///< gradual drift across the window (foliage budding/falling)
};

struct EpisodeSpec {
  kpi::KpiId kpi = kpi::KpiId::kVoiceRetainability;
  net::ElementKind kind = net::ElementKind::kNodeB;
  net::Technology tech = net::Technology::kUmts;
  net::Region region = net::Region::kNortheast;
  std::size_t n_study = 1;
  std::size_t n_control = 12;
  std::size_t before_bins = 14 * 24;
  std::size_t after_bins = 14 * 24;

  /// True impact of the change at the study group, latent sigma units
  /// (+ improves service). 0 = the change truly had no impact.
  double true_sigma = 0.0;

  /// External-factor shift applied after the change bin to *both* groups.
  double factor_sigma = 0.0;
  FactorShape factor_shape = FactorShape::kLevel;
  /// Per-element factor intensity spread: each element's factor effect is
  /// scaled by U(1 - h, 1). 0 = homogeneous.
  double factor_heterogeneity = 0.0;

  /// Contamination: this many control elements receive an unrelated level
  /// change of `contamination_sigma` (sign chosen by `contamination_sign`:
  /// 0 = random per element). Contaminated controls are also *bad
  /// predictors* (de-correlated outsiders) — operationally, the same
  /// poorly-chosen control members are the ones whose unrelated behaviour
  /// bites (Section 3.2's motivation for robustness).
  std::size_t contaminated_controls = 0;
  double contamination_sigma = 0.0;
  int contamination_sign = 0;
  /// When true the contamination lands exactly at the change bin (an
  /// unrelated event co-occurring with the change — the hardest case);
  /// otherwise at a random bin in the window.
  bool contamination_at_change = false;

  std::uint64_t seed = 1;
};

/// The materialized episode: per-study-element analyzer windows plus the
/// ground-truth verdict for labeling.
struct Episode {
  std::vector<core::ElementWindows> study_windows;
  core::Verdict truth = core::Verdict::kNoImpact;
  kpi::KpiId kpi = kpi::KpiId::kVoiceRetainability;
};

/// Ground truth implied by a spec: the sign of the *relative* change of the
/// study group against the control group, mapped through KPI polarity.
/// (For injections in both groups this is the magnitude difference —
/// paper Table 3.)
core::Verdict truth_of(const EpisodeSpec& spec,
                       double control_injection_sigma = 0.0);

/// Simulates one episode. `control_injection_sigma` additionally injects a
/// change into every control element (Table 3's "Control" and
/// "Study, Control" rows); the study injection is `spec.true_sigma`.
Episode simulate_episode(const EpisodeSpec& spec,
                         double control_injection_sigma = 0.0);

}  // namespace litmus::eval
