#include "eval/labeling.h"

#include <limits>

namespace litmus::eval {
namespace {
double ratio(std::size_t num, std::size_t den) noexcept {
  return den == 0 ? std::numeric_limits<double>::quiet_NaN()
                  : static_cast<double>(num) / static_cast<double>(den);
}
}  // namespace

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::kTp: return "TP";
    case Outcome::kTn: return "TN";
    case Outcome::kFp: return "FP";
    case Outcome::kFn: return "FN";
  }
  return "?";
}

Outcome label(core::Verdict truth, core::Verdict observed) noexcept {
  using core::Verdict;
  if (truth == Verdict::kNoImpact)
    return observed == Verdict::kNoImpact ? Outcome::kTn : Outcome::kFp;
  // Truth is a significant impact: only the matching direction counts.
  return observed == truth ? Outcome::kTp : Outcome::kFn;
}

void ConfusionCounts::add(Outcome o) noexcept {
  switch (o) {
    case Outcome::kTp: ++tp; break;
    case Outcome::kTn: ++tn; break;
    case Outcome::kFp: ++fp; break;
    case Outcome::kFn: ++fn; break;
  }
}

ConfusionCounts& ConfusionCounts::operator+=(
    const ConfusionCounts& o) noexcept {
  tp += o.tp;
  tn += o.tn;
  fp += o.fp;
  fn += o.fn;
  return *this;
}

double ConfusionCounts::precision() const noexcept { return ratio(tp, tp + fp); }
double ConfusionCounts::recall() const noexcept { return ratio(tp, tp + fn); }
double ConfusionCounts::true_negative_rate() const noexcept {
  return ratio(tn, tn + fp);
}
double ConfusionCounts::accuracy() const noexcept {
  return ratio(tp + tn, total());
}

}  // namespace litmus::eval
