#include "eval/synthetic.h"

#include <algorithm>
#include <cmath>
#include <atomic>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"
#include "tsmath/random.h"

namespace litmus::eval {
namespace {

constexpr std::array<kpi::KpiId, 4> kKpis = {
    kpi::KpiId::kVoiceAccessibility,
    kpi::KpiId::kVoiceRetainability,
    kpi::KpiId::kDataAccessibility,
    kpi::KpiId::kDataRetainability,
};

constexpr std::array<net::Region, 4> kRegions = {
    net::Region::kNortheast,
    net::Region::kSoutheast,
    net::Region::kWest,
    net::Region::kSouthwest,
};

std::string pct(double v) {
  if (std::isnan(v)) return "  n/a ";
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << 100.0 * v << "%";
  return os.str();
}

}  // namespace

const char* to_string(InjectionPattern p) noexcept {
  switch (p) {
    case InjectionPattern::kNone: return "none";
    case InjectionPattern::kStudyOnly: return "study";
    case InjectionPattern::kControlOnly: return "control";
    case InjectionPattern::kBothSameMagnitude: return "study+control same";
    case InjectionPattern::kBothDifferentMagnitude:
      return "study+control different";
  }
  return "?";
}

std::span<const kpi::KpiId> synthetic_kpis() noexcept { return kKpis; }
std::span<const net::Region> synthetic_regions() noexcept { return kRegions; }

TrialOutcome run_trial(const SyntheticConfig& cfg, InjectionPattern p,
                       net::Region region, kpi::KpiId kpi,
                       std::uint64_t trial_seed) {
  ts::Rng rng(trial_seed);

  auto draw_magnitude = [&]() {
    const double mag =
        rng.uniform(cfg.min_injection_sigma, cfg.max_injection_sigma);
    return rng.chance(0.5) ? mag : -mag;
  };

  double study_sigma = 0.0;
  double control_sigma = 0.0;
  switch (p) {
    case InjectionPattern::kNone:
      break;
    case InjectionPattern::kStudyOnly:
      study_sigma = draw_magnitude();
      break;
    case InjectionPattern::kControlOnly:
      control_sigma = draw_magnitude();
      break;
    case InjectionPattern::kBothSameMagnitude:
      study_sigma = draw_magnitude();
      control_sigma = study_sigma;
      break;
    case InjectionPattern::kBothDifferentMagnitude: {
      study_sigma = draw_magnitude();
      // Offset by at least the minimum gap, direction random.
      const double gap = cfg.min_gap_sigma + rng.uniform(0.0, 1.2);
      control_sigma = rng.chance(0.5) ? study_sigma + gap : study_sigma - gap;
      break;
    }
  }

  EpisodeSpec spec;
  spec.kpi = kpi;
  spec.region = region;
  spec.n_study = 1;
  spec.n_control = cfg.n_controls;
  spec.before_bins = cfg.before_bins;
  spec.after_bins = cfg.after_bins;
  spec.true_sigma = study_sigma;
  if (rng.chance(cfg.contamination_probability)) {
    spec.contaminated_controls =
        cfg.min_contaminated_controls +
        static_cast<std::size_t>(rng.next_below(
            cfg.max_contaminated_controls - cfg.min_contaminated_controls + 1));
    spec.contamination_sigma =
        rng.uniform(cfg.min_contamination_sigma, cfg.max_contamination_sigma);
    // One unrelated event hits the contaminated cluster: a common direction.
    spec.contamination_sign = rng.chance(0.5) ? 1 : -1;
  }
  spec.seed = rng.next_u64() | 1;

  const Episode ep = simulate_episode(spec, control_sigma);
  const core::ElementWindows& w = ep.study_windows.front();

  static const core::StudyOnlyAnalyzer study_only;
  static const core::DiDAnalyzer did;
  static const core::RobustSpatialRegression litmus;

  TrialOutcome out;
  out.pattern = p;
  out.truth = ep.truth;
  out.study_only = label(ep.truth, study_only.assess(w, kpi).verdict);
  out.did = label(ep.truth, did.assess(w, kpi).verdict);
  out.litmus = label(ep.truth, litmus.assess(w, kpi).verdict);
  return out;
}

SyntheticResults run_synthetic_sweep(const SyntheticConfig& cfg,
                                     unsigned threads) {
  // Enumerate every trial up front so work can be split across threads
  // while keeping the per-trial seed a pure function of the trial index.
  struct TrialSpec {
    InjectionPattern pattern;
    net::Region region;
    kpi::KpiId kpi;
    std::uint64_t seed;
  };
  std::vector<TrialSpec> specs;
  std::uint64_t counter = 0;
  for (const InjectionPattern p : kAllPatterns)
    for (const net::Region region : kRegions)
      for (const kpi::KpiId kpi : kKpis)
        for (std::size_t t = 0; t < cfg.trials_per_cell; ++t)
          specs.push_back({p, region, kpi,
                           cfg.seed * 0x9E3779B97F4A7C15ULL +
                               (++counter) * 0x2545F4914F6CDD1DULL});

  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<unsigned>(threads,
                               static_cast<unsigned>(specs.size()) + 1);

  std::vector<TrialOutcome> outcomes(specs.size());
  std::atomic<std::size_t> next{0};
  auto worker = [&](unsigned worker_idx) {
    const std::uint64_t started_ns = obs::now_ns();
    std::size_t done = 0;
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size()) break;
      obs::ScopedSpan span("synthetic.trial");
      const TrialSpec& s = specs[i];
      outcomes[i] = run_trial(cfg, s.pattern, s.region, s.kpi, s.seed);
      ++done;
    }
    if (obs::enabled() && done > 0) {
      auto& reg = obs::Registry::global();
      reg.counter("synthetic.trials").add(done);
      const std::string prefix =
          "synthetic.worker." + std::to_string(worker_idx);
      reg.counter(prefix + ".trials").add(done);
      const double elapsed_s =
          static_cast<double>(obs::now_ns() - started_ns) / 1e9;
      if (elapsed_s > 0)
        reg.gauge(prefix + ".trials_per_s")
            .set(static_cast<double>(done) / elapsed_s);
    }
  };
  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& t : pool) t.join();

  SyntheticResults r;
  for (const TrialOutcome& o : outcomes) {
    const auto pi = static_cast<std::size_t>(o.pattern);
    r.study_only.add(o.study_only);
    r.did.add(o.did);
    r.litmus.add(o.litmus);
    r.study_only_by_pattern[pi].add(o.study_only);
    r.did_by_pattern[pi].add(o.did);
    r.litmus_by_pattern[pi].add(o.litmus);
    ++r.trials;
  }
  return r;
}

std::string format_table4(const SyntheticResults& r) {
  std::ostringstream os;
  os << "Table 4: Evaluation results using synthetic injection ("
     << r.trials << " cases)\n";
  os << "----------------------------------------------------------------------\n";
  os << "                     Study Group      Difference in    Litmus Robust\n";
  os << "                     Only Analysis    Differences      Spatial Regr.\n";
  os << "----------------------------------------------------------------------\n";
  auto row = [&](const char* name, auto get) {
    os << name;
    for (const ConfusionCounts* c : {&r.study_only, &r.did, &r.litmus}) {
      std::ostringstream cell;
      cell << get(*c);
      std::string s = cell.str();
      s.insert(s.begin(), 17 - std::min<std::size_t>(16, s.size()), ' ');
      os << s;
    }
    os << "\n";
  };
  row("True positive     ", [](const ConfusionCounts& c) { return std::to_string(c.tp); });
  row("True negative     ", [](const ConfusionCounts& c) { return std::to_string(c.tn); });
  row("False positive    ", [](const ConfusionCounts& c) { return std::to_string(c.fp); });
  row("False negative    ", [](const ConfusionCounts& c) { return std::to_string(c.fn); });
  row("Precision         ", [](const ConfusionCounts& c) { return pct(c.precision()); });
  row("Recall            ", [](const ConfusionCounts& c) { return pct(c.recall()); });
  row("True negative rate", [](const ConfusionCounts& c) { return pct(c.true_negative_rate()); });
  row("Accuracy          ", [](const ConfusionCounts& c) { return pct(c.accuracy()); });
  os << "----------------------------------------------------------------------\n";
  return os.str();
}

std::string format_table3(const SyntheticResults& r) {
  std::ostringstream os;
  os << "Table 3: case scenarios (share of correct outcomes per pattern)\n";
  os << "--------------------------------------------------------------------------\n";
  os << "Injection                 Expectation   StudyOnly   DiD      Litmus\n";
  os << "--------------------------------------------------------------------------\n";
  for (std::size_t i = 0; i < kAllPatterns.size(); ++i) {
    const InjectionPattern p = kAllPatterns[i];
    const char* expect =
        (p == InjectionPattern::kNone || p == InjectionPattern::kBothSameMagnitude)
            ? "no impact "
            : "impact    ";
    std::string name = to_string(p);
    name.resize(25, ' ');
    os << name << " " << expect << "   " << pct(r.study_only_by_pattern[i].accuracy())
       << "    " << pct(r.did_by_pattern[i].accuracy()) << "   "
       << pct(r.litmus_by_pattern[i].accuracy()) << "\n";
  }
  os << "--------------------------------------------------------------------------\n";
  return os.str();
}

}  // namespace litmus::eval
