// Synthetic-injection evaluation (paper Section 4.3, Tables 3 and 4).
//
// Level shifts are injected into generated study/control series following
// the five Table-3 patterns (none / study / control / both-same /
// both-different), with a noise component (level change) planted in a small
// number of control elements to make dependency learning challenging. The
// sweep runs every pattern across four regions and four KPIs with many
// seeded trials, evaluates the three algorithms, and accumulates the
// Table-4 confusion summary.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "eval/group_sim.h"
#include "eval/labeling.h"

namespace litmus::eval {

/// Table 3 injection patterns.
enum class InjectionPattern : std::uint8_t {
  kNone,
  kStudyOnly,
  kControlOnly,
  kBothSameMagnitude,
  kBothDifferentMagnitude,
};

const char* to_string(InjectionPattern p) noexcept;

inline constexpr std::array<InjectionPattern, 5> kAllPatterns = {
    InjectionPattern::kNone, InjectionPattern::kStudyOnly,
    InjectionPattern::kControlOnly, InjectionPattern::kBothSameMagnitude,
    InjectionPattern::kBothDifferentMagnitude,
};

struct SyntheticConfig {
  std::uint64_t seed = 2013;
  /// Trials per (pattern, region, kpi) cell. The paper evaluates 8010
  /// cases; 5 patterns x 4 regions x 4 KPIs x 100 trials ~ 8000.
  std::size_t trials_per_cell = 100;
  std::size_t n_controls = 12;
  std::size_t before_bins = 14 * 24;  ///< "14 days before the change"
  std::size_t after_bins = 14 * 24;
  /// Injection magnitudes drawn from [min, max] sigma with random sign.
  double min_injection_sigma = 0.8;
  double max_injection_sigma = 3.0;
  /// For both-different: the relative gap between study and control.
  double min_gap_sigma = 0.8;
  /// Contamination ("a noise component (level change) in a small number of
  /// control group elements"): present in `contamination_probability` of
  /// trials; when present, 2-4 controls are bad predictors carrying an
  /// unrelated level change.
  double contamination_probability = 0.6;
  std::size_t min_contaminated_controls = 2;
  std::size_t max_contaminated_controls = 5;
  double min_contamination_sigma = 3.0;
  double max_contamination_sigma = 9.0;
};

/// Result of one trial: the ground truth plus each algorithm's labeling.
struct TrialOutcome {
  InjectionPattern pattern;
  core::Verdict truth;
  Outcome study_only;
  Outcome did;
  Outcome litmus;
};

struct SyntheticResults {
  ConfusionCounts study_only;
  ConfusionCounts did;
  ConfusionCounts litmus;
  /// Per-pattern breakdown (Table 3 view), indexed by InjectionPattern.
  std::array<ConfusionCounts, 5> study_only_by_pattern;
  std::array<ConfusionCounts, 5> did_by_pattern;
  std::array<ConfusionCounts, 5> litmus_by_pattern;
  std::size_t trials = 0;
};

/// Runs the full sweep. Deterministic given the config regardless of
/// `threads` (every trial's seed is a pure function of its index; results
/// merge in index order). threads == 0 uses the hardware concurrency.
SyntheticResults run_synthetic_sweep(const SyntheticConfig& config,
                                     unsigned threads = 0);

/// Runs one trial (exposed for tests and the Table 3 bench).
TrialOutcome run_trial(const SyntheticConfig& config, InjectionPattern p,
                       net::Region region, kpi::KpiId kpi,
                       std::uint64_t trial_seed);

/// The four KPIs the paper's synthetic evaluation uses (voice and data
/// accessibility and retainability).
std::span<const kpi::KpiId> synthetic_kpis() noexcept;

/// The four geographically diverse regions (Section 4.3).
std::span<const net::Region> synthetic_regions() noexcept;

/// Formats Table 4 (counts + the four metrics for each algorithm).
std::string format_table4(const SyntheticResults& r);

/// Formats the Table 3 case-scenario matrix with observed outcome rates.
std::string format_table3(const SyntheticResults& r);

}  // namespace litmus::eval
