// Outcome labeling (paper Table 1) and confusion metrics (Section 4.1).
//
// The paper labels each algorithm outcome against the known assessment
// (ground truth): a significant impact correctly identified (direction
// included) is a true positive; reporting impact where none exists is a
// false positive; missing an impact — or calling the wrong direction — is a
// false negative; correctly reporting no impact is a true negative.
#pragma once

#include <cstddef>
#include <cstdint>

#include "litmus/analysis.h"

namespace litmus::eval {

enum class Outcome : std::uint8_t { kTp, kTn, kFp, kFn };

const char* to_string(Outcome o) noexcept;

/// Table 1: label `observed` against ground truth `truth`.
Outcome label(core::Verdict truth, core::Verdict observed) noexcept;

struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t tn = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;

  void add(Outcome o) noexcept;
  ConfusionCounts& operator+=(const ConfusionCounts& o) noexcept;

  std::size_t total() const noexcept { return tp + tn + fp + fn; }
  /// All ratios return NaN when their denominator is zero.
  double precision() const noexcept;          ///< TP / (TP + FP)
  double recall() const noexcept;             ///< TP / (TP + FN)
  double true_negative_rate() const noexcept; ///< TN / (TN + FP)
  double accuracy() const noexcept;           ///< (TP+TN) / total
};

}  // namespace litmus::eval
