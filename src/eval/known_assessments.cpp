#include "eval/known_assessments.h"

#include <cmath>
#include <sstream>

#include "litmus/did.h"
#include "litmus/spatial_regression.h"
#include "litmus/study_only.h"

namespace litmus::eval {
namespace {

using kpi::KpiId;
using net::ElementKind;
using net::Region;
using net::Technology;

constexpr double kImpact = 2.2;   // typical assessed shift, sigma units
constexpr double kModest = 1.2;   // modest shift (harder to detect)

std::string pct(double v) {
  if (std::isnan(v)) return "n/a";
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << 100.0 * v << "%";
  return os.str();
}

}  // namespace

std::vector<KnownChangeRow> table2_rows() {
  std::vector<KnownChangeRow> rows;

  // 1. SON load balancing at RNCs during foliage; improvement in voice and
  //    data retainability, throughput unaffected. Foliage drift degrades
  //    everything and fools study-only; contamination trips DiD on part.
  rows.push_back({"SON load balancing", ElementKind::kRnc, Technology::kUmts,
                  Region::kNortheast, 18,
                  {{KpiId::kVoiceRetainability, kImpact},
                   {KpiId::kDataRetainability, kImpact},
                   {KpiId::kDataThroughput, 0.0}},
                  "foliage", -2.2, FactorShape::kRamp, 0.05, 4, 8.8, +1});

  // 2. Radio link failure timer at RNCs; clean improvement.
  rows.push_back({"Radio link failure timer", ElementKind::kRnc,
                  Technology::kUmts, Region::kSoutheast, 3,
                  {{KpiId::kVoiceRetainability, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 3. Power tuning at a NodeB; no real effect, no confound.
  rows.push_back({"Power", ElementKind::kNodeB, Technology::kUmts,
                  Region::kWest, 1,
                  {{KpiId::kDataThroughput, 0.0}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 4. Radio link parameter at 25 NodeBs; truly no impact, but an unrelated
  //    regional change lifts everything (study-only false positives).
  rows.push_back({"Radio link", ElementKind::kNodeB, Technology::kUmts,
                  Region::kSouthwest, 25,
                  {{KpiId::kVoiceRetainability, 0.0}},
                  "other change", 1.8, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 5. Power change at 16 RNCs; real improvement masked by a co-occurring
  //    regional degradation (study-only reads it backwards).
  rows.push_back({"Power change", ElementKind::kRnc, Technology::kUmts,
                  Region::kWest, 16,
                  {{KpiId::kDataRetainability, 1.6},
                   {KpiId::kDataAccessibility, 1.6}},
                  "other change", -2.4, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 6. New UE types at MSCs in Fall; no real impact, foliage improvement
  //    (leaves falling) fools study-only — the Fig 9 case.
  rows.push_back({"Update new UE types", ElementKind::kMsc, Technology::kUmts,
                  Region::kNortheast, 3,
                  {{KpiId::kVoiceRetainability, 0.0}},
                  "seasonality", 2.0, FactorShape::kRamp, 0.05, 0, 0.0, 0});

  // 7. Data parameter at 2 RNCs; clean improvements, but control
  //    contamination makes some DiD calls miss.
  rows.push_back({"Data parameter", ElementKind::kRnc, Technology::kUmts,
                  Region::kMidwest, 2,
                  {{KpiId::kDataRetainability, kImpact},
                   {KpiId::kVoiceRetainability, kImpact},
                   {KpiId::kDataAccessibility, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 4, 8.8, +1});

  // 8. Limit max power at RNCs during a holiday surge; no real impact.
  rows.push_back({"Limit max power", ElementKind::kRnc, Technology::kUmts,
                  Region::kSoutheast, 3,
                  {{KpiId::kDataThroughput, 0.0}},
                  "holiday", 1.8, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 9. Access threshold at one RNC; clean improvement.
  rows.push_back({"Access threshold", ElementKind::kRnc, Technology::kUmts,
                  Region::kSouthwest, 1,
                  {{KpiId::kVoiceRetainability, 2.5}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 10. Time-to-trigger at one eNodeB (LTE); clean improvement.
  rows.push_back({"Time to trigger", ElementKind::kEnodeB, Technology::kLte,
                  Region::kWest, 1,
                  {{KpiId::kDataAccessibility, 2.5}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 11. Radio link at one BSC (GSM); improvement masked by a storm.
  rows.push_back({"Radio link", ElementKind::kBsc, Technology::kGsm,
                  Region::kSoutheast, 1,
                  {{KpiId::kVoiceRetainability, kImpact}},
                  "weather", -2.4, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 12. Timer changes at 5 RNCs, 5 KPIs; one real improvement, the other
  //     four flat but lifted by an unrelated upstream change.
  rows.push_back({"Timer changes", ElementKind::kRnc, Technology::kUmts,
                  Region::kNortheast, 5,
                  {{KpiId::kVoiceAccessibility, 0.0},
                   {KpiId::kVoiceRetainability, kImpact},
                   {KpiId::kDataAccessibility, 0.0},
                   {KpiId::kDataRetainability, 0.0},
                   {KpiId::kDataThroughput, 0.0}},
                  "other change", 1.8, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 13. State transition features at one RNC; clean improvement.
  rows.push_back({"State transition features", ElementKind::kRnc,
                  Technology::kUmts, Region::kMidwest, 1,
                  {{KpiId::kVoiceRetainability, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 14. SON neighbor discovery & load balancing during severe weather;
  //     genuine improvements under an absolute degradation (Fig 10 regime).
  rows.push_back({"SON neighbor discovery & load balancing",
                  ElementKind::kRnc, Technology::kUmts, Region::kNortheast, 2,
                  {{KpiId::kDataRetainability, kImpact},
                   {KpiId::kVoiceRetainability, kImpact},
                   {KpiId::kDataAccessibility, kImpact},
                   {KpiId::kVoiceAccessibility, kImpact}},
                  "weather", -2.6, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  // 15. Reduce downlink interference at 30 eNodeBs; strong clean win.
  rows.push_back({"Reduce downlink interference", ElementKind::kEnodeB,
                  Technology::kLte, Region::kSouthwest, 30,
                  {{KpiId::kDataAccessibility, kImpact},
                   {KpiId::kDataRetainability, kImpact},
                   {KpiId::kDataThroughput, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 16. Handover parameter at 19 RNCs; modest improvement, masking
  //     degradation *and* same-direction contamination — the row where both
  //     baselines struggle and robustness pays.
  rows.push_back({"Handover", ElementKind::kRnc, Technology::kUmts,
                  Region::kWest, 19,
                  {{KpiId::kDataRetainability, kModest},
                   {KpiId::kVoiceRetainability, kModest}},
                  "other change", -1.8, FactorShape::kLevel, 0.05, 4, 4.8, +1});

  // 17. Inter-system handover at 3 RNCs; clean improvement.
  rows.push_back({"Inter-system handover", ElementKind::kRnc,
                  Technology::kUmts, Region::kSoutheast, 3,
                  {{KpiId::kVoiceRetainability, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 18. Software upgrade at 9 eNodeBs; clean improvement.
  rows.push_back({"Software", ElementKind::kEnodeB, Technology::kLte,
                  Region::kNortheast, 9,
                  {{KpiId::kDataRetainability, kImpact}},
                  "", 0.0, FactorShape::kLevel, 0.0, 0, 0.0, 0});

  // 19. Same software upgrade, radio-bearer KPI: truly flat, mild regional
  //     drift trips study-only.
  rows.push_back({"Software (radio bearer)", ElementKind::kEnodeB,
                  Technology::kLte, Region::kWest, 9,
                  {{KpiId::kVoiceAccessibility, 0.0}},
                  "other change", 1.2, FactorShape::kLevel, 0.05, 0, 0.0, 0});

  return rows;
}

namespace {

EpisodeSpec episode_spec_for(const KnownChangeRow& row, const KpiTruth& kt,
                             std::uint64_t seed, std::uint64_t kpi_counter) {
  EpisodeSpec spec;
  spec.kpi = kt.kpi;
  spec.kind = row.location;
  spec.tech = row.tech;
  spec.region = row.region;
  spec.n_study = row.n_study;
  spec.n_control = 16;
  spec.true_sigma = kt.true_sigma;
  spec.factor_sigma = row.factor_sigma;
  spec.factor_shape = row.factor_shape;
  spec.factor_heterogeneity = row.factor_heterogeneity;
  // Contamination models unrelated events masking the change's real
  // impact; it applies to the KPIs the change actually moved.
  const bool has_impact = kt.true_sigma != 0.0;
  spec.contaminated_controls = has_impact ? row.contaminated_controls : 0;
  spec.contamination_sigma = has_impact ? row.contamination_sigma : 0.0;
  spec.contamination_at_change = true;
  spec.contamination_sign =
      row.contamination_sign != 0
          ? row.contamination_sign
          : (kt.true_sigma > 0 ? 1 : (kt.true_sigma < 0 ? -1 : 0));
  spec.seed = seed * 0x9E3779B97F4A7C15ULL + kpi_counter * 7919;
  return spec;
}

}  // namespace

RowResult run_row(const KnownChangeRow& row, std::uint64_t seed) {
  RowResult result;
  static const core::StudyOnlyAnalyzer study_only;
  static const core::DiDAnalyzer did;
  static const core::RobustSpatialRegression litmus;

  std::uint64_t kpi_counter = 0;
  for (const KpiTruth& kt : row.kpis) {
    const EpisodeSpec spec = episode_spec_for(row, kt, seed, ++kpi_counter);
    const Episode ep = simulate_episode(spec);
    for (const core::ElementWindows& w : ep.study_windows) {
      result.study_only.add(label(ep.truth, study_only.assess(w, kt.kpi).verdict));
      result.did.add(label(ep.truth, did.assess(w, kt.kpi).verdict));
      result.litmus.add(label(ep.truth, litmus.assess(w, kt.kpi).verdict));
    }
  }
  return result;
}

std::vector<core::Verdict> row_litmus_verdicts(
    const KnownChangeRow& row, std::uint64_t seed,
    const core::SpatialRegressionParams& litmus_params) {
  std::vector<core::Verdict> verdicts;
  const core::RobustSpatialRegression litmus(litmus_params);
  std::uint64_t kpi_counter = 0;
  for (const KpiTruth& kt : row.kpis) {
    const EpisodeSpec spec = episode_spec_for(row, kt, seed, ++kpi_counter);
    const Episode ep = simulate_episode(spec);
    for (const core::ElementWindows& w : ep.study_windows)
      verdicts.push_back(litmus.assess(w, kt.kpi).verdict);
  }
  return verdicts;
}

KnownAssessmentResults run_known_assessments(std::uint64_t seed) {
  KnownAssessmentResults out;
  const std::vector<KnownChangeRow> rows = table2_rows();
  std::uint64_t row_counter = 0;
  for (const KnownChangeRow& row : rows) {
    RowResult r = run_row(row, seed + (++row_counter) * 104729);
    out.total.study_only += r.study_only;
    out.total.did += r.did;
    out.total.litmus += r.litmus;
    out.per_row.push_back(std::move(r));
  }
  out.cases = out.total.litmus.total();
  return out;
}

std::string format_table2(const KnownAssessmentResults& results) {
  const std::vector<KnownChangeRow> rows = table2_rows();
  std::ostringstream os;
  os << "Table 2: Evaluation using known assessments of network changes ("
     << results.cases << " cases)\n";
  os << "--------------------------------------------------------------------------------------------\n";
  os << "Change type                              Factor        Cases  StudyOnly       DiD             Litmus\n";
  os << "--------------------------------------------------------------------------------------------\n";
  auto cell = [](const ConfusionCounts& c) {
    std::ostringstream s;
    s << c.tp << "TP/" << c.tn << "TN/" << c.fp << "FP/" << c.fn << "FN";
    std::string str = s.str();
    str.resize(16, ' ');
    return str;
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::string name = rows[i].change_type;
    name.resize(40, ' ');
    std::string factor = rows[i].external_factor.empty()
                             ? std::string("-")
                             : rows[i].external_factor;
    factor.resize(13, ' ');
    std::string n = std::to_string(results.per_row[i].litmus.total());
    n.resize(6, ' ');
    os << name << " " << factor << " " << n
       << cell(results.per_row[i].study_only) << cell(results.per_row[i].did)
       << cell(results.per_row[i].litmus) << "\n";
  }
  os << "--------------------------------------------------------------------------------------------\n";
  auto metrics = [&](const char* label_, const ConfusionCounts& c) {
    os << label_ << "  precision=" << pct(c.precision())
       << "  recall=" << pct(c.recall())
       << "  tnr=" << pct(c.true_negative_rate())
       << "  accuracy=" << pct(c.accuracy()) << "\n";
  };
  metrics("Study Group Only         ", results.total.study_only);
  metrics("Difference in Differences", results.total.did);
  metrics("Litmus Spatial Regression", results.total.litmus);
  return os.str();
}

}  // namespace litmus::eval
