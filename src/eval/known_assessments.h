// Known-assessment evaluation (paper Section 4.2, Table 2).
//
// The paper's Table 2 lists 19 production change campaigns — 313 (element,
// KPI) cases in total — with the Engineering/Operations teams' manual
// impact assessment as ground truth, and reports how the three algorithms
// labeled each. We cannot ship the carrier data, so each row is encoded as
// a scenario spec carrying the row's published structure: change type,
// element kind, study-group size, assessed KPIs with their true impact, the
// overlapping external factor, and (where the paper reports DiD misses)
// control-group contamination. The suite then simulates each row and lets
// the three algorithms produce their own labels.
#pragma once

#include <string>
#include <vector>

#include "eval/group_sim.h"
#include "eval/labeling.h"
#include "litmus/spatial_regression.h"

namespace litmus::eval {

struct KpiTruth {
  kpi::KpiId kpi;
  double true_sigma;  ///< assessed impact of the change (+ improves service)
};

struct KnownChangeRow {
  std::string change_type;      ///< Table 2 column 1
  net::ElementKind location;    ///< column 2
  net::Technology tech;
  net::Region region;
  std::size_t n_study;          ///< column 6
  std::vector<KpiTruth> kpis;   ///< column 7 expanded with assessed impacts
  std::string external_factor;  ///< column 5 ("", "foliage", "weather", ...)
  /// External confound applied to study and control alike.
  double factor_sigma = 0.0;
  FactorShape factor_shape = FactorShape::kLevel;
  double factor_heterogeneity = 0.0;
  /// Contamination for rows where Table 2 reports DiD false negatives.
  std::size_t contaminated_controls = 0;
  double contamination_sigma = 0.0;
  int contamination_sign = 0;   ///< matched to the study shift sign when set
};

/// The 19 Table-2 rows.
std::vector<KnownChangeRow> table2_rows();

struct RowResult {
  ConfusionCounts study_only;
  ConfusionCounts did;
  ConfusionCounts litmus;
};

struct KnownAssessmentResults {
  std::vector<RowResult> per_row;
  RowResult total;
  std::size_t cases = 0;
};

/// Simulates every row (deterministically from `seed`) and evaluates the
/// three algorithms case-by-case.
KnownAssessmentResults run_known_assessments(std::uint64_t seed = 2011);

/// Runs a single row.
RowResult run_row(const KnownChangeRow& row, std::uint64_t seed);

/// Per-case Litmus verdicts for one row, in simulation order, under a
/// caller-supplied Litmus configuration. Episodes are deterministic in
/// `seed`, so two calls with the same seed align case-for-case — the
/// zero-flip gates compare adaptive-on vs adaptive-off this way.
std::vector<core::Verdict> row_litmus_verdicts(
    const KnownChangeRow& row, std::uint64_t seed,
    const core::SpatialRegressionParams& litmus_params);

/// Formats the per-row and summary table in the shape of the paper's
/// Table 2.
std::string format_table2(const KnownAssessmentResults& results);

}  // namespace litmus::eval
