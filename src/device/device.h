// Device-dimension extension (paper Section 6, future work):
// "expand the change impact assessment across different types of devices
//  such as Apple iPad, Nokia Lumia, or Samsung Galaxy ... and extend
//  Litmus to monitor the impact of network changes on device performance
//  and the impact of device upgrades on service and network performance."
//
// A device class carries its own baseline quality offset (different radios
// and chipsets), its own sensitivity to network conditions, and a
// popularity weight (traffic share). Segmented KPI series per
// (element, device class) come from device/segmented_generator.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace litmus::dev {

struct DeviceClassId {
  std::uint16_t value = 0;
  constexpr auto operator<=>(const DeviceClassId&) const = default;
};

struct DeviceClass {
  DeviceClassId id;
  std::string vendor;
  std::string model;
  std::string firmware;
  /// Share of the element's sessions carried by this class (sums to ~1
  /// across the catalog).
  double traffic_share = 0.25;
  /// Baseline quality offset in sigma units (chipset/radio quality).
  double baseline_offset_sigma = 0.0;
  /// How strongly the class reacts to network conditions (1 = average;
  /// older radios are more sensitive to weak coverage).
  double network_sensitivity = 1.0;
  /// Device-local noise on top of the element latent.
  double idiosyncratic_sigma = 0.35;
};

/// Built-in catalog of four representative classes (the paper's examples,
/// names lightly fictionalized).
class DeviceCatalog {
 public:
  /// Default catalog: tablet / two smartphone families / legacy feature mix.
  static DeviceCatalog standard();

  explicit DeviceCatalog(std::vector<DeviceClass> classes);

  std::span<const DeviceClass> all() const noexcept { return classes_; }
  std::size_t size() const noexcept { return classes_.size(); }

  const DeviceClass& get(DeviceClassId id) const;

  /// All classes except `excluded` — the natural control set for a device
  /// upgrade assessment.
  std::vector<DeviceClassId> others(DeviceClassId excluded) const;

 private:
  std::vector<DeviceClass> classes_;
};

}  // namespace litmus::dev
