// Per-(element, device-class) KPI telemetry.
//
// Device-segmented series share the element's latent service quality (the
// network is common to every handset on the tower) but differ in baseline,
// sensitivity and idiosyncratic noise — which is precisely the
// study/control structure Litmus needs to assess a *device* change: the
// upgraded class is the study group, the other classes on the same
// elements are the controls, and network-side confounds (weather, load,
// upstream changes) cancel because every class rides the same element
// latent.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.h"
#include "simkit/generator.h"

namespace litmus::dev {

/// A device-side change: a firmware/OS rollout for one class, shifting its
/// quality from `start_bin` (optionally ramping).
struct DeviceEvent {
  DeviceClassId device;
  std::int64_t start_bin = 0;
  std::int64_t end_bin = INT64_MAX;  ///< exclusive
  double sigma_shift = 0.0;          ///< + improves the class's service
  std::int64_t ramp_bins = 0;
};

class SegmentedGenerator {
 public:
  SegmentedGenerator(const sim::KpiGenerator& network,
                     DeviceCatalog catalog);

  void add_event(DeviceEvent event);

  const DeviceCatalog& catalog() const noexcept { return catalog_; }

  /// KPI series observed by one device class at one element.
  ts::TimeSeries kpi_series(net::ElementId element, DeviceClassId device,
                            kpi::KpiId kpi, std::int64_t start,
                            std::size_t n) const;

  /// The device-latent: element latent scaled by sensitivity, plus device
  /// baseline/noise/events (sigma units). Exposed for tests.
  ts::TimeSeries device_latent(net::ElementId element, DeviceClassId device,
                               std::int64_t start, std::size_t n) const;

 private:
  double event_effect(DeviceClassId device, std::int64_t bin) const;

  const sim::KpiGenerator* network_;
  DeviceCatalog catalog_;
  std::vector<DeviceEvent> events_;
};

}  // namespace litmus::dev
