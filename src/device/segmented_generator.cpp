#include "device/segmented_generator.h"

#include "tsmath/random.h"

namespace litmus::dev {

SegmentedGenerator::SegmentedGenerator(const sim::KpiGenerator& network,
                                       DeviceCatalog catalog)
    : network_(&network), catalog_(std::move(catalog)) {}

void SegmentedGenerator::add_event(DeviceEvent event) {
  events_.push_back(event);
}

double SegmentedGenerator::event_effect(DeviceClassId device,
                                        std::int64_t bin) const {
  double total = 0.0;
  for (const auto& ev : events_) {
    if (ev.device != device) continue;
    if (bin < ev.start_bin || bin >= ev.end_bin) continue;
    double scale = 1.0;
    if (ev.ramp_bins > 0 && bin < ev.start_bin + ev.ramp_bins)
      scale = static_cast<double>(bin - ev.start_bin + 1) /
              static_cast<double>(ev.ramp_bins);
    total += ev.sigma_shift * scale;
  }
  return total;
}

ts::TimeSeries SegmentedGenerator::device_latent(net::ElementId element,
                                                 DeviceClassId device,
                                                 std::int64_t start,
                                                 std::size_t n) const {
  const DeviceClass& d = catalog_.get(device);
  const ts::TimeSeries network_latent =
      network_->latent_series(element, start, n);

  ts::Rng rng(network_->config().seed ^ 0xDE71CEULL ^
              (element.value * 0x9E3779B97F4A7C15ULL) ^
              (static_cast<std::uint64_t>(device.value) *
               0xD1B54A32D192ED03ULL) ^
              (static_cast<std::uint64_t>(start + (1LL << 40)) *
               0xBF58476D1CE4E5B9ULL));

  ts::TimeSeries out(start, n, 60);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = network_latent[i];
    if (ts::is_missing(base)) continue;  // element outage hits every class
    const std::int64_t bin = start + static_cast<std::int64_t>(i);
    out[i] = d.baseline_offset_sigma + d.network_sensitivity * base +
             d.idiosyncratic_sigma * rng.normal() +
             event_effect(device, bin);
  }
  return out;
}

ts::TimeSeries SegmentedGenerator::kpi_series(net::ElementId element,
                                              DeviceClassId device,
                                              kpi::KpiId kpi,
                                              std::int64_t start,
                                              std::size_t n) const {
  return network_->latent_to_kpi(device_latent(element, device, start, n),
                                 kpi);
}

}  // namespace litmus::dev
