#include "device/device.h"

#include <stdexcept>

namespace litmus::dev {

DeviceCatalog DeviceCatalog::standard() {
  std::vector<DeviceClass> classes;
  classes.push_back({DeviceClassId{1}, "Pomaceous", "P-Tab 3", "6.1.2",
                     0.20, +0.3, 0.9, 0.30});
  classes.push_back({DeviceClassId{2}, "Boreal", "Lumen 920", "8.0.1",
                     0.15, -0.1, 1.1, 0.35});
  classes.push_back({DeviceClassId{3}, "Stellar", "Nebula S4", "4.2.2",
                     0.40, +0.1, 1.0, 0.32});
  classes.push_back({DeviceClassId{4}, "Assorted", "legacy mix", "-",
                     0.25, -0.4, 1.3, 0.45});
  return DeviceCatalog(std::move(classes));
}

DeviceCatalog::DeviceCatalog(std::vector<DeviceClass> classes)
    : classes_(std::move(classes)) {
  if (classes_.empty())
    throw std::invalid_argument("DeviceCatalog: empty catalog");
}

const DeviceClass& DeviceCatalog::get(DeviceClassId id) const {
  for (const auto& c : classes_)
    if (c.id == id) return c;
  throw std::out_of_range("DeviceCatalog: unknown device class");
}

std::vector<DeviceClassId> DeviceCatalog::others(DeviceClassId excluded) const {
  std::vector<DeviceClassId> out;
  for (const auto& c : classes_)
    if (c.id != excluded) out.push_back(c.id);
  return out;
}

}  // namespace litmus::dev
