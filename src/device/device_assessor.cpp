#include "device/device_assessor.h"

namespace litmus::dev {

DeviceImpactAssessor::DeviceImpactAssessor(const SegmentedGenerator& telemetry,
                                           core::AssessmentConfig config)
    : telemetry_(&telemetry),
      config_(config),
      algorithm_(config.regression) {}

DeviceAssessment DeviceImpactAssessor::assess(
    DeviceClassId device, std::span<const net::ElementId> elements,
    kpi::KpiId kpi, std::int64_t rollout_bin,
    std::span<const DeviceClassId> excluded_controls) const {
  DeviceAssessment a;
  a.device = device;
  a.kpi = kpi;
  a.rollout_bin = rollout_bin;
  a.elements.assign(elements.begin(), elements.end());

  const std::int64_t before_start =
      rollout_bin - static_cast<std::int64_t>(config_.before_bins);
  const std::int64_t after_start =
      rollout_bin + static_cast<std::int64_t>(config_.guard_bins);
  std::vector<DeviceClassId> controls = telemetry_->catalog().others(device);
  std::erase_if(controls, [&](DeviceClassId id) {
    for (const auto ex : excluded_controls)
      if (ex == id) return true;
    return false;
  });

  for (const auto element : elements) {
    core::ElementWindows w;
    w.study_before = telemetry_->kpi_series(element, device, kpi,
                                            before_start, config_.before_bins);
    w.study_after = telemetry_->kpi_series(element, device, kpi, after_start,
                                           config_.after_bins);
    for (const auto ctrl : controls) {
      w.control_before.push_back(telemetry_->kpi_series(
          element, ctrl, kpi, before_start, config_.before_bins));
      w.control_after.push_back(telemetry_->kpi_series(
          element, ctrl, kpi, after_start, config_.after_bins));
    }
    a.per_element.push_back(algorithm_.assess(w, kpi));
  }
  a.summary = core::vote(a.per_element);
  return a;
}

}  // namespace litmus::dev
