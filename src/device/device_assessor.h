// Litmus for device upgrades: assess the service impact of a firmware/OS
// rollout to one device class.
//
// Study group: the upgraded class's KPI series across a set of elements.
// Control group (per element): the other device classes on the *same*
// element — they share the tower, spectrum, backhaul and weather, so any
// network-side confound cancels and what remains is the device change.
// The element dimension plays the role the study-group elements played in
// the network-change setting: one robust-spatial-regression verdict per
// element, summarized by voting.
#pragma once

#include <span>

#include "device/segmented_generator.h"
#include "litmus/assessor.h"
#include "litmus/spatial_regression.h"
#include "litmus/voting.h"

namespace litmus::dev {

struct DeviceAssessment {
  DeviceClassId device;
  kpi::KpiId kpi;
  std::int64_t rollout_bin = 0;
  std::vector<net::ElementId> elements;
  std::vector<core::AnalysisOutcome> per_element;
  core::VoteSummary summary;
};

class DeviceImpactAssessor {
 public:
  DeviceImpactAssessor(const SegmentedGenerator& telemetry,
                       core::AssessmentConfig config = {});

  /// Assesses the rollout to `device` at `rollout_bin` over `elements`.
  /// `excluded_controls` removes classes from the control group — the
  /// device-dimension analogue of the impact-scope exclusion (Section 3.3):
  /// a class that itself just received a change is not a valid control.
  DeviceAssessment assess(
      DeviceClassId device, std::span<const net::ElementId> elements,
      kpi::KpiId kpi, std::int64_t rollout_bin,
      std::span<const DeviceClassId> excluded_controls = {}) const;

 private:
  const SegmentedGenerator* telemetry_;
  core::AssessmentConfig config_;
  core::RobustSpatialRegression algorithm_;
};

}  // namespace litmus::dev
