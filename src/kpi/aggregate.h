// Spatial and temporal roll-ups of KPI and counter data.
//
// The paper's figures aggregate across elements (Fig 5: "aggregated across
// all cell towers at the location") and across time (Fig 3: daily
// aggregates of finer measurements). Ratio KPIs must be re-derived from
// summed counters, not averaged — averaging ratios over-weights quiet bins.
#pragma once

#include <span>
#include <vector>

#include "kpi/counters.h"
#include "tsmath/timeseries.h"

namespace litmus::kpi {

/// Sums counter series across elements (all must share the same span) and
/// derives the aggregate KPI series.
ts::TimeSeries aggregate_kpi(std::span<const CounterSeries> per_element,
                             KpiId id);

/// Sum of counter series (same-span requirement as aggregate_kpi).
CounterSeries sum_counters(std::span<const CounterSeries> per_element);

/// Down-samples counters by summing groups of `factor` bins (e.g. 24 hourly
/// bins -> 1 daily bin). The trailing partial group is dropped.
CounterSeries downsample(const CounterSeries& s, int factor);

/// Down-samples a KPI series by averaging groups of `factor` bins
/// (missing-aware). Appropriate only for already-aggregated series; for
/// counter-backed KPIs prefer downsample() + kpi_series().
ts::TimeSeries downsample_mean(const ts::TimeSeries& s, int factor);

/// Point-wise mean KPI across elements (missing-aware). Used when only KPI
/// series are available (the usual situation for the analyzers).
ts::TimeSeries pointwise_mean(std::span<const ts::TimeSeries> series);

}  // namespace litmus::kpi
