#include "kpi/counters.h"

#include <stdexcept>

namespace litmus::kpi {

CounterBin& CounterBin::operator+=(const CounterBin& o) noexcept {
  voice_attempts += o.voice_attempts;
  voice_blocked += o.voice_blocked;
  voice_established += o.voice_established;
  voice_dropped += o.voice_dropped;
  data_attempts += o.data_attempts;
  data_blocked += o.data_blocked;
  data_established += o.data_established;
  data_dropped += o.data_dropped;
  megabits_delivered += o.megabits_delivered;
  return *this;
}

double compute_kpi(const CounterBin& c, KpiId id, int bin_minutes) noexcept {
  auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? ts::kMissing
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  switch (id) {
    case KpiId::kVoiceAccessibility:
      return c.voice_attempts == 0
                 ? ts::kMissing
                 : 1.0 - ratio(c.voice_blocked, c.voice_attempts);
    case KpiId::kVoiceRetainability:
      return c.voice_established == 0
                 ? ts::kMissing
                 : 1.0 - ratio(c.voice_dropped, c.voice_established);
    case KpiId::kDataAccessibility:
      return c.data_attempts == 0
                 ? ts::kMissing
                 : 1.0 - ratio(c.data_blocked, c.data_attempts);
    case KpiId::kDataRetainability:
      return c.data_established == 0
                 ? ts::kMissing
                 : 1.0 - ratio(c.data_dropped, c.data_established);
    case KpiId::kDataThroughput:
      return bin_minutes <= 0
                 ? ts::kMissing
                 : c.megabits_delivered / (60.0 * bin_minutes);  // Mb/s
    case KpiId::kDroppedVoiceCallRatio:
      return ratio(c.voice_dropped, c.voice_established);
  }
  return ts::kMissing;
}

CounterSeries::CounterSeries(std::int64_t start_bin, std::size_t n,
                             int bin_minutes)
    : start_bin_(start_bin), bin_minutes_(bin_minutes), bins_(n) {
  if (bin_minutes <= 0) throw std::invalid_argument("bin_minutes must be > 0");
}

std::int64_t CounterSeries::end_bin() const noexcept {
  return start_bin_ + static_cast<std::int64_t>(bins_.size());
}

CounterBin& CounterSeries::at_bin(std::int64_t bin) {
  if (bin < start_bin_ || bin >= end_bin())
    throw std::out_of_range("CounterSeries::at_bin");
  return bins_[static_cast<std::size_t>(bin - start_bin_)];
}

const CounterBin& CounterSeries::at_bin(std::int64_t bin) const {
  if (bin < start_bin_ || bin >= end_bin())
    throw std::out_of_range("CounterSeries::at_bin");
  return bins_[static_cast<std::size_t>(bin - start_bin_)];
}

ts::TimeSeries CounterSeries::kpi_series(KpiId id) const {
  ts::TimeSeries out(start_bin_, bins_.size(), bin_minutes_);
  for (std::size_t i = 0; i < bins_.size(); ++i)
    out[i] = compute_kpi(bins_[i], id, bin_minutes_);
  return out;
}

CounterSeries& CounterSeries::operator+=(const CounterSeries& o) {
  if (o.start_bin_ != start_bin_ || o.bins_.size() != bins_.size() ||
      o.bin_minutes_ != bin_minutes_)
    throw std::invalid_argument("CounterSeries::operator+=: span mismatch");
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  return *this;
}

}  // namespace litmus::kpi
