// Key Performance Indicator catalogue (paper Section 2.2, "Service
// performance measurements").
//
// Accessibility: fraction of call/session attempts that succeed.
// Retainability: fraction of established calls/sessions that terminate
//   normally (not dropped by the network).
// Throughput: bytes delivered per time bin.
// DroppedVoiceCallRatio: complement of voice retainability — the KPI in the
//   paper's Figs 1 and 8.
//
// Every KPI carries a *polarity* so analyzers can translate a relative
// increase/decrease into Improvement/Degradation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace litmus::kpi {

enum class KpiId : std::uint8_t {
  kVoiceAccessibility,
  kVoiceRetainability,
  kDataAccessibility,
  kDataRetainability,
  kDataThroughput,
  kDroppedVoiceCallRatio,
};

/// All KPI ids, for iteration.
std::span<const KpiId> all_kpis() noexcept;

enum class Polarity : std::uint8_t {
  kHigherIsBetter,
  kLowerIsBetter,
};

struct KpiInfo {
  KpiId id;
  std::string_view name;
  std::string_view unit;
  Polarity polarity;
  double typical_value;  ///< representative operating point for simulation
  double typical_noise;  ///< representative per-bin noise sigma
  bool is_ratio;         ///< constrained to [0,1]
};

/// Catalogue lookup; total over the enum.
const KpiInfo& info(KpiId id) noexcept;

std::string_view to_string(KpiId id) noexcept;
std::optional<KpiId> parse_kpi(std::string_view name) noexcept;

}  // namespace litmus::kpi
