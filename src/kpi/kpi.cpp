#include "kpi/kpi.h"

#include <array>

namespace litmus::kpi {
namespace {

constexpr std::array<KpiId, 6> kAll = {
    KpiId::kVoiceAccessibility,    KpiId::kVoiceRetainability,
    KpiId::kDataAccessibility,     KpiId::kDataRetainability,
    KpiId::kDataThroughput,        KpiId::kDroppedVoiceCallRatio,
};

constexpr std::array<KpiInfo, 6> kCatalogue = {{
    {KpiId::kVoiceAccessibility, "voice_accessibility", "ratio",
     Polarity::kHigherIsBetter, 0.985, 0.004, true},
    {KpiId::kVoiceRetainability, "voice_retainability", "ratio",
     Polarity::kHigherIsBetter, 0.975, 0.005, true},
    {KpiId::kDataAccessibility, "data_accessibility", "ratio",
     Polarity::kHigherIsBetter, 0.980, 0.005, true},
    {KpiId::kDataRetainability, "data_retainability", "ratio",
     Polarity::kHigherIsBetter, 0.965, 0.006, true},
    {KpiId::kDataThroughput, "data_throughput", "Mb/s",
     Polarity::kHigherIsBetter, 12.0, 0.9, false},
    {KpiId::kDroppedVoiceCallRatio, "dropped_voice_call_ratio", "ratio",
     Polarity::kLowerIsBetter, 0.025, 0.005, true},
}};

}  // namespace

std::span<const KpiId> all_kpis() noexcept { return kAll; }

const KpiInfo& info(KpiId id) noexcept {
  return kCatalogue[static_cast<std::size_t>(id)];
}

std::string_view to_string(KpiId id) noexcept { return info(id).name; }

std::optional<KpiId> parse_kpi(std::string_view name) noexcept {
  for (const KpiInfo& k : kCatalogue)
    if (k.name == name) return k.id;
  return std::nullopt;
}

}  // namespace litmus::kpi
