// Raw per-bin performance counters, and the counter -> KPI computations.
//
// The carrier collects low-level counters from each element and derives the
// service KPIs from them (Section 2.2). We model the handful of counters the
// six catalogue KPIs need; the CDR module (cdr.h) produces these counters
// from individual call records.
#pragma once

#include <cstdint>
#include <vector>

#include "kpi/kpi.h"
#include "tsmath/timeseries.h"

namespace litmus::kpi {

/// Counters for one element over one time bin.
struct CounterBin {
  std::uint64_t voice_attempts = 0;
  std::uint64_t voice_blocked = 0;      ///< failed attempts (accessibility)
  std::uint64_t voice_established = 0;
  std::uint64_t voice_dropped = 0;      ///< network-terminated calls
  std::uint64_t data_attempts = 0;
  std::uint64_t data_blocked = 0;
  std::uint64_t data_established = 0;
  std::uint64_t data_dropped = 0;
  double megabits_delivered = 0.0;

  CounterBin& operator+=(const CounterBin& o) noexcept;
};

/// KPI value from one counter bin; missing when the denominator is zero
/// (e.g. no call attempts in the bin).
double compute_kpi(const CounterBin& c, KpiId id, int bin_minutes) noexcept;

/// A counter time-series for one element.
class CounterSeries {
 public:
  CounterSeries() = default;
  CounterSeries(std::int64_t start_bin, std::size_t n, int bin_minutes = 60);

  std::int64_t start_bin() const noexcept { return start_bin_; }
  std::int64_t end_bin() const noexcept;
  int bin_minutes() const noexcept { return bin_minutes_; }
  std::size_t size() const noexcept { return bins_.size(); }

  CounterBin& at_bin(std::int64_t bin);
  const CounterBin& at_bin(std::int64_t bin) const;
  CounterBin& operator[](std::size_t i) noexcept { return bins_[i]; }
  const CounterBin& operator[](std::size_t i) const noexcept {
    return bins_[i];
  }

  /// Derives the KPI time-series over the whole span.
  ts::TimeSeries kpi_series(KpiId id) const;

  /// Element-wise sum with another series (same span required).
  CounterSeries& operator+=(const CounterSeries& o);

 private:
  std::int64_t start_bin_ = 0;
  int bin_minutes_ = 60;
  std::vector<CounterBin> bins_;
};

}  // namespace litmus::kpi
