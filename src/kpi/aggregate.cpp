#include "kpi/aggregate.h"

#include <stdexcept>

namespace litmus::kpi {

CounterSeries sum_counters(std::span<const CounterSeries> per_element) {
  if (per_element.empty())
    throw std::invalid_argument("sum_counters: empty input");
  CounterSeries total = per_element[0];
  for (const auto& s : per_element.subspan(1)) total += s;
  return total;
}

ts::TimeSeries aggregate_kpi(std::span<const CounterSeries> per_element,
                             KpiId id) {
  return sum_counters(per_element).kpi_series(id);
}

CounterSeries downsample(const CounterSeries& s, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample: factor <= 0");
  const std::size_t groups = s.size() / static_cast<std::size_t>(factor);
  CounterSeries out(s.start_bin() / factor, groups,
                    s.bin_minutes() * factor);
  for (std::size_t g = 0; g < groups; ++g)
    for (int i = 0; i < factor; ++i)
      out[g] += s[g * static_cast<std::size_t>(factor) +
                  static_cast<std::size_t>(i)];
  return out;
}

ts::TimeSeries downsample_mean(const ts::TimeSeries& s, int factor) {
  if (factor <= 0) throw std::invalid_argument("downsample_mean: factor <= 0");
  const std::size_t groups = s.size() / static_cast<std::size_t>(factor);
  ts::TimeSeries out(s.start_bin() / factor, groups,
                     s.bin_minutes() * factor);
  for (std::size_t g = 0; g < groups; ++g) {
    double sum = 0;
    std::size_t n = 0;
    for (int i = 0; i < factor; ++i) {
      const double v = s[g * static_cast<std::size_t>(factor) +
                         static_cast<std::size_t>(i)];
      if (ts::is_missing(v)) continue;
      sum += v;
      ++n;
    }
    if (n > 0) out[g] = sum / static_cast<double>(n);
  }
  return out;
}

ts::TimeSeries pointwise_mean(std::span<const ts::TimeSeries> series) {
  if (series.empty())
    throw std::invalid_argument("pointwise_mean: empty input");
  const ts::BinRange r = ts::common_range(series);
  ts::TimeSeries out(r.from, r.size(), series[0].bin_minutes());
  for (std::int64_t b = r.from; b < r.to; ++b) {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& s : series) {
      const double v = s.at_bin(b);
      if (ts::is_missing(v)) continue;
      sum += v;
      ++n;
    }
    if (n > 0) out.set_bin(b, sum / static_cast<double>(n));
  }
  return out;
}

}  // namespace litmus::kpi
