#include "kpi/cdr.h"

#include <cmath>

namespace litmus::kpi {
namespace {

// Poisson draw via inversion for small means, normal approximation above.
std::uint64_t poisson(ts::Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = rng.normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-mean);
  double prod = rng.next_double();
  std::uint64_t n = 0;
  while (prod > limit) {
    prod *= rng.next_double();
    ++n;
  }
  return n;
}

}  // namespace

void accumulate(CounterBin& bin, const CallDetailRecord& rec) noexcept {
  const bool voice = rec.type == SessionType::kVoice;
  if (voice) {
    ++bin.voice_attempts;
    switch (rec.outcome) {
      case SessionOutcome::kBlocked:
        ++bin.voice_blocked;
        break;
      case SessionOutcome::kDropped:
        ++bin.voice_established;
        ++bin.voice_dropped;
        break;
      case SessionOutcome::kCompleted:
        ++bin.voice_established;
        break;
    }
  } else {
    ++bin.data_attempts;
    switch (rec.outcome) {
      case SessionOutcome::kBlocked:
        ++bin.data_blocked;
        break;
      case SessionOutcome::kDropped:
        ++bin.data_established;
        ++bin.data_dropped;
        bin.megabits_delivered += rec.megabits;
        break;
      case SessionOutcome::kCompleted:
        ++bin.data_established;
        bin.megabits_delivered += rec.megabits;
        break;
    }
  }
}

CounterSeries aggregate_cdrs(std::span<const CallDetailRecord> records,
                             std::int64_t start_bin, std::size_t n,
                             int bin_minutes) {
  CounterSeries out(start_bin, n, bin_minutes);
  const std::int64_t end = out.end_bin();
  for (const auto& rec : records) {
    if (rec.bin < start_bin || rec.bin >= end) continue;
    accumulate(out.at_bin(rec.bin), rec);
  }
  return out;
}

std::vector<CallDetailRecord> synthesize_bin_records(
    ts::Rng& rng, net::ElementId element, std::int64_t bin,
    const SessionRates& rates) {
  std::vector<CallDetailRecord> out;
  const std::uint64_t n_voice = poisson(rng, rates.voice_attempts_per_bin);
  const std::uint64_t n_data = poisson(rng, rates.data_attempts_per_bin);
  out.reserve(n_voice + n_data);

  for (std::uint64_t i = 0; i < n_voice; ++i) {
    CallDetailRecord r;
    r.element = element;
    r.bin = bin;
    r.type = SessionType::kVoice;
    if (rng.chance(rates.voice_block_prob))
      r.outcome = SessionOutcome::kBlocked;
    else if (rng.chance(rates.voice_drop_prob))
      r.outcome = SessionOutcome::kDropped;
    else
      r.outcome = SessionOutcome::kCompleted;
    r.duration_min = r.outcome == SessionOutcome::kBlocked
                         ? 0.0
                         : -3.0 * std::log(1.0 - rng.next_double());
    out.push_back(r);
  }
  for (std::uint64_t i = 0; i < n_data; ++i) {
    CallDetailRecord r;
    r.element = element;
    r.bin = bin;
    r.type = SessionType::kData;
    if (rng.chance(rates.data_block_prob))
      r.outcome = SessionOutcome::kBlocked;
    else if (rng.chance(rates.data_drop_prob))
      r.outcome = SessionOutcome::kDropped;
    else
      r.outcome = SessionOutcome::kCompleted;
    if (r.outcome != SessionOutcome::kBlocked) {
      r.duration_min = -5.0 * std::log(1.0 - rng.next_double());
      r.megabits = rates.mean_megabits_per_data_session *
                   (-std::log(1.0 - rng.next_double()));
      // Dropped sessions deliver only part of their payload.
      if (r.outcome == SessionOutcome::kDropped)
        r.megabits *= rng.next_double();
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace litmus::kpi
