// Call Detail Records and their aggregation into counters.
//
// The paper's data sets include CDRs (Section 2.2). We use them in the
// simulator's traffic path: sessions are generated per element, each carries
// an outcome (completed / blocked / dropped), and counters are rolled up
// from the records — so the ratio KPIs really are ratios of discrete events
// and inherit binomial sampling noise, as in production.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cellnet/types.h"
#include "kpi/counters.h"
#include "tsmath/random.h"

namespace litmus::kpi {

enum class SessionType : std::uint8_t { kVoice, kData };
enum class SessionOutcome : std::uint8_t {
  kCompleted,  ///< user-terminated, success
  kBlocked,    ///< attempt failed (accessibility event)
  kDropped,    ///< network-terminated (retainability event)
};

struct CallDetailRecord {
  net::ElementId element;
  std::int64_t bin = 0;         ///< bin of the attempt
  SessionType type = SessionType::kVoice;
  SessionOutcome outcome = SessionOutcome::kCompleted;
  double duration_min = 0.0;
  double megabits = 0.0;        ///< data volume (data sessions)
};

/// Accumulates a record into the counter bin it belongs to.
void accumulate(CounterBin& bin, const CallDetailRecord& rec) noexcept;

/// Aggregates records into a CounterSeries covering [start_bin,
/// start_bin+n). Records outside the span are ignored.
CounterSeries aggregate_cdrs(std::span<const CallDetailRecord> records,
                             std::int64_t start_bin, std::size_t n,
                             int bin_minutes = 60);

/// Draws the per-bin session records for one element given expected attempt
/// volume and failure probabilities. Used by the simulator's CDR-level mode.
struct SessionRates {
  double voice_attempts_per_bin = 200.0;
  double voice_block_prob = 0.015;
  double voice_drop_prob = 0.02;
  double data_attempts_per_bin = 400.0;
  double data_block_prob = 0.02;
  double data_drop_prob = 0.03;
  double mean_megabits_per_data_session = 8.0;
};

std::vector<CallDetailRecord> synthesize_bin_records(ts::Rng& rng,
                                                     net::ElementId element,
                                                     std::int64_t bin,
                                                     const SessionRates& rates);

}  // namespace litmus::kpi
