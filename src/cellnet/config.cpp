#include "cellnet/config.h"

#include <charconv>

namespace litmus::net {

std::string SoftwareVersion::to_string() const {
  return std::to_string(major) + "." + std::to_string(minor) + "." +
         std::to_string(patch);
}

std::optional<SoftwareVersion> SoftwareVersion::parse(const std::string& s) {
  SoftwareVersion v;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  auto read = [&](std::uint16_t& out) {
    auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc{}) return false;
    p = next;
    return true;
  };
  if (!read(v.major)) return std::nullopt;
  if (p == end || *p != '.') return std::nullopt;
  ++p;
  if (!read(v.minor)) return std::nullopt;
  if (p != end) {
    if (*p != '.') return std::nullopt;
    ++p;
    if (!read(v.patch)) return std::nullopt;
  }
  return p == end ? std::optional<SoftwareVersion>(v) : std::nullopt;
}

}  // namespace litmus::net
