// Fundamental identifiers and enumerations for the cellular network model
// (paper Section 2.1).
#pragma once

#include <compare>
#include <vector>
#include <cstdint>
#include <functional>
#include <string>

namespace litmus::net {

/// Radio access technology generations covered by the paper.
enum class Technology : std::uint8_t { kGsm, kUmts, kLte };

const char* to_string(Technology t) noexcept;

/// Network element kinds across the three architectures.
///
/// RAN: BTS (GSM), NodeB (UMTS), eNodeB (LTE) and their controllers
/// BSC (GSM) / RNC (UMTS); in LTE the eNodeB is its own controller.
/// CS core: MSC, GMSC. PS core: SGSN, GGSN. LTE core (EPC): MME, SGW, PGW,
/// HSS, PCRF. Cells/sectors hang off towers.
enum class ElementKind : std::uint8_t {
  // Radio access network.
  kBts,
  kNodeB,
  kEnodeB,
  kBsc,
  kRnc,
  kCell,
  kSector,
  // Circuit-switched core.
  kMsc,
  kGmsc,
  // Packet-switched core.
  kSgsn,
  kGgsn,
  // Evolved packet core.
  kMme,
  kSgw,
  kPgw,
  kHss,
  kPcrf,
};

const char* to_string(ElementKind k) noexcept;

/// True for tower-level elements (BTS / NodeB / eNodeB).
bool is_tower(ElementKind k) noexcept;

/// True for RAN controllers (BSC / RNC / eNodeB).
bool is_controller(ElementKind k) noexcept;

/// True for any core-network element.
bool is_core(ElementKind k) noexcept;

/// Coarse US regions used by the paper's evaluation (Section 4.3 picks
/// study groups from four geographically diverse regions).
enum class Region : std::uint8_t {
  kNortheast,
  kSoutheast,
  kMidwest,
  kSouthwest,
  kWest,
};

const char* to_string(Region r) noexcept;

/// All five regions, in enum order.
std::vector<Region> all_regions();

/// Regions with deciduous foliage (the paper observes yearly seasonality in
/// the Northeast but not the Southeast).
bool has_foliage_seasonality(Region r) noexcept;

/// Strongly typed element identifier.
struct ElementId {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const ElementId&) const = default;
};

inline constexpr ElementId kInvalidElement{0};

/// Terrain classes affecting radio propagation (Section 1 / 3.3 attribute 4).
enum class Terrain : std::uint8_t {
  kUrban,
  kSuburban,
  kRural,
  kMountain,
  kWater,     ///< lakes / coastline
  kFlat,
};

const char* to_string(Terrain t) noexcept;

/// Traffic-profile classes (Section 3.2's business-vs-lake example).
enum class TrafficProfile : std::uint8_t {
  kBusiness,     ///< weekday 9-5 peaks
  kResidential,  ///< evening peaks
  kHighway,      ///< commute peaks
  kStadium,      ///< event-driven bursts
  kRecreation,   ///< weekend / evening peaks (lakes, parks)
};

const char* to_string(TrafficProfile p) noexcept;

}  // namespace litmus::net

template <>
struct std::hash<litmus::net::ElementId> {
  std::size_t operator()(const litmus::net::ElementId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
