// A network element: identity, placement, configuration, parentage.
#pragma once

#include <string>

#include "cellnet/config.h"
#include "cellnet/geo.h"
#include "cellnet/types.h"

namespace litmus::net {

struct NetworkElement {
  ElementId id = kInvalidElement;
  ElementKind kind = ElementKind::kNodeB;
  Technology technology = Technology::kUmts;
  std::string name;
  GeoPoint location;
  ZipCode zip;
  Region region = Region::kNortheast;
  ElementId parent = kInvalidElement;  ///< upstream element (kInvalid at root)
  std::uint32_t market = 0;            ///< market/metro cluster index
  ConfigSnapshot config;
};

}  // namespace litmus::net
