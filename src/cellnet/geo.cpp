#include "cellnet/geo.h"

#include <cmath>
#include <numbers>

namespace litmus::net {
namespace {

double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  constexpr double kEarthRadiusKm = 6371.0;
  const double dlat = deg2rad(b.lat_deg - a.lat_deg);
  const double dlon = deg2rad(b.lon_deg - a.lon_deg);
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(deg2rad(a.lat_deg)) *
                                 std::cos(deg2rad(b.lat_deg)) * s2 * s2;
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(std::min(1.0, h)));
}

std::string ZipCode::to_string() const {
  std::string s = std::to_string(value);
  while (s.size() < 5) s.insert(s.begin(), '0');
  return s;
}

Region region_of(const GeoPoint& p) noexcept {
  // Longitude bands first (west to east), then a latitude split on the
  // eastern seaboard. Approximate, but stable and total.
  if (p.lon_deg < -114.0) return Region::kWest;
  if (p.lon_deg < -96.0)
    return p.lat_deg < 40.0 ? Region::kSouthwest : Region::kWest;
  if (p.lon_deg < -82.0)
    return p.lat_deg < 39.0 ? Region::kSoutheast : Region::kMidwest;
  return p.lat_deg < 37.5 ? Region::kSoutheast : Region::kNortheast;
}

GeoPoint region_anchor(Region r) noexcept {
  switch (r) {
    case Region::kNortheast: return {41.5, -74.0};  // NY metro
    case Region::kSoutheast: return {33.7, -84.4};  // Atlanta
    case Region::kMidwest: return {41.9, -87.6};    // Chicago
    case Region::kSouthwest: return {32.8, -96.8};  // Dallas
    case Region::kWest: return {37.6, -122.0};      // Bay Area
  }
  return {39.0, -98.0};
}

}  // namespace litmus::net
