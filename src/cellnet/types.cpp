#include "cellnet/types.h"

namespace litmus::net {

const char* to_string(Technology t) noexcept {
  switch (t) {
    case Technology::kGsm: return "GSM";
    case Technology::kUmts: return "UMTS";
    case Technology::kLte: return "LTE";
  }
  return "?";
}

const char* to_string(ElementKind k) noexcept {
  switch (k) {
    case ElementKind::kBts: return "BTS";
    case ElementKind::kNodeB: return "NodeB";
    case ElementKind::kEnodeB: return "eNodeB";
    case ElementKind::kBsc: return "BSC";
    case ElementKind::kRnc: return "RNC";
    case ElementKind::kCell: return "Cell";
    case ElementKind::kSector: return "Sector";
    case ElementKind::kMsc: return "MSC";
    case ElementKind::kGmsc: return "GMSC";
    case ElementKind::kSgsn: return "SGSN";
    case ElementKind::kGgsn: return "GGSN";
    case ElementKind::kMme: return "MME";
    case ElementKind::kSgw: return "S-GW";
    case ElementKind::kPgw: return "P-GW";
    case ElementKind::kHss: return "HSS";
    case ElementKind::kPcrf: return "PCRF";
  }
  return "?";
}

bool is_tower(ElementKind k) noexcept {
  return k == ElementKind::kBts || k == ElementKind::kNodeB ||
         k == ElementKind::kEnodeB;
}

bool is_controller(ElementKind k) noexcept {
  return k == ElementKind::kBsc || k == ElementKind::kRnc ||
         k == ElementKind::kEnodeB;
}

bool is_core(ElementKind k) noexcept {
  switch (k) {
    case ElementKind::kMsc:
    case ElementKind::kGmsc:
    case ElementKind::kSgsn:
    case ElementKind::kGgsn:
    case ElementKind::kMme:
    case ElementKind::kSgw:
    case ElementKind::kPgw:
    case ElementKind::kHss:
    case ElementKind::kPcrf:
      return true;
    default:
      return false;
  }
}

const char* to_string(Region r) noexcept {
  switch (r) {
    case Region::kNortheast: return "Northeast";
    case Region::kSoutheast: return "Southeast";
    case Region::kMidwest: return "Midwest";
    case Region::kSouthwest: return "Southwest";
    case Region::kWest: return "West";
  }
  return "?";
}

std::vector<Region> all_regions() {
  return {Region::kNortheast, Region::kSoutheast, Region::kMidwest,
          Region::kSouthwest, Region::kWest};
}

bool has_foliage_seasonality(Region r) noexcept {
  // The paper observes foliage-driven yearly seasonality in the Northeast
  // (Fig 3) and explicitly notes its absence in the Southeast. We extend the
  // deciduous band to the Midwest; the West/Southwest are treated as
  // evergreen/arid.
  return r == Region::kNortheast || r == Region::kMidwest;
}

const char* to_string(Terrain t) noexcept {
  switch (t) {
    case Terrain::kUrban: return "urban";
    case Terrain::kSuburban: return "suburban";
    case Terrain::kRural: return "rural";
    case Terrain::kMountain: return "mountain";
    case Terrain::kWater: return "water";
    case Terrain::kFlat: return "flat";
  }
  return "?";
}

const char* to_string(TrafficProfile p) noexcept {
  switch (p) {
    case TrafficProfile::kBusiness: return "business";
    case TrafficProfile::kResidential: return "residential";
    case TrafficProfile::kHighway: return "highway";
    case TrafficProfile::kStadium: return "stadium";
    case TrafficProfile::kRecreation: return "recreation";
  }
  return "?";
}

}  // namespace litmus::net
