// Per-element configuration snapshot (paper Section 2.2, "Network
// configuration"). Snapshots drive control-group selection attributes 3-5
// (software version, equipment model, antenna parameters, terrain, traffic
// profile) and let the change log describe configuration deltas.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cellnet/types.h"

namespace litmus::net {

/// Software release identifier with a total order (major.minor.patch).
struct SoftwareVersion {
  std::uint16_t major = 0;
  std::uint16_t minor = 0;
  std::uint16_t patch = 0;

  constexpr auto operator<=>(const SoftwareVersion&) const = default;
  std::string to_string() const;
  static std::optional<SoftwareVersion> parse(const std::string& s);
};

/// Antenna parameters — the paper's canonical high-frequency change targets
/// (Section 2.3).
struct AntennaConfig {
  double tilt_deg = 0.0;       ///< positive = down-tilt
  double tx_power_dbm = 43.0;  ///< downlink transmission power
  double azimuth_deg = 0.0;
  double frequency_mhz = 1900.0;

  bool operator==(const AntennaConfig&) const = default;
};

/// Gold-standard (low-frequency) parameters: "one value fits all locations"
/// (Section 2.3). Modeled as a small named set so change records can
/// reference individual parameters.
struct GoldStandardParams {
  int radio_link_failure_timer_ms = 5000;
  int handover_time_to_trigger_ms = 320;
  int access_threshold_dbm = -110;
  int max_power_limit_dbm = 46;

  bool operator==(const GoldStandardParams&) const = default;
};

/// Full configuration snapshot for one element.
struct ConfigSnapshot {
  SoftwareVersion software;
  std::string equipment_model;  ///< e.g. vendor hardware family
  std::string os_version;       ///< controller operating system
  AntennaConfig antenna;        ///< meaningful for towers/sectors only
  GoldStandardParams gold;
  Terrain terrain = Terrain::kSuburban;
  TrafficProfile traffic = TrafficProfile::kResidential;
  bool son_enabled = false;     ///< Self-Optimizing Network features active

  bool operator==(const ConfigSnapshot&) const = default;
};

}  // namespace litmus::net
