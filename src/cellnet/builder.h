// Deterministic synthetic national-network generator.
//
// The paper works over AT&T's production topology; we cannot ship that, so
// this builder produces a structurally equivalent network: per region, a CS
// core (MSC/GMSC), UMTS RAN (RNCs with NodeBs), GSM RAN (BSCs with BTSs),
// and an LTE EPC (MME/S-GW/P-GW) with eNodeBs, all scattered over market
// clusters with zip codes, terrain/traffic profiles, software versions and
// radio-neighbor links. Everything is seeded and reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "cellnet/topology.h"

namespace litmus::net {

struct BuildSpec {
  std::uint64_t seed = 1;
  std::vector<Region> regions = all_regions();
  int markets_per_region = 2;
  int mscs_per_region = 1;
  int rncs_per_msc = 3;
  int nodebs_per_rnc = 8;
  int bscs_per_region = 1;
  int bts_per_bsc = 6;
  int enodebs_per_market = 6;
  double market_scatter_deg = 0.9;   ///< market centers around region anchor
  double tower_scatter_deg = 0.15;   ///< towers around market center
  double neighbor_radius_km = 8.0;   ///< radio neighbor link distance
  double son_fraction = 0.4;         ///< towers with SON features enabled
};

class NetworkBuilder {
 public:
  explicit NetworkBuilder(BuildSpec spec) : spec_(std::move(spec)) {}

  /// Builds the full topology. Ids are assigned densely from 1 in a
  /// deterministic order.
  Topology build() const;

 private:
  BuildSpec spec_;
};

/// Convenience: a small single-region network often used in tests.
Topology build_small_region(Region region, std::uint64_t seed,
                            int rncs = 3, int nodebs_per_rnc = 8);

}  // namespace litmus::net
