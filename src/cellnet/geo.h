// Geographic primitives: coordinates, distance, zip codes, region lookup.
// Control-group selection attribute 1 (Section 3.3) is built on these.
#pragma once

#include <cstdint>
#include <string>

#include "cellnet/types.h"

namespace litmus::net {

struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Five-digit postal code carried as a value type.
struct ZipCode {
  std::uint32_t value = 0;

  constexpr auto operator<=>(const ZipCode&) const = default;
  std::string to_string() const;
};

/// Coarse region containing a point, using longitude/latitude bands over the
/// continental United States. This is intentionally approximate — the
/// algorithms only need a stable region label per element.
Region region_of(const GeoPoint& p) noexcept;

/// Representative anchor point (rough market centroid) for a region; used by
/// the synthetic network builder to scatter markets.
GeoPoint region_anchor(Region r) noexcept;

}  // namespace litmus::net
