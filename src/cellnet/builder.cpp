#include "cellnet/builder.h"

#include <string>

#include "tsmath/random.h"

namespace litmus::net {
namespace {

using litmus::ts::Rng;

Terrain pick_terrain(Rng& rng, Region region) {
  const double u = rng.next_double();
  switch (region) {
    case Region::kNortheast:
      return u < 0.35 ? Terrain::kUrban
             : u < 0.70 ? Terrain::kSuburban
             : u < 0.90 ? Terrain::kRural
                        : Terrain::kMountain;
    case Region::kSoutheast:
      return u < 0.25 ? Terrain::kUrban
             : u < 0.60 ? Terrain::kSuburban
             : u < 0.85 ? Terrain::kFlat
                        : Terrain::kWater;
    case Region::kMidwest:
      return u < 0.25 ? Terrain::kUrban
             : u < 0.55 ? Terrain::kSuburban
             : u < 0.90 ? Terrain::kFlat
                        : Terrain::kWater;
    case Region::kSouthwest:
      return u < 0.30 ? Terrain::kUrban
             : u < 0.55 ? Terrain::kSuburban
             : u < 0.85 ? Terrain::kFlat
                        : Terrain::kMountain;
    case Region::kWest:
      return u < 0.35 ? Terrain::kUrban
             : u < 0.60 ? Terrain::kSuburban
             : u < 0.85 ? Terrain::kMountain
                        : Terrain::kWater;
  }
  return Terrain::kSuburban;
}

TrafficProfile pick_traffic(Rng& rng, Terrain terrain) {
  const double u = rng.next_double();
  if (terrain == Terrain::kWater)
    return u < 0.8 ? TrafficProfile::kRecreation : TrafficProfile::kResidential;
  if (terrain == Terrain::kUrban)
    return u < 0.55 ? TrafficProfile::kBusiness
           : u < 0.85 ? TrafficProfile::kResidential
                      : TrafficProfile::kStadium;
  if (terrain == Terrain::kFlat || terrain == Terrain::kRural)
    return u < 0.35 ? TrafficProfile::kHighway
           : u < 0.85 ? TrafficProfile::kResidential
                      : TrafficProfile::kRecreation;
  return u < 0.65 ? TrafficProfile::kResidential
         : u < 0.85 ? TrafficProfile::kBusiness
                    : TrafficProfile::kHighway;
}

SoftwareVersion pick_software(Rng& rng, ElementKind kind) {
  // Small release families per kind; most elements run the current release,
  // a minority lag one minor version.
  const std::uint16_t major = is_core(kind) ? 7 : (is_controller(kind) ? 5 : 3);
  const std::uint16_t minor = rng.chance(0.75) ? 2 : 1;
  const std::uint16_t patch = static_cast<std::uint16_t>(rng.next_below(3));
  return SoftwareVersion{major, minor, patch};
}

std::string pick_equipment(Rng& rng, ElementKind kind) {
  static constexpr const char* kRanModels[] = {"RBS6201", "RBS6601", "FlexiMR"};
  static constexpr const char* kCtlModels[] = {"RNC8200", "RNC8800"};
  static constexpr const char* kCoreModels[] = {"MSC-S18", "EPC-C9"};
  if (is_core(kind)) return kCoreModels[rng.next_below(2)];
  if (kind == ElementKind::kRnc || kind == ElementKind::kBsc)
    return kCtlModels[rng.next_below(2)];
  return kRanModels[rng.next_below(3)];
}

}  // namespace

Topology NetworkBuilder::build() const {
  Topology topo;
  Rng rng(spec_.seed);
  std::uint32_t next_id = 1;

  auto make = [&](ElementKind kind, Technology tech, Region region,
                  std::uint32_t market, GeoPoint loc, ZipCode zip,
                  ElementId parent, const std::string& name) {
    NetworkElement e;
    e.id = ElementId{next_id++};
    e.kind = kind;
    e.technology = tech;
    e.name = name;
    e.location = loc;
    e.zip = zip;
    e.region = region;
    e.parent = parent;
    e.market = market;
    e.config.software = pick_software(rng, kind);
    e.config.equipment_model = pick_equipment(rng, kind);
    e.config.os_version = is_controller(kind) || is_core(kind)
                              ? "OS-" + std::to_string(4 + rng.next_below(2))
                              : "";
    e.config.terrain = pick_terrain(rng, region);
    e.config.traffic = pick_traffic(rng, e.config.terrain);
    e.config.son_enabled = is_tower(kind) && rng.chance(spec_.son_fraction);
    if (is_tower(kind)) {
      e.config.antenna.tilt_deg = rng.uniform(0.0, 8.0);
      e.config.antenna.tx_power_dbm = rng.uniform(40.0, 46.0);
      e.config.antenna.azimuth_deg = rng.uniform(0.0, 360.0);
    }
    const ElementId id = e.id;
    topo.add(std::move(e));
    return id;
  };

  std::uint32_t market_counter = 0;
  for (const Region region : spec_.regions) {
    const GeoPoint anchor = region_anchor(region);
    const std::uint32_t zip_base =
        10000u + 10000u * static_cast<std::uint32_t>(region);

    // Market centers.
    std::vector<GeoPoint> market_centers;
    std::vector<std::uint32_t> market_ids;
    for (int m = 0; m < spec_.markets_per_region; ++m) {
      market_centers.push_back(
          {anchor.lat_deg + rng.uniform(-1.0, 1.0) * spec_.market_scatter_deg,
           anchor.lon_deg + rng.uniform(-1.0, 1.0) * spec_.market_scatter_deg});
      market_ids.push_back(market_counter++);
    }
    auto market_of = [&](int i) { return market_ids[static_cast<std::size_t>(
        i % spec_.markets_per_region)]; };
    auto scatter = [&](const GeoPoint& c) {
      return GeoPoint{
          c.lat_deg + rng.uniform(-1.0, 1.0) * spec_.tower_scatter_deg,
          c.lon_deg + rng.uniform(-1.0, 1.0) * spec_.tower_scatter_deg};
    };
    auto zip_near = [&](std::uint32_t market, const GeoPoint& p) {
      // Deterministic coarse spatial zip: market base + lat/lon cell.
      const int cell =
          static_cast<int>((p.lat_deg + p.lon_deg) * 20.0) & 0x1F;
      return ZipCode{zip_base + market * 100u + static_cast<std::uint32_t>(
                                                    cell)};
    };

    const std::string rtag = to_string(region);

    // LTE core, one set per region.
    const GeoPoint core_loc = market_centers[0];
    const ZipCode core_zip = zip_near(market_ids[0], core_loc);
    const ElementId pgw =
        make(ElementKind::kPgw, Technology::kLte, region, market_ids[0],
             core_loc, core_zip, kInvalidElement, rtag + "-PGW");
    const ElementId sgw =
        make(ElementKind::kSgw, Technology::kLte, region, market_ids[0],
             core_loc, core_zip, pgw, rtag + "-SGW");
    const ElementId mme =
        make(ElementKind::kMme, Technology::kLte, region, market_ids[0],
             core_loc, core_zip, sgw, rtag + "-MME");
    make(ElementKind::kHss, Technology::kLte, region, market_ids[0], core_loc,
         core_zip, mme, rtag + "-HSS");
    make(ElementKind::kPcrf, Technology::kLte, region, market_ids[0], core_loc,
         core_zip, pgw, rtag + "-PCRF");

    // PS core for GSM/UMTS.
    const ElementId ggsn =
        make(ElementKind::kGgsn, Technology::kUmts, region, market_ids[0],
             core_loc, core_zip, kInvalidElement, rtag + "-GGSN");
    const ElementId sgsn =
        make(ElementKind::kSgsn, Technology::kUmts, region, market_ids[0],
             core_loc, core_zip, ggsn, rtag + "-SGSN");

    // CS core + UMTS RAN.
    for (int mi = 0; mi < spec_.mscs_per_region; ++mi) {
      const GeoPoint msc_loc = market_centers[static_cast<std::size_t>(
          mi % spec_.markets_per_region)];
      const std::uint32_t msc_market = market_of(mi);
      const ElementId gmsc =
          make(ElementKind::kGmsc, Technology::kUmts, region, msc_market,
               msc_loc, zip_near(msc_market, msc_loc), kInvalidElement,
               rtag + "-GMSC" + std::to_string(mi));
      const ElementId msc =
          make(ElementKind::kMsc, Technology::kUmts, region, msc_market,
               msc_loc, zip_near(msc_market, msc_loc), gmsc,
               rtag + "-MSC" + std::to_string(mi));

      for (int ri = 0; ri < spec_.rncs_per_msc; ++ri) {
        const std::uint32_t mkt = market_of(mi * spec_.rncs_per_msc + ri);
        const GeoPoint rnc_loc = scatter(market_centers[mkt % market_ids.size()
                                             ? mkt - market_ids[0] : 0]);
        const ElementId rnc =
            make(ElementKind::kRnc, Technology::kUmts, region, mkt, rnc_loc,
                 zip_near(mkt, rnc_loc), msc,
                 rtag + "-RNC" + std::to_string(mi) + "." + std::to_string(ri));
        for (int ni = 0; ni < spec_.nodebs_per_rnc; ++ni) {
          const GeoPoint loc = scatter(rnc_loc);
          make(ElementKind::kNodeB, Technology::kUmts, region, mkt, loc,
               zip_near(mkt, loc), rnc,
               rtag + "-NB" + std::to_string(mi) + "." + std::to_string(ri) +
                   "." + std::to_string(ni));
        }
      }
    }
    (void)sgsn;

    // GSM RAN.
    for (int bi = 0; bi < spec_.bscs_per_region; ++bi) {
      const std::uint32_t mkt = market_of(bi);
      const GeoPoint bsc_loc = scatter(market_centers[0]);
      const ElementId bsc =
          make(ElementKind::kBsc, Technology::kGsm, region, mkt, bsc_loc,
               zip_near(mkt, bsc_loc), kInvalidElement,
               rtag + "-BSC" + std::to_string(bi));
      for (int ti = 0; ti < spec_.bts_per_bsc; ++ti) {
        const GeoPoint loc = scatter(bsc_loc);
        make(ElementKind::kBts, Technology::kGsm, region, mkt, loc,
             zip_near(mkt, loc), bsc,
             rtag + "-BTS" + std::to_string(bi) + "." + std::to_string(ti));
      }
    }

    // LTE RAN (eNodeBs attach to the regional MME).
    for (int m = 0; m < spec_.markets_per_region; ++m) {
      const std::uint32_t mkt = market_ids[static_cast<std::size_t>(m)];
      for (int ei = 0; ei < spec_.enodebs_per_market; ++ei) {
        const GeoPoint loc = scatter(market_centers[static_cast<std::size_t>(m)]);
        make(ElementKind::kEnodeB, Technology::kLte, region, mkt, loc,
             zip_near(mkt, loc), mme,
             rtag + "-ENB" + std::to_string(m) + "." + std::to_string(ei));
      }
    }
  }

  // Radio neighbor links between towers of the same technology within range.
  std::vector<ElementId> towers;
  for (const ElementId id : topo.all())
    if (is_tower(topo.get(id).kind)) towers.push_back(id);
  for (std::size_t i = 0; i < towers.size(); ++i) {
    const auto& a = topo.get(towers[i]);
    for (std::size_t j = i + 1; j < towers.size(); ++j) {
      const auto& b = topo.get(towers[j]);
      if (a.technology != b.technology) continue;
      if (haversine_km(a.location, b.location) <= spec_.neighbor_radius_km)
        topo.add_neighbor_link(towers[i], towers[j]);
    }
  }
  return topo;
}

Topology build_small_region(Region region, std::uint64_t seed, int rncs,
                            int nodebs_per_rnc) {
  BuildSpec spec;
  spec.seed = seed;
  spec.regions = {region};
  spec.markets_per_region = 1;
  spec.mscs_per_region = 1;
  spec.rncs_per_msc = rncs;
  spec.nodebs_per_rnc = nodebs_per_rnc;
  spec.bscs_per_region = 1;
  spec.bts_per_bsc = 4;
  spec.enodebs_per_market = 4;
  return NetworkBuilder(spec).build();
}

}  // namespace litmus::net
