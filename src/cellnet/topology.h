// Topology: the element inventory plus parent/child and neighbor structure.
//
// The paper (Section 2.2) derives topology from daily configuration
// snapshots and uses it to (i) bound the causal impact scope of changes
// (e.g. neighboring cell towers) and (ii) find control-group candidates
// sharing an upstream controller. Both queries live here.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cellnet/element.h"

namespace litmus::net {

class Topology {
 public:
  /// Adds an element; its id must be unique and non-invalid. If the element
  /// declares a parent, the parent must already exist.
  void add(NetworkElement element);

  /// Declares towers `a` and `b` to be radio neighbors (handover partners).
  /// Both must exist. Symmetric; self-links are ignored.
  void add_neighbor_link(ElementId a, ElementId b);

  std::size_t size() const noexcept { return elements_.size(); }
  bool contains(ElementId id) const noexcept;

  /// Lookup; throws std::out_of_range for unknown ids.
  const NetworkElement& get(ElementId id) const;

  /// Mutable config access for applying change records.
  ConfigSnapshot& mutable_config(ElementId id);

  /// Re-homes `id` under `new_parent` (the paper's "re-homes of network
  /// equipment" topology change). Throws std::invalid_argument when either
  /// element is unknown, or when the move would create a cycle (new parent
  /// inside `id`'s subtree).
  void rehome(ElementId id, ElementId new_parent);

  std::optional<ElementId> parent_of(ElementId id) const;
  std::span<const ElementId> children_of(ElementId id) const;
  std::span<const ElementId> neighbors_of(ElementId id) const;

  /// All elements in the subtree rooted at `id`, including `id` itself.
  std::vector<ElementId> subtree_of(ElementId id) const;

  /// Walks upward to the nearest ancestor of the given kind (or self).
  std::optional<ElementId> ancestor_of_kind(ElementId id,
                                            ElementKind kind) const;

  /// Causal impact scope of a change at `id`: the subtree plus radio
  /// neighbors of every tower in it. Control candidates must fall outside
  /// this set (Section 3.3).
  std::unordered_set<ElementId> impact_scope(ElementId id) const;

  /// All ids, in insertion order.
  const std::vector<ElementId>& all() const noexcept { return order_; }

  std::vector<ElementId> of_kind(ElementKind kind) const;
  std::vector<ElementId> of_technology(Technology tech) const;
  std::vector<ElementId> in_region(Region region) const;

  /// Elements within `radius_km` of `center` (excluding `center` itself).
  std::vector<ElementId> within_radius(ElementId center,
                                       double radius_km) const;

  /// Elements sharing the zip code of `ref` (excluding `ref`).
  std::vector<ElementId> same_zip(ElementId ref) const;

 private:
  std::unordered_map<std::uint32_t, NetworkElement> elements_;
  std::unordered_map<std::uint32_t, std::vector<ElementId>> children_;
  std::unordered_map<std::uint32_t, std::vector<ElementId>> neighbors_;
  std::vector<ElementId> order_;
};

}  // namespace litmus::net
