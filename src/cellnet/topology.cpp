#include "cellnet/topology.h"

#include <algorithm>
#include <stdexcept>

namespace litmus::net {

namespace {
const std::vector<ElementId> kEmpty;
}  // namespace

void Topology::add(NetworkElement element) {
  if (element.id == kInvalidElement)
    throw std::invalid_argument("Topology::add: invalid element id");
  if (contains(element.id))
    throw std::invalid_argument("Topology::add: duplicate element id " +
                                std::to_string(element.id.value));
  if (element.parent != kInvalidElement && !contains(element.parent))
    throw std::invalid_argument("Topology::add: unknown parent id " +
                                std::to_string(element.parent.value));
  const ElementId id = element.id;
  const ElementId parent = element.parent;
  elements_.emplace(id.value, std::move(element));
  order_.push_back(id);
  if (parent != kInvalidElement) children_[parent.value].push_back(id);
}

void Topology::add_neighbor_link(ElementId a, ElementId b) {
  if (a == b) return;
  if (!contains(a) || !contains(b))
    throw std::invalid_argument("add_neighbor_link: unknown element");
  auto link = [&](ElementId from, ElementId to) {
    auto& v = neighbors_[from.value];
    if (std::find(v.begin(), v.end(), to) == v.end()) v.push_back(to);
  };
  link(a, b);
  link(b, a);
}

bool Topology::contains(ElementId id) const noexcept {
  return elements_.contains(id.value);
}

const NetworkElement& Topology::get(ElementId id) const {
  const auto it = elements_.find(id.value);
  if (it == elements_.end())
    throw std::out_of_range("Topology::get: unknown element " +
                            std::to_string(id.value));
  return it->second;
}

ConfigSnapshot& Topology::mutable_config(ElementId id) {
  const auto it = elements_.find(id.value);
  if (it == elements_.end())
    throw std::out_of_range("Topology::mutable_config: unknown element");
  return it->second.config;
}

void Topology::rehome(ElementId id, ElementId new_parent) {
  if (!contains(id) || !contains(new_parent))
    throw std::invalid_argument("rehome: unknown element");
  if (id == new_parent)
    throw std::invalid_argument("rehome: element cannot parent itself");
  for (const ElementId e : subtree_of(id))
    if (e == new_parent)
      throw std::invalid_argument("rehome: new parent is inside the subtree");

  auto& element = elements_.at(id.value);
  if (element.parent != kInvalidElement) {
    auto& siblings = children_[element.parent.value];
    siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                   siblings.end());
  }
  element.parent = new_parent;
  children_[new_parent.value].push_back(id);
}

std::optional<ElementId> Topology::parent_of(ElementId id) const {
  const ElementId p = get(id).parent;
  if (p == kInvalidElement) return std::nullopt;
  return p;
}

std::span<const ElementId> Topology::children_of(ElementId id) const {
  const auto it = children_.find(id.value);
  return it == children_.end() ? std::span<const ElementId>(kEmpty)
                               : std::span<const ElementId>(it->second);
}

std::span<const ElementId> Topology::neighbors_of(ElementId id) const {
  const auto it = neighbors_.find(id.value);
  return it == neighbors_.end() ? std::span<const ElementId>(kEmpty)
                                : std::span<const ElementId>(it->second);
}

std::vector<ElementId> Topology::subtree_of(ElementId id) const {
  std::vector<ElementId> out;
  std::vector<ElementId> stack{id};
  while (!stack.empty()) {
    const ElementId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto kids = children_of(cur);
    stack.insert(stack.end(), kids.begin(), kids.end());
  }
  return out;
}

std::optional<ElementId> Topology::ancestor_of_kind(ElementId id,
                                                    ElementKind kind) const {
  std::optional<ElementId> cur = id;
  while (cur) {
    if (get(*cur).kind == kind) return cur;
    cur = parent_of(*cur);
  }
  return std::nullopt;
}

std::unordered_set<ElementId> Topology::impact_scope(ElementId id) const {
  std::unordered_set<ElementId> scope;
  for (const ElementId e : subtree_of(id)) {
    scope.insert(e);
    if (is_tower(get(e).kind))
      for (const ElementId n : neighbors_of(e)) scope.insert(n);
  }
  return scope;
}

std::vector<ElementId> Topology::of_kind(ElementKind kind) const {
  std::vector<ElementId> out;
  for (const ElementId id : order_)
    if (get(id).kind == kind) out.push_back(id);
  return out;
}

std::vector<ElementId> Topology::of_technology(Technology tech) const {
  std::vector<ElementId> out;
  for (const ElementId id : order_)
    if (get(id).technology == tech) out.push_back(id);
  return out;
}

std::vector<ElementId> Topology::in_region(Region region) const {
  std::vector<ElementId> out;
  for (const ElementId id : order_)
    if (get(id).region == region) out.push_back(id);
  return out;
}

std::vector<ElementId> Topology::within_radius(ElementId center,
                                               double radius_km) const {
  const GeoPoint c = get(center).location;
  std::vector<ElementId> out;
  for (const ElementId id : order_) {
    if (id == center) continue;
    if (haversine_km(c, get(id).location) <= radius_km) out.push_back(id);
  }
  return out;
}

std::vector<ElementId> Topology::same_zip(ElementId ref) const {
  const ZipCode z = get(ref).zip;
  std::vector<ElementId> out;
  for (const ElementId id : order_) {
    if (id == ref) continue;
    if (get(id).zip == z) out.push_back(id);
  }
  return out;
}

}  // namespace litmus::net
