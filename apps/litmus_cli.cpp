// litmus_cli — run a Litmus assessment from CSV files.
//
//   litmus_cli export-demo <dir>
//       writes demo topology.csv / series.csv (a simulated region with a
//       real +1.5-sigma change at the first RNC at bin 0) so the tool can
//       be tried end-to-end without any carrier data.
//
//   litmus_cli assess --topology topo.csv --series series.csv
//                     --study 2[,5,...] --kpi voice_retainability
//                     --change-bin 0
//                     [--controls 3,4,...]          explicit control group
//                     [--select region|msc|zip]     or predicate selection
//                     [--before-days 14] [--after-days 14]
//                     [--explain]                   per-verdict audit trail
//                     [--metrics-json FILE] [--trace-json FILE]
//       prints the per-element verdicts, the vote, and the baselines'
//       reads for comparison. The observability flags enable the obs layer
//       for the run and dump the metrics registry / span trace as JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cellnet/builder.h"
#include "io/changes.h"
#include "io/csv.h"
#include "io/store.h"
#include "litmus/batch.h"
#include "litmus/did.h"
#include "litmus/report.h"
#include "litmus/study_only.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"
#include "parallel/pool.h"
#include "simkit/generator.h"
#include "simkit/network_events.h"
#include "simkit/seasonality.h"

#define LITMUS_CLI_VERSION "0.3.0"

using namespace litmus;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  litmus_cli export-demo <dir>\n"
               "  litmus_cli assess --topology FILE --series FILE --study "
               "IDS --kpi NAME --change-bin N\n"
               "              [--controls IDS | --select region|msc|zip]\n"
               "              [--before-days N] [--after-days N] "
               "[--explain]\n"
               "              [--threads N] [--metrics-json FILE] "
               "[--trace-json FILE]\n"
               "  litmus_cli batch --topology FILE --series FILE --changes "
               "FILE\n"
               "              [--threads N] [--metrics-json FILE] "
               "[--trace-json FILE]\n"
               "  litmus_cli --version\n"
               "\n"
               "--threads N (or LITMUS_THREADS): worker threads for the\n"
               "sampling/batch fan-out; results are identical at any count.\n");
  return 2;
}

// Observability flags shared by assess and batch: turn collection on
// before the pipeline runs, dump the requested JSON files after.
class ObsSession {
 public:
  explicit ObsSession(const std::map<std::string, std::string>& args) {
    if (const auto it = args.find("metrics-json"); it != args.end())
      metrics_path_ = it->second;
    if (const auto it = args.find("trace-json"); it != args.end())
      trace_path_ = it->second;
    if (!metrics_path_.empty()) obs::set_enabled(true);
    if (!trace_path_.empty()) obs::Tracer::global().start();
  }

  /// Writes the requested dumps; throws on unwritable paths.
  void finish() {
    if (!trace_path_.empty()) {
      obs::Tracer::global().stop();
      std::ofstream out(trace_path_);
      if (!out)
        throw std::runtime_error("cannot write trace json: " + trace_path_);
      const auto spans = obs::Tracer::global().spans();
      obs::write_trace_json(out, spans, obs::Tracer::global().epoch_ns());
      std::printf("wrote %zu span(s) to %s\n", spans.size(),
                  trace_path_.c_str());
    }
    if (!metrics_path_.empty()) {
      obs::set_enabled(false);
      std::ofstream out(metrics_path_);
      if (!out)
        throw std::runtime_error("cannot write metrics json: " +
                                 metrics_path_);
      obs::write_metrics_json(out, obs::Registry::global().snapshot());
      std::printf("wrote metrics to %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string metrics_path_;
  std::string trace_path_;
};

// --threads N overrides the worker count (else LITMUS_THREADS, else
// hardware concurrency); verdicts are bit-identical at any setting.
void apply_threads_flag(const std::map<std::string, std::string>& args) {
  const auto it = args.find("threads");
  if (it == args.end()) return;
  const auto v = io::parse_int(it->second);
  if (!v || *v <= 0) throw std::runtime_error("bad --threads: " + it->second);
  par::set_threads(static_cast<std::size_t>(*v));
}

std::vector<net::ElementId> parse_ids(const std::string& csv) {
  std::vector<net::ElementId> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const auto v = io::parse_int(tok);
    if (!v || *v <= 0) throw std::runtime_error("bad element id: " + tok);
    out.push_back(net::ElementId{static_cast<std::uint32_t>(*v)});
  }
  return out;
}

int export_demo(const std::string& dir) {
  net::Topology topo =
      net::build_small_region(net::Region::kNortheast, 20130209, 5, 6);
  const auto rncs = topo.of_kind(net::ElementKind::kRnc);

  sim::UpstreamEvent change;
  change.source = rncs[0];
  change.start_bin = 0;
  change.sigma_shift = +1.5;
  sim::KpiGenerator gen(topo, {.seed = 20130209});
  gen.add_factor(std::make_shared<sim::DiurnalLoadFactor>());
  gen.add_factor(std::make_shared<sim::FoliageFactor>());
  gen.add_factor(std::make_shared<sim::NetworkEventFactor>(
      topo, std::vector<sim::UpstreamEvent>{change}));

  {
    std::ofstream out(dir + "/topology.csv");
    if (!out) {
      std::fprintf(stderr, "cannot write %s/topology.csv\n", dir.c_str());
      return 1;
    }
    io::save_topology_csv(out, topo);
  }
  {
    std::ofstream out(dir + "/series.csv");
    for (const auto rnc : rncs) {
      for (const auto kpi_id : {kpi::KpiId::kVoiceRetainability,
                                kpi::KpiId::kDataRetainability}) {
        const ts::TimeSeries s =
            gen.kpi_series(rnc, kpi_id, -14 * 24, 28 * 24);
        io::save_series_csv(out, rnc, kpi_id, s);
      }
    }
  }
  {
    std::ofstream out(dir + "/changes.csv");
    chg::ChangeLog log;
    chg::ChangeRecord record;
    record.element = rncs[0];
    record.type = chg::ChangeType::kFeatureActivation;
    record.bin = 0;
    record.expectation = chg::Expectation::kImprovement;
    record.target_kpi = kpi::KpiId::kVoiceRetainability;
    record.parameter = "son=on";
    record.description = "demo feature activation";
    log.add(record);
    io::save_changes_csv(out, log);
  }
  std::printf("wrote %s/{topology,series,changes}.csv\n", dir.c_str());
  std::printf("try: litmus_cli assess --topology %s/topology.csv --series "
              "%s/series.csv --study %u --kpi voice_retainability "
              "--change-bin 0 --select msc\n",
              dir.c_str(), dir.c_str(), rncs[0].value);
  return 0;
}

int assess(const std::map<std::string, std::string>& args) {
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = args.find(key);
    if (it == args.end())
      throw std::runtime_error(std::string("missing --") + key);
    return it->second;
  };

  apply_threads_flag(args);  // validate before the expensive loads
  std::ifstream topo_in(need("topology"));
  if (!topo_in) throw std::runtime_error("cannot open topology file");
  const net::Topology topo = io::load_topology_csv(topo_in);

  std::ifstream series_in(need("series"));
  if (!series_in) throw std::runtime_error("cannot open series file");
  io::SeriesStore store;
  const std::size_t points = io::load_series_csv(series_in, store);
  std::printf("loaded %zu elements, %zu series (%zu points)\n", topo.size(),
              store.size(), points);

  const std::vector<net::ElementId> study = parse_ids(need("study"));
  const auto kpi_id = kpi::parse_kpi(need("kpi"));
  if (!kpi_id) throw std::runtime_error("unknown KPI name");
  const auto change_bin = io::parse_int(need("change-bin"));
  if (!change_bin) throw std::runtime_error("bad --change-bin");

  core::AssessmentConfig cfg;
  if (const auto it = args.find("before-days"); it != args.end())
    cfg.before_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  if (const auto it = args.find("after-days"); it != args.end())
    cfg.after_bins = static_cast<std::size_t>(std::stoi(it->second)) * 24;
  core::Assessor assessor(topo, store.provider(), cfg);

  ObsSession obs_session(args);
  core::ChangeAssessment a;
  if (const auto it = args.find("controls"); it != args.end()) {
    a = assessor.assess(study, parse_ids(it->second), *kpi_id, *change_bin);
  } else {
    std::string mode = "region";
    if (const auto sel = args.find("select"); sel != args.end())
      mode = sel->second;
    core::ControlPredicate pred;
    if (mode == "region")
      pred = core::all_of({core::same_region(), core::same_technology()});
    else if (mode == "msc")
      pred = core::all_of({core::same_upstream(net::ElementKind::kMsc),
                           core::same_technology()});
    else if (mode == "zip")
      pred = core::all_of({core::same_zip(), core::same_technology()});
    else
      throw std::runtime_error("unknown --select mode: " + mode);
    a = assessor.assess_with_selection(study, pred, *kpi_id, *change_bin);
  }

  const bool explain = args.contains("explain");
  std::printf("%s\n", core::format_assessment(a, topo, explain).c_str());

  // Baselines, for context.
  const core::StudyOnlyAnalyzer so;
  const core::DiDAnalyzer did;
  std::printf("baseline reads (first study element):\n");
  const core::ElementWindows w =
      assessor.windows_for(study[0], a.control_group, *kpi_id, *change_bin);
  std::printf("  study-only: %s, DiD: %s\n",
              to_string(so.assess(w, *kpi_id).verdict),
              to_string(did.assess(w, *kpi_id).verdict));
  obs_session.finish();
  return 0;
}

int batch(const std::map<std::string, std::string>& args) {
  const auto need = [&](const char* key) -> const std::string& {
    const auto it = args.find(key);
    if (it == args.end())
      throw std::runtime_error(std::string("missing --") + key);
    return it->second;
  };

  apply_threads_flag(args);  // validate before the expensive loads

  std::ifstream topo_in(need("topology"));
  if (!topo_in) throw std::runtime_error("cannot open topology file");
  const net::Topology topo = io::load_topology_csv(topo_in);

  std::ifstream series_in(need("series"));
  if (!series_in) throw std::runtime_error("cannot open series file");
  io::SeriesStore store;
  io::load_series_csv(series_in, store);

  std::ifstream changes_in(need("changes"));
  if (!changes_in) throw std::runtime_error("cannot open changes file");
  chg::ChangeLog log;
  const std::size_t n = io::load_changes_csv(changes_in, log);
  std::printf("loaded %zu change record(s)\n", n);

  ObsSession obs_session(args);
  const core::BatchReport report =
      core::assess_change_log(log, topo, store.provider());
  std::printf("%s", core::format_batch_report(report, topo).c_str());
  obs_session.finish();
  return 0;
}

}  // namespace

// Parses "--flag value" pairs (and valueless boolean flags), rejecting
// anything outside the per-command whitelist so a typo fails loudly
// instead of being silently ignored.
int parse_flags(int argc, char** argv, const std::set<std::string>& valued,
                const std::set<std::string>& boolean,
                std::map<std::string, std::string>& out) {
  for (int i = 2; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return usage();
    }
    const std::string name = argv[i] + 2;
    if (boolean.contains(name)) {
      out[name] = "1";
      ++i;
      continue;
    }
    if (!valued.contains(name)) {
      std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
      return usage();
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for --%s\n", name.c_str());
      return usage();
    }
    out[name] = argv[i + 1];
    i += 2;
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const std::string cmd = argv[1];
    if (cmd == "--version" || cmd == "version") {
      std::printf("litmus_cli %s\n", LITMUS_CLI_VERSION);
      return 0;
    }
    if (cmd == "--help" || cmd == "help") {
      usage();
      return 0;
    }
    if (cmd == "export-demo") {
      if (argc != 3) return usage();
      return export_demo(argv[2]);
    }
    if (cmd == "assess" || cmd == "batch") {
      static const std::set<std::string> kSharedFlags = {
          "metrics-json", "trace-json", "threads"};
      std::set<std::string> valued = kSharedFlags;
      std::set<std::string> boolean;
      if (cmd == "assess") {
        valued.insert({"topology", "series", "study", "kpi", "change-bin",
                       "controls", "select", "before-days", "after-days"});
        boolean.insert("explain");
      } else {
        valued.insert({"topology", "series", "changes"});
      }
      std::map<std::string, std::string> args;
      if (const int rc = parse_flags(argc, argv, valued, boolean, args);
          rc != 0)
        return rc;
      return cmd == "assess" ? assess(args) : batch(args);
    }
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
